package trans

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

// --- a miniature of the paper's J5/J6/J7 subgraph (Figure 1) ---------------
//
// D4 records: key (O), value (S, Z, P) — orderid, suppid, zipcode, price.
// J5: filter 50<=O<500, regroup by (O,Z), sum P        (K2={O,Z}, K3={O,Z})
// J6: filter 0<=O<100, regroup by (S,Z), sum P         (K2={S,Z})
// J7: consume J5's output, max sum per O               (K2={O})

func m5(key, value keyval.Tuple, emit wf.Emit) {
	o := key[0].(int64)
	if o >= 50 && o < 500 {
		emit(keyval.T(o, value[1]), keyval.T(value[2]))
	}
}

func m6(key, value keyval.Tuple, emit wf.Emit) {
	o := key[0].(int64)
	if o >= 0 && o < 100 {
		emit(keyval.T(value[0], value[1]), keyval.T(value[2]))
	}
}

func sumP(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
	var s int64
	for _, v := range values {
		s += v[0].(int64)
	}
	emit(key, keyval.T(s))
}

func m7(key, value keyval.Tuple, emit wf.Emit) {
	emit(keyval.T(key[0]), value)
}

func maxP(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
	var m int64
	for _, v := range values {
		if v[0].(int64) > m {
			m = v[0].(int64)
		}
	}
	emit(key, keyval.T(m))
}

func jobJ5() *wf.Job {
	return &wf.Job{
		ID: "J5", Config: wf.DefaultConfig(), Origin: []string{"J5"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "D4",
			Stages: []wf.Stage{wf.MapStage("M5", m5, 1e-6)},
			Filter: &wf.Filter{Field: "O", Interval: keyval.Interval{Lo: int64(50), Hi: int64(500)}},
			KeyIn:  []string{"O"}, ValIn: []string{"S", "Z", "P"},
			KeyOut: []string{"O", "Z"}, ValOut: []string{"P"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "D5",
			Stages: []wf.Stage{wf.ReduceStage("R5", sumP, nil, 1e-6)},
			KeyIn:  []string{"O", "Z"}, ValIn: []string{"P"},
			KeyOut: []string{"O", "Z"}, ValOut: []string{"sumP"},
		}},
	}
}

func jobJ6() *wf.Job {
	return &wf.Job{
		ID: "J6", Config: wf.DefaultConfig(), Origin: []string{"J6"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "D4",
			Stages: []wf.Stage{wf.MapStage("M6", m6, 1e-6)},
			Filter: &wf.Filter{Field: "O", Interval: keyval.Interval{Lo: int64(0), Hi: int64(100)}},
			KeyIn:  []string{"O"}, ValIn: []string{"S", "Z", "P"},
			KeyOut: []string{"S", "Z"}, ValOut: []string{"P"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "D6",
			Stages: []wf.Stage{wf.ReduceStage("R6", sumP, nil, 1e-6)},
			KeyIn:  []string{"S", "Z"}, ValIn: []string{"P"},
			KeyOut: []string{"S", "Z"}, ValOut: []string{"sumP"},
		}},
	}
}

func jobJ7() *wf.Job {
	return &wf.Job{
		ID: "J7", Config: wf.DefaultConfig(), Origin: []string{"J7"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "D5",
			Stages: []wf.Stage{wf.MapStage("M7", m7, 1e-6)},
			KeyIn:  []string{"O", "Z"}, ValIn: []string{"sumP"},
			KeyOut: []string{"O"}, ValOut: []string{"sumP"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "D7",
			Stages: []wf.Stage{wf.ReduceStage("R7", maxP, nil, 1e-6)},
			KeyIn:  []string{"O"}, ValIn: []string{"sumP"},
			KeyOut: []string{"O"}, ValOut: []string{"maxP"},
		}},
	}
}

// exampleWorkflow returns D4 -> J5 -> D5 -> J7 -> D7, plus optionally J6.
func exampleWorkflow(withJ6 bool) *wf.Workflow {
	w := &wf.Workflow{
		Name: "fig1-mini",
		Jobs: []*wf.Job{jobJ5(), jobJ7()},
		Datasets: []*wf.Dataset{
			{ID: "D4", Base: true, KeyFields: []string{"O"}, ValueFields: []string{"S", "Z", "P"}},
			{ID: "D5", KeyFields: []string{"O", "Z"}, ValueFields: []string{"sumP"}},
			{ID: "D7", KeyFields: []string{"O"}, ValueFields: []string{"maxP"}},
		},
	}
	if withJ6 {
		w.Jobs = append(w.Jobs, jobJ6())
		w.Datasets = append(w.Datasets, &wf.Dataset{ID: "D6", KeyFields: []string{"S", "Z"}, ValueFields: []string{"sumP"}})
	}
	return w
}

func genD4(n int, seed int64) []keyval.Pair {
	r := rand.New(rand.NewSource(seed))
	out := make([]keyval.Pair, n)
	for i := range out {
		out[i] = keyval.Pair{
			Key:   keyval.T(int64(r.Intn(600))),
			Value: keyval.T(int64(r.Intn(20)), int64(r.Intn(10)), int64(r.Intn(100))),
		}
	}
	return out
}

func newDFS(t *testing.T, pairs []keyval.Pair) *mrsim.DFS {
	t.Helper()
	dfs := mrsim.NewDFS()
	err := dfs.Ingest("D4", pairs, mrsim.IngestSpec{
		NumPartitions: 6,
		KeyFields:     []string{"O"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"O"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dfs
}

func testCluster() *mrsim.Cluster {
	c := mrsim.DefaultCluster()
	c.VirtualScale = 2000
	return c
}

// runAndCollect executes the workflow and returns each sink dataset's
// contents as a sorted multiset.
func runAndCollect(t *testing.T, w *wf.Workflow, dfs *mrsim.DFS) map[string][]keyval.Pair {
	t.Helper()
	if err := w.Validate(); err != nil {
		t.Fatalf("invalid plan %s: %v", w.Name, err)
	}
	if _, err := mrsim.NewEngine(testCluster(), dfs).RunWorkflow(w); err != nil {
		t.Fatalf("run %s: %v", w.Name, err)
	}
	out := map[string][]keyval.Pair{}
	for _, d := range w.SinkDatasets() {
		stored, ok := dfs.Get(d.ID)
		if !ok {
			t.Fatalf("sink %s missing", d.ID)
		}
		pairs := stored.AllPairs()
		sort.Slice(pairs, func(i, j int) bool {
			if c := keyval.Compare(pairs[i].Key, pairs[j].Key); c != 0 {
				return c < 0
			}
			return keyval.Compare(pairs[i].Value, pairs[j].Value) < 0
		})
		out[d.ID] = pairs
	}
	return out
}

// assertEquivalent checks the plan-equivalence invariant: both plans yield
// identical sink datasets over the same input.
func assertEquivalent(t *testing.T, before, after *wf.Workflow, pairs []keyval.Pair) {
	t.Helper()
	a := runAndCollect(t, before, newDFS(t, pairs))
	b := runAndCollect(t, after, newDFS(t, pairs))
	if len(a) != len(b) {
		t.Fatalf("sink sets differ: %d vs %d", len(a), len(b))
	}
	for ds, pa := range a {
		pb, ok := b[ds]
		if !ok {
			t.Fatalf("sink %s missing from transformed plan", ds)
		}
		if len(pa) != len(pb) {
			t.Fatalf("sink %s: %d vs %d records", ds, len(pa), len(pb))
		}
		for i := range pa {
			if keyval.Compare(pa[i].Key, pb[i].Key) != 0 || keyval.Compare(pa[i].Value, pb[i].Value) != 0 {
				t.Fatalf("sink %s differs at %d: %v=%v vs %v=%v",
					ds, i, pa[i].Key, pa[i].Value, pb[i].Key, pb[i].Value)
			}
		}
	}
}

// --- intra-job vertical packing ---------------------------------------------

func TestIntraVerticalOneToOne(t *testing.T) {
	w := exampleWorkflow(false)
	if err := CanIntraVertical(w, "J7"); err != nil {
		t.Fatalf("preconditions should hold: %v", err)
	}
	after, err := IntraVertical(w, "J7")
	if err != nil {
		t.Fatal(err)
	}
	// Postconditions: J5 partitions on {O} (index 0 of (O,Z)) and sorts on
	// (O,Z); J7 is map-only and aligned.
	j5 := after.Job("J5")
	spec := j5.ReduceGroups[0].Part
	if len(spec.KeyFields) != 1 || spec.KeyFields[0] != 0 {
		t.Errorf("J5 partition fields = %v, want [0] ({O})", spec.KeyFields)
	}
	if len(spec.SortFields) != 2 || spec.SortFields[0] != 0 || spec.SortFields[1] != 1 {
		t.Errorf("J5 sort fields = %v, want [0 1] ({O,Z})", spec.SortFields)
	}
	if len(j5.ReduceGroups[0].Constraints) != 1 {
		t.Error("J5 should carry a partition constraint")
	}
	j7 := after.Job("J7")
	if !j7.MapOnly() || !j7.ReduceGroups[0].RunsMapSide || !j7.AlignMapToInput {
		t.Error("J7 should be an aligned map-only job with a map-side group")
	}
	// Original untouched.
	if w.Job("J7").MapOnly() {
		t.Error("transformation mutated the input plan")
	}
	assertEquivalent(t, w, after, genD4(6000, 1))
}

func TestIntraVerticalPreconditionFailures(t *testing.T) {
	cases := []struct {
		name string
		mut  func(w *wf.Workflow)
	}{
		{"missing consumer K2 schema", func(w *wf.Workflow) { w.Job("J7").ReduceGroups[0].KeyIn = nil }},
		{"missing branch schema", func(w *wf.Workflow) { w.Job("J7").MapBranches[0].KeyOut = nil }},
		{"K2 not flowing through producer reduce output", func(w *wf.Workflow) {
			w.Job("J5").ReduceGroups[0].KeyOut = []string{"Z"} // O dropped
		}},
		{"K2 not flowing through producer reduce input", func(w *wf.Workflow) {
			w.Job("J5").ReduceGroups[0].KeyIn = []string{"Z", "Q"}
		}},
		{"K2 not in consumer map input", func(w *wf.Workflow) {
			w.Job("J7").MapBranches[0].KeyIn = []string{"X", "Z"}
		}},
		{"producer constraint pins range type", func(w *wf.Workflow) {
			rt := keyval.RangePartition
			w.Job("J5").ReduceGroups[0].Constraints = []wf.PartitionConstraint{{RequireType: &rt, Reason: "sort job"}}
		}},
		{"already map-only", func(w *wf.Workflow) {
			w.Job("J7").ReduceGroups[0].Stages = nil
		}},
	}
	for _, c := range cases {
		w := exampleWorkflow(false)
		c.mut(w)
		if err := CanIntraVertical(w, "J7"); err == nil {
			t.Errorf("%s: preconditions passed, want failure", c.name)
		}
	}
}

func TestIntraVerticalRejectsFanOut(t *testing.T) {
	// A second consumer of D5 breaks the one-to-one requirement.
	w := exampleWorkflow(false)
	extra := jobJ7()
	extra.ID = "J8"
	extra.Origin = []string{"J8"}
	extra.ReduceGroups[0].Output = "D8"
	w.Jobs = append(w.Jobs, extra)
	w.Datasets = append(w.Datasets, &wf.Dataset{ID: "D8"})
	if err := CanIntraVertical(w, "J7"); err == nil {
		t.Error("fan-out dataset accepted for intra-vertical packing")
	}
}

func TestIntraVerticalNoneToOne(t *testing.T) {
	// J7 reading a base dataset whose layout already satisfies grouping.
	w := &wf.Workflow{
		Name: "none-to-one",
		Jobs: []*wf.Job{jobJ7()},
		Datasets: []*wf.Dataset{
			{ID: "D5", Base: true, KeyFields: []string{"O", "Z"}, ValueFields: []string{"sumP"},
				Layout: wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"O"}, SortFields: []string{"O", "Z"}}},
			{ID: "D7"},
		},
	}
	if err := CanIntraVertical(w, "J7"); err != nil {
		t.Fatalf("none-to-one preconditions should hold: %v", err)
	}
	after, err := IntraVertical(w, "J7")
	if err != nil {
		t.Fatal(err)
	}
	if !after.Job("J7").MapOnly() {
		t.Error("J7 should become map-only")
	}
	// Execute both against a pre-partitioned base dataset.
	r := rand.New(rand.NewSource(2))
	var pairs []keyval.Pair
	for i := 0; i < 4000; i++ {
		pairs = append(pairs, keyval.Pair{
			Key:   keyval.T(int64(r.Intn(100)), int64(r.Intn(10))),
			Value: keyval.T(int64(r.Intn(50))),
		})
	}
	mk := func() *mrsim.DFS {
		dfs := mrsim.NewDFS()
		if err := dfs.Ingest("D5", pairs, mrsim.IngestSpec{
			NumPartitions: 5,
			KeyFields:     []string{"O", "Z"},
			Layout: wf.Layout{PartType: keyval.HashPartition,
				PartFields: []string{"O"}, SortFields: []string{"O", "Z"}},
		}); err != nil {
			t.Fatal(err)
		}
		return dfs
	}
	a := runAndCollect(t, w, mk())
	b := runAndCollect(t, after, mk())
	pa, pb := a["D7"], b["D7"]
	if len(pa) == 0 || len(pa) != len(pb) {
		t.Fatalf("results differ in size: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if keyval.Compare(pa[i].Key, pb[i].Key) != 0 || keyval.Compare(pa[i].Value, pb[i].Value) != 0 {
			t.Fatalf("results differ at %d", i)
		}
	}
	// Unsorted base layout must be rejected.
	w2 := w.Clone()
	w2.Dataset("D5").Layout.SortFields = nil
	if err := CanIntraVertical(w2, "J7"); err == nil {
		t.Error("unsorted base layout accepted")
	}
}

// --- inter-job vertical packing ----------------------------------------------

func TestInterVerticalAfterIntra(t *testing.T) {
	// The Figure 4 sequence: intra(J7) then inter(J5, J7) leaves one job
	// whose reduce pipeline is [R5, M7, R7].
	w := exampleWorkflow(false)
	mid, err := IntraVertical(w, "J7")
	if err != nil {
		t.Fatal(err)
	}
	if err := CanInterVertical(mid, "J5", "J7"); err != nil {
		t.Fatalf("inter preconditions should hold: %v", err)
	}
	after, err := InterVertical(mid, "J5", "J7")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Jobs) != 1 {
		t.Fatalf("want 1 job after packing, got %d", len(after.Jobs))
	}
	packed := after.Jobs[0]
	if packed.ID != "J5+J7" {
		t.Errorf("packed ID = %s", packed.ID)
	}
	stages := packed.ReduceGroups[0].Stages
	if len(stages) != 3 || stages[0].Name != "R5" || stages[1].Name != "M7" || stages[2].Name != "R7" {
		names := make([]string, len(stages))
		for i, s := range stages {
			names[i] = s.Name
		}
		t.Fatalf("reduce pipeline = %v, want [R5 M7 R7]", names)
	}
	if after.Dataset("D5") != nil {
		t.Error("intermediate D5 should be eliminated")
	}
	if packed.ReduceGroups[0].Output != "D7" {
		t.Error("packed job should write D7")
	}
	assertEquivalent(t, w, after, genD4(6000, 3))
}

func TestInterVerticalMapOnlyProducer(t *testing.T) {
	// A map-only scan job feeding J5 merges into J5's map pipeline.
	scan := &wf.Job{
		ID: "J0", Config: wf.DefaultConfig(), Origin: []string{"J0"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "D0",
			Stages: []wf.Stage{wf.MapStage("M0", func(k, v keyval.Tuple, emit wf.Emit) {
				emit(k, keyval.T(v[0], v[1], v[2]))
			}, 1e-6)},
			KeyIn: []string{"O"}, ValIn: []string{"S", "Z", "P"},
			KeyOut: []string{"O"}, ValOut: []string{"S", "Z", "P"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "D4",
			KeyOut: []string{"O"}, ValOut: []string{"S", "Z", "P"},
		}},
	}
	w := exampleWorkflow(false)
	w.Jobs = append([]*wf.Job{scan}, w.Jobs...)
	w.Datasets = append(w.Datasets, &wf.Dataset{ID: "D0", Base: true, KeyFields: []string{"O"}, ValueFields: []string{"S", "Z", "P"}})
	w.Dataset("D4").Base = false

	if err := CanInterVertical(w, "J0", "J5"); err != nil {
		t.Fatalf("preconditions should hold: %v", err)
	}
	after, err := InterVertical(w, "J0", "J5")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Jobs) != 2 {
		t.Fatalf("want 2 jobs, got %d", len(after.Jobs))
	}
	merged := after.Job("J0+J5")
	if merged == nil {
		t.Fatal("merged job missing")
	}
	if merged.MapBranches[0].Input != "D0" {
		t.Error("merged job should read D0 directly")
	}
	if merged.MapBranches[0].Stages[0].Name != "M0" || merged.MapBranches[0].Stages[1].Name != "M5" {
		t.Error("producer stages should precede consumer stages")
	}
	if after.Dataset("D4") != nil {
		t.Error("D4 should be eliminated")
	}
	// Execute both.
	pairs := genD4(5000, 4)
	mk := func() *mrsim.DFS {
		dfs := mrsim.NewDFS()
		if err := dfs.Ingest("D0", pairs, mrsim.IngestSpec{NumPartitions: 6, KeyFields: []string{"O"},
			Layout: wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"O"}}}); err != nil {
			t.Fatal(err)
		}
		return dfs
	}
	a := runAndCollect(t, w, mk())
	b := runAndCollect(t, after, mk())
	if len(a["D7"]) == 0 || len(a["D7"]) != len(b["D7"]) {
		t.Fatal("outputs differ")
	}
}

func TestInterVerticalPreconditionFailures(t *testing.T) {
	w := exampleWorkflow(false)
	// Neither job map-only.
	if err := CanInterVertical(w, "J5", "J7"); err == nil {
		t.Error("neither-map-only accepted")
	}
	// Not linked.
	if err := CanInterVertical(w, "J7", "J5"); err == nil {
		t.Error("reverse link accepted")
	}
	// Fan-out blocks inter packing.
	mid, _ := IntraVertical(w, "J7")
	extra := jobJ6()
	extra.MapBranches[0].Input = "D5"
	mid2 := mid.Clone()
	mid2.Jobs = append(mid2.Jobs, extra)
	mid2.Datasets = append(mid2.Datasets, &wf.Dataset{ID: "D6"})
	if err := CanInterVertical(mid2, "J5", "J7"); err == nil {
		t.Error("fan-out accepted for inter packing")
	}
}

func TestInterVerticalReplicate(t *testing.T) {
	// Map-only scan feeding two consumers is replicated into both.
	scan := &wf.Job{
		ID: "J0", Config: wf.DefaultConfig(), Origin: []string{"J0"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "D0",
			Stages: []wf.Stage{wf.MapStage("M0", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 1e-6)},
			KeyIn:  []string{"O"}, ValIn: []string{"S", "Z", "P"},
			KeyOut: []string{"O"}, ValOut: []string{"S", "Z", "P"},
		}},
		ReduceGroups: []wf.ReduceGroup{{Tag: 0, Output: "D4", KeyOut: []string{"O"}, ValOut: []string{"S", "Z", "P"}}},
	}
	w := exampleWorkflow(true) // includes J6
	w.Jobs = append([]*wf.Job{scan}, w.Jobs...)
	w.Datasets = append(w.Datasets, &wf.Dataset{ID: "D0", Base: true, KeyFields: []string{"O"}, ValueFields: []string{"S", "Z", "P"}})
	w.Dataset("D4").Base = false

	if err := CanInterVerticalReplicate(w, "J0"); err != nil {
		t.Fatalf("replicate preconditions should hold: %v", err)
	}
	after, err := InterVerticalReplicate(w, "J0")
	if err != nil {
		t.Fatal(err)
	}
	if after.Job("J0") != nil || after.Dataset("D4") != nil {
		t.Error("producer and link should be gone")
	}
	for _, id := range []string{"J5", "J6"} {
		j := after.Job(id)
		if j.MapBranches[0].Input != "D0" {
			t.Errorf("%s should read D0", id)
		}
		if j.MapBranches[0].Stages[0].Name != "M0" {
			t.Errorf("%s should start with replicated M0", id)
		}
	}
	pairs := genD4(5000, 5)
	mk := func() *mrsim.DFS {
		dfs := mrsim.NewDFS()
		if err := dfs.Ingest("D0", pairs, mrsim.IngestSpec{NumPartitions: 6, KeyFields: []string{"O"},
			Layout: wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"O"}}}); err != nil {
			t.Fatal(err)
		}
		return dfs
	}
	a := runAndCollect(t, w, mk())
	b := runAndCollect(t, after, mk())
	for _, ds := range []string{"D6", "D7"} {
		if len(a[ds]) != len(b[ds]) {
			t.Fatalf("%s differs: %d vs %d", ds, len(a[ds]), len(b[ds]))
		}
	}
	// Single consumer: replication refused.
	if err := CanInterVerticalReplicate(exampleWorkflow(false), "J5"); err == nil {
		t.Error("non-map-only or single-consumer producer accepted")
	}
}

// --- horizontal packing -------------------------------------------------------

func TestHorizontalSameInput(t *testing.T) {
	w := exampleWorkflow(true)
	// J5 and J6 read D4 concurrently.
	if err := CanHorizontal(w, []string{"J5", "J6"}, true); err != nil {
		t.Fatalf("preconditions should hold: %v", err)
	}
	after, err := Horizontal(w, []string{"J5", "J6"}, true)
	if err != nil {
		t.Fatal(err)
	}
	packed := after.Job("J5+J6")
	if packed == nil {
		t.Fatal("packed job missing")
	}
	if len(packed.MapBranches) != 2 || len(packed.ReduceGroups) != 2 {
		t.Fatalf("packed job has %d branches / %d groups", len(packed.MapBranches), len(packed.ReduceGroups))
	}
	if packed.MapBranches[0].Tag == packed.MapBranches[1].Tag {
		t.Error("tags not distinct")
	}
	outs := packed.Outputs()
	if len(outs) != 2 {
		t.Errorf("packed outputs = %v", outs)
	}
	assertEquivalent(t, w, after, genD4(6000, 6))
	// The packed job blocks further vertical packing of J7 (the combined
	// K2 effect, Section 4).
	if err := CanIntraVertical(after, "J7"); err == nil {
		t.Error("intra-vertical should be blocked after horizontal packing")
	}
}

func TestHorizontalPreconditionFailures(t *testing.T) {
	w := exampleWorkflow(true)
	if err := CanHorizontal(w, []string{"J5"}, true); err == nil {
		t.Error("single job accepted")
	}
	if err := CanHorizontal(w, []string{"J5", "J5"}, true); err == nil {
		t.Error("duplicate job accepted")
	}
	if err := CanHorizontal(w, []string{"J5", "J7"}, false); err == nil {
		t.Error("dependent jobs accepted")
	}
	if err := CanHorizontal(w, []string{"J6", "J7"}, true); err == nil {
		t.Error("different inputs accepted under same-input rule")
	}
	if err := CanHorizontal(w, []string{"J6", "J7"}, false); err != nil {
		t.Errorf("concurrently-runnable different-input jobs rejected: %v", err)
	}
	aligned := exampleWorkflow(true)
	aligned.Job("J5").AlignMapToInput = true
	if err := CanHorizontal(aligned, []string{"J5", "J6"}, true); err == nil {
		t.Error("aligned job accepted for horizontal packing")
	}
}

func TestHorizontalDifferentInputsExtension(t *testing.T) {
	// Pack J6 and J7 (different inputs) via the extension; per-branch input
	// routing keeps results correct.
	w := exampleWorkflow(true)
	after, err := Horizontal(w, []string{"J6", "J7"}, false)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, w, after, genD4(6000, 7))
}

// --- partition function transformation ----------------------------------------

func TestApplyPartitionSpecRangeEquivalence(t *testing.T) {
	w := exampleWorkflow(false)
	spec := keyval.PartitionSpec{
		Type:        keyval.RangePartition,
		KeyFields:   []int{0, 1},
		SplitPoints: []keyval.Tuple{keyval.T(int64(100), int64(5)), keyval.T(int64(300), int64(2))},
	}
	after, err := ApplyPartitionSpec(w, "J5", 0, spec)
	if err != nil {
		t.Fatal(err)
	}
	if after.Job("J5").ReduceGroups[0].Part.Type != keyval.RangePartition {
		t.Error("spec not applied")
	}
	assertEquivalent(t, w, after, genD4(6000, 8))
}

func TestApplyPartitionSpecRejections(t *testing.T) {
	w := exampleWorkflow(false)
	if _, err := ApplyPartitionSpec(w, "nope", 0, keyval.PartitionSpec{}); err == nil {
		t.Error("unknown job accepted")
	}
	if _, err := ApplyPartitionSpec(w, "J5", 9, keyval.PartitionSpec{}); err == nil {
		t.Error("unknown tag accepted")
	}
	bad := keyval.PartitionSpec{Type: keyval.HashPartition, KeyFields: []int{7}}
	if _, err := ApplyPartitionSpec(w, "J5", 0, bad); err == nil {
		t.Error("out-of-range key field accepted")
	}
	// Violating a packing constraint.
	mid, _ := IntraVertical(w, "J7")
	zOnly := keyval.PartitionSpec{Type: keyval.HashPartition, KeyFields: []int{1}} // partition on Z
	if _, err := ApplyPartitionSpec(mid, "J5", 0, zOnly); err == nil {
		t.Error("spec violating intra-packing constraint accepted")
	}
	// Sort order that breaks grouping contiguity.
	broken := keyval.PartitionSpec{Type: keyval.HashPartition, SortFields: []int{1}}
	if _, err := ApplyPartitionSpec(w, "J5", 0, broken); err == nil {
		t.Error("grouping-breaking sort accepted")
	}
}

func TestEnumeratePartitionSpecs(t *testing.T) {
	w := exampleWorkflow(true)
	// Give J5 a profile with a key sample so equi-depth points exist.
	j5 := w.Job("J5")
	j5.Profile = &wf.JobProfile{}
	var sample []keyval.Tuple
	for i := 0; i < 100; i++ {
		sample = append(sample, keyval.T(int64(50+i*4), int64(i%10)))
	}
	j5.Profile.SetMapProfile(0, "D4", &wf.PipelineProfile{Selectivity: 1, KeySample: sample})
	j5.Config.NumReduceTasks = 4
	specs := EnumeratePartitionSpecs(w, "J5", 0, 0)
	if len(specs) == 0 {
		t.Fatal("no specs proposed")
	}
	foundRange := false
	for _, s := range specs {
		if s.Type == keyval.RangePartition && len(s.SplitPoints) > 0 {
			foundRange = true
		}
		if _, err := ApplyPartitionSpec(w, "J5", 0, s); err != nil {
			t.Errorf("proposed spec rejected by apply: %v", err)
		}
	}
	if !foundRange {
		t.Error("no range spec proposed despite key sample")
	}
	// All proposed specs keep results identical.
	for i, s := range specs {
		after, err := ApplyPartitionSpec(w, "J5", 0, s)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			assertEquivalent(t, w, after, genD4(4000, 9))
		}
	}
}

func TestEnumerateFilterAlignedSpecs(t *testing.T) {
	// J4'-style producer whose consumers J5/J6 filter on O: expect a
	// range spec on O with split points at the filter boundaries (Fig. 7).
	w := exampleWorkflow(true)
	producer := &wf.Job{
		ID: "J4", Config: wf.DefaultConfig(), Origin: []string{"J4"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "Dsrc",
			Stages: []wf.Stage{wf.MapStage("M4", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, 1e-6)},
			KeyIn:  []string{"O"}, ValIn: []string{"S", "Z", "P"},
			KeyOut: []string{"O"}, ValOut: []string{"S", "Z", "P"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "D4",
			Stages: []wf.Stage{wf.ReduceStage("R4", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
				for _, v := range vs {
					emit(k, v)
				}
			}, nil, 1e-6)},
			KeyIn: []string{"O"}, ValIn: []string{"S", "Z", "P"},
			KeyOut: []string{"O"}, ValOut: []string{"S", "Z", "P"},
		}},
	}
	var sample []keyval.Tuple
	for i := 0; i < 200; i++ {
		sample = append(sample, keyval.T(int64(i*3)))
	}
	producer.Profile = &wf.JobProfile{}
	producer.Profile.SetMapProfile(0, "Dsrc", &wf.PipelineProfile{Selectivity: 1, KeySample: sample})
	w.Jobs = append(w.Jobs, producer)
	w.Datasets = append(w.Datasets, &wf.Dataset{ID: "Dsrc", Base: true, KeyFields: []string{"O"}})
	w.Dataset("D4").Base = false

	specs := EnumeratePartitionSpecs(w, "J4", 0, 0)
	var aligned *keyval.PartitionSpec
	for i := range specs {
		s := specs[i]
		if s.Type != keyval.RangePartition {
			continue
		}
		for _, sp := range s.SplitPoints {
			if keyval.Compare(sp, keyval.T(int64(100))) == 0 {
				aligned = &specs[i]
			}
		}
	}
	if aligned == nil {
		t.Fatal("no filter-aligned range spec proposed (expected split at O=100)")
	}
}

// --- layout and helper logic ----------------------------------------------------

func TestLayoutSatisfiesGrouping(t *testing.T) {
	cases := []struct {
		layout wf.Layout
		k2     []string
		want   bool
	}{
		{wf.Layout{PartFields: []string{"O"}, SortFields: []string{"O", "Z"}}, []string{"O", "Z"}, true},
		{wf.Layout{PartFields: []string{"O"}, SortFields: []string{"O"}}, []string{"O"}, true},
		{wf.Layout{PartFields: []string{"O"}, SortFields: []string{"O"}}, []string{"O", "Z"}, false}, // Z not sorted
		{wf.Layout{PartFields: []string{"Q"}, SortFields: []string{"O"}}, []string{"O"}, false},      // partition outside K2
		{wf.Layout{SortFields: []string{"O"}}, []string{"O"}, false},                                 // unpartitioned
		{wf.Layout{PartFields: []string{"O"}, SortFields: []string{"Z", "O"}}, []string{"O"}, false}, // wrong prefix
		{wf.Layout{PartFields: []string{"O"}}, nil, false},
	}
	for i, c := range cases {
		if got := LayoutSatisfiesGrouping(c.layout, c.k2); got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestStaticLayout(t *testing.T) {
	w := exampleWorkflow(false)
	// Base dataset: annotation.
	w.Dataset("D4").Layout = wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"O"}}
	if got := StaticLayout(w, "D4"); len(got.PartFields) != 1 || got.PartFields[0] != "O" {
		t.Errorf("base layout = %v", got)
	}
	// Produced dataset: derived from producer spec.
	mid, _ := IntraVertical(w, "J7")
	l := StaticLayout(mid, "D5")
	if len(l.PartFields) != 1 || l.PartFields[0] != "O" {
		t.Errorf("derived D5 partition fields = %v, want [O]", l.PartFields)
	}
	if len(l.SortFields) != 2 || l.SortFields[0] != "O" || l.SortFields[1] != "Z" {
		t.Errorf("derived D5 sort fields = %v, want [O Z]", l.SortFields)
	}
	if got := StaticLayout(w, "missing"); len(got.PartFields) != 0 {
		t.Error("missing dataset should have empty layout")
	}
}

func TestPathExistsAndConcurrent(t *testing.T) {
	w := exampleWorkflow(true)
	if !PathExists(w, "J5", "J7") {
		t.Error("J5 -> J7 path missed")
	}
	if PathExists(w, "J7", "J5") {
		t.Error("phantom reverse path")
	}
	if PathExists(w, "J6", "J7") {
		t.Error("phantom J6 -> J7 path")
	}
	if !ConcurrentlyRunnable(w, []string{"J5", "J6"}) {
		t.Error("J5 and J6 should be concurrent")
	}
	if ConcurrentlyRunnable(w, []string{"J5", "J7"}) {
		t.Error("J5 and J7 are dependent")
	}
}

func TestProfileAdjustedThroughPacking(t *testing.T) {
	// Profiles attached before packing survive with composed statistics.
	w := exampleWorkflow(false)
	pairs := genD4(6000, 10)
	dfs := newDFS(t, pairs)
	if err := profile.NewProfiler(testCluster(), 1.0, 1).Annotate(w, dfs); err != nil {
		t.Fatal(err)
	}
	mid, err := IntraVertical(w, "J7")
	if err != nil {
		t.Fatal(err)
	}
	after, err := InterVertical(mid, "J5", "J7")
	if err != nil {
		t.Fatal(err)
	}
	packed := after.Jobs[0]
	if packed.Profile == nil {
		t.Fatal("packed job lost its profile")
	}
	rp := packed.Profile.ReduceProfile(packed.ReduceGroups[0].Tag)
	if rp == nil {
		t.Fatal("no adjusted reduce profile")
	}
	// Composed selectivity: R5 then M7 then R7 collapses (O,Z) sums to a
	// max per O — strictly fewer outputs than inputs.
	if rp.Selectivity <= 0 || rp.Selectivity >= 1 {
		t.Errorf("adjusted selectivity = %v, want in (0,1)", rp.Selectivity)
	}
	if rp.CPUPerRecord <= 0 {
		t.Error("adjusted CPU missing")
	}
}

func TestMergeHelpers(t *testing.T) {
	if got := mergeIDs("a", "b", "c"); got != "a+b+c" {
		t.Errorf("mergeIDs = %s", got)
	}
	a := &wf.Job{Origin: []string{"x", "y"}}
	b := &wf.Job{Origin: []string{"y", "z"}}
	if got := mergeOrigins(a, b); len(got) != 3 {
		t.Errorf("mergeOrigins = %v", got)
	}
	if got := sortedIDs([]string{"b", "a"}); got[0] != "a" || got[1] != "b" {
		t.Errorf("sortedIDs = %v", got)
	}
}
