// Package trans implements the five transformation types that define
// Stubby's plan space (Section 3): intra-job vertical packing, inter-job
// vertical packing, horizontal packing, partition function transformation,
// and (jointly with the optimizer's RRS search) configuration
// transformation.
//
// Every transformation is exposed as a pure function: it checks its
// preconditions against the annotations present in the plan and returns a
// transformed deep copy on which the postconditions hold, leaving the input
// plan untouched. If the preconditions cannot be verified from the
// available annotations the transformation refuses — this is how Stubby
// searches only the subspace of the plan space that can be enumerated
// correctly with the information at hand (the information spectrum).
package trans

import (
	"fmt"
	"sort"
	"strings"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// PathExists reports whether a dependency path leads from job `from` to job
// `to` in the workflow DAG.
func PathExists(w *wf.Workflow, from, to string) bool {
	if from == to {
		return true
	}
	seen := map[string]bool{from: true}
	frontier := []string{from}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		for _, c := range w.JobConsumers(w.Job(cur)) {
			if c.ID == to {
				return true
			}
			if !seen[c.ID] {
				seen[c.ID] = true
				frontier = append(frontier, c.ID)
			}
		}
	}
	return false
}

// ConcurrentlyRunnable reports whether no dependency path connects any pair
// of the given jobs — the precondition for the extended horizontal packing
// (Section 3.3).
func ConcurrentlyRunnable(w *wf.Workflow, ids []string) bool {
	for i := range ids {
		for j := range ids {
			if i != j && PathExists(w, ids[i], ids[j]) {
				return false
			}
		}
	}
	return true
}

// StaticLayout computes the layout a dataset will have at runtime, as far
// as annotations allow: base datasets report their dataset annotation;
// produced datasets report the layout derived from their producer's
// partition spec, schemas, and configuration.
func StaticLayout(w *wf.Workflow, dsID string) wf.Layout {
	ds := w.Dataset(dsID)
	if ds == nil {
		return wf.Layout{}
	}
	jp := w.Producer(dsID)
	if jp == nil {
		return ds.Layout
	}
	for i := range jp.ReduceGroups {
		g := &jp.ReduceGroups[i]
		if g.Output != dsID {
			continue
		}
		if g.MapOnly() {
			var in wf.Layout
			for bi := range jp.MapBranches {
				if jp.MapBranches[bi].Tag == g.Tag {
					in = StaticLayout(w, jp.MapBranches[bi].Input)
					break
				}
			}
			return wf.DeriveMapOnlyOutputLayout(in, *g, jp.AlignMapToInput, jp.Config)
		}
		return wf.DeriveGroupOutputLayout(*g, jp.Config)
	}
	return wf.Layout{}
}

// StaticPartitionCount returns the partition count a dataset is guaranteed
// to have at runtime regardless of configuration choices, or 0 when the
// count is configuration-dependent: base datasets report their annotation;
// range-partitioned producers are pinned by their split points; aligned
// map-only producers inherit their input's count.
func StaticPartitionCount(w *wf.Workflow, dsID string) int {
	ds := w.Dataset(dsID)
	if ds == nil {
		return 0
	}
	jp := w.Producer(dsID)
	if jp == nil {
		return ds.EstPartitions
	}
	for i := range jp.ReduceGroups {
		g := &jp.ReduceGroups[i]
		if g.Output != dsID {
			continue
		}
		if g.MapOnly() {
			if !jp.AlignMapToInput {
				return 0 // split-based map task count: config-dependent
			}
			max := 0
			for _, in := range jp.Inputs() {
				if n := StaticPartitionCount(w, in); n > max {
					max = n
				}
			}
			return max
		}
		if g.Part.Type == keyval.RangePartition {
			return len(g.Part.SplitPoints) + 1
		}
		if jp.PinnedReducers {
			return jp.Config.NumReduceTasks
		}
		return 0
	}
	return 0
}

// LayoutSatisfiesGrouping reports whether a dataset layout already delivers
// the grouping a reduce function on key fields k2 needs: the data is
// partitioned on a subset of k2 (equal keys co-located) and each partition
// is sorted on a prefix that covers exactly the k2 fields (equal keys
// contiguous). This is the effective precondition of intra-job vertical
// packing for none-to-one subgraphs (Section 3.1, extensions).
func LayoutSatisfiesGrouping(l wf.Layout, k2 []string) bool {
	if len(k2) == 0 || len(l.PartFields) == 0 {
		return false
	}
	if !wf.FieldsSubset(l.PartFields, k2) {
		return false
	}
	covered := map[string]bool{}
	for _, f := range l.SortFields {
		if wf.FieldIndex(k2, f) < 0 {
			break
		}
		covered[f] = true
	}
	for _, f := range k2 {
		if !covered[f] {
			return false
		}
	}
	return true
}

// checkPartitionConstraints verifies that a candidate partition spec for a
// group still satisfies every condition earlier transformations imposed
// (Sections 3.4/3.5: "the new partition function should satisfy all current
// conditions").
func checkPartitionConstraints(g *wf.ReduceGroup, spec keyval.PartitionSpec) error {
	if g.KeyIn == nil {
		if len(g.Constraints) > 0 {
			return fmt.Errorf("constraints present but K2 schema unknown")
		}
		return nil
	}
	partNames := projectNames(g.KeyIn, spec.EffectiveKeyFields(len(g.KeyIn)))
	sortNames := projectNames(g.KeyIn, spec.EffectiveSortFields(len(g.KeyIn)))
	for _, c := range g.Constraints {
		if c.RequireType != nil && spec.Type != *c.RequireType {
			return fmt.Errorf("constraint %q pins partition type %v", c.Reason, *c.RequireType)
		}
		if c.CoGroup != nil && !wf.FieldsSubset(partNames, c.CoGroup) {
			return fmt.Errorf("constraint %q requires partitioning within %v, got %v", c.Reason, c.CoGroup, partNames)
		}
		if len(c.SortPrefix) > 0 {
			if len(sortNames) < len(c.SortPrefix) {
				return fmt.Errorf("constraint %q requires sort prefix %v", c.Reason, c.SortPrefix)
			}
			for i, f := range c.SortPrefix {
				if sortNames[i] != f {
					return fmt.Errorf("constraint %q requires sort prefix %v, got %v", c.Reason, c.SortPrefix, sortNames)
				}
			}
		}
	}
	return nil
}

// groupingPreserved verifies that the spec's per-partition sort keeps the
// group's first grouped stage contiguous.
func groupingPreserved(g *wf.ReduceGroup, spec keyval.PartitionSpec) error {
	var groupFields []int
	found := false
	for _, s := range g.Stages {
		if s.Kind == wf.ReduceKind {
			groupFields = s.GroupFields
			found = true
			break
		}
	}
	if !found {
		return nil // pure map pipeline: any order works
	}
	width := len(g.KeyIn)
	if width == 0 {
		// Unknown key width: only the default full-key spec is safe.
		if spec.SortFields == nil && groupFields == nil {
			return nil
		}
		return fmt.Errorf("cannot verify grouping with unknown K2 schema")
	}
	gf := groupFields
	if gf == nil {
		gf = identityInts(width)
	}
	sf := spec.EffectiveSortFields(width)
	covered := map[int]bool{}
	for _, f := range sf {
		if !containsInt(gf, f) {
			break
		}
		covered[f] = true
	}
	for _, f := range gf {
		if !covered[f] {
			return fmt.Errorf("sort fields %v do not cluster group fields %v", sf, gf)
		}
	}
	return nil
}

// mergeIDs builds the packed job ID, e.g. "J5+J7".
func mergeIDs(ids ...string) string { return strings.Join(ids, "+") }

// mergeOrigins unions origin lists preserving order.
func mergeOrigins(jobs ...*wf.Job) []string {
	var out []string
	seen := map[string]bool{}
	for _, j := range jobs {
		for _, o := range j.Origin {
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
	}
	return out
}

func projectNames(schema []string, idx []int) []string {
	out := make([]string, 0, len(idx))
	for _, i := range idx {
		if i >= 0 && i < len(schema) {
			out = append(out, schema[i])
		}
	}
	return out
}

func identityInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// singleGroup returns the job's only reduce group, or an error if the job
// is multi-tag (horizontally packed jobs are excluded from vertical
// packing: their combined K2 breaks the flow-unchanged precondition, which
// is also why Stubby orders Vertical before Horizontal — Section 4).
func singleGroup(j *wf.Job) (*wf.ReduceGroup, error) {
	if len(j.ReduceGroups) != 1 {
		return nil, fmt.Errorf("job %s has %d reduce groups; vertical packing requires one", j.ID, len(j.ReduceGroups))
	}
	return &j.ReduceGroups[0], nil
}

// sortedIDs returns a sorted copy.
func sortedIDs(ids []string) []string {
	out := append([]string(nil), ids...)
	sort.Strings(out)
	return out
}
