package trans_test

import (
	"fmt"
	"sort"
	"testing"

	"github.com/stubby-mr/stubby/internal/gen"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/trans"
	"github.com/stubby-mr/stubby/internal/wf"
)

// The metamorphic equivalence suite: every transformation whose
// preconditions hold on a generated workflow must yield a plan that
// computes identical final answers when actually executed. Plan/cost
// checks elsewhere prove the optimizer is deterministic; this suite is
// what proves the transformations are *sound* — the property the paper
// asserts and the repo previously never executed.

// equivSeeds is the generated-case budget. Each case tries every
// applicable transformation (plus one intra→inter composition), so the
// candidate count is a multiple of this.
const equivSeeds = 14

type candidate struct {
	desc string
	plan *wf.Workflow
}

// enumerate lists every single-step transformation applicable to w, plus
// intra→inter compositions (the packing sequence Figure 4 performs).
func enumerate(t *testing.T, w *wf.Workflow, targetParts int) ([]candidate, map[string]int) {
	t.Helper()
	var out []candidate
	applied := map[string]int{}
	add := func(kind, desc string, plan *wf.Workflow, err error) {
		if err != nil {
			t.Fatalf("%s (%s): transformation failed after preconditions passed: %v", desc, kind, err)
		}
		out = append(out, candidate{desc: desc, plan: plan})
		applied[kind]++
	}

	for _, jc := range w.Jobs {
		if trans.CanIntraVertical(w, jc.ID) == nil {
			mid, err := trans.IntraVertical(w, jc.ID)
			add("intra", "intra("+jc.ID+")", mid, err)
			if err == nil {
				// Composition: the now map-only consumer packs into its
				// producers where the one-to-one precondition holds.
				for _, jp := range mid.JobProducers(mid.Job(jc.ID)) {
					if trans.CanInterVertical(mid, jp.ID, jc.ID) == nil {
						next, err := trans.InterVertical(mid, jp.ID, jc.ID)
						add("intra+inter", fmt.Sprintf("intra(%s)+inter(%s,%s)", jc.ID, jp.ID, jc.ID), next, err)
					}
				}
			}
		}
	}
	for _, jp := range w.Jobs {
		for _, jc := range w.JobConsumers(jp) {
			if trans.CanInterVertical(w, jp.ID, jc.ID) == nil {
				next, err := trans.InterVertical(w, jp.ID, jc.ID)
				add("inter", fmt.Sprintf("inter(%s,%s)", jp.ID, jc.ID), next, err)
			}
			if trans.CanInterVerticalKeep(w, jp.ID, jc.ID) == nil {
				next, err := trans.InterVerticalKeep(w, jp.ID, jc.ID)
				add("inter-keep", fmt.Sprintf("inter-keep(%s,%s)", jp.ID, jc.ID), next, err)
			}
		}
		if trans.CanInterVerticalReplicate(w, jp.ID) == nil {
			next, err := trans.InterVerticalReplicate(w, jp.ID)
			add("inter-replicate", "inter-replicate("+jp.ID+")", next, err)
		}
	}

	// Horizontal: same-input sibling sets (the classic precondition), then
	// arbitrary concurrently-runnable pairs (the paper's extension).
	for _, ids := range sameInputSets(w) {
		if trans.CanHorizontal(w, ids, true) == nil {
			next, err := trans.Horizontal(w, ids, true)
			add("horizontal", fmt.Sprintf("horizontal%v", ids), next, err)
		}
	}
	for i := range w.Jobs {
		for j := i + 1; j < len(w.Jobs); j++ {
			ids := []string{w.Jobs[i].ID, w.Jobs[j].ID}
			if trans.CanHorizontal(w, ids, false) == nil {
				next, err := trans.Horizontal(w, ids, false)
				add("horizontal-ext", fmt.Sprintf("horizontal-ext%v", ids), next, err)
			}
		}
	}

	// Partition function transformation, on every grouped tag.
	for _, j := range w.Jobs {
		for _, g := range j.ReduceGroups {
			for i, spec := range trans.EnumeratePartitionSpecs(w, j.ID, g.Tag, targetParts) {
				next, err := trans.ApplyPartitionSpec(w, j.ID, g.Tag, spec)
				add("partition", fmt.Sprintf("partition(%s,%d,#%d)", j.ID, g.Tag, i), next, err)
			}
		}
	}
	return out, applied
}

// sameInputSets lists maximal sets of single-input jobs sharing an input.
func sameInputSets(w *wf.Workflow) [][]string {
	byInput := map[string][]string{}
	for _, j := range w.Jobs {
		if ins := j.Inputs(); len(ins) == 1 {
			byInput[ins[0]] = append(byInput[ins[0]], j.ID)
		}
	}
	var inputs []string
	for in, ids := range byInput {
		if len(ids) >= 2 {
			inputs = append(inputs, in)
		}
	}
	sort.Strings(inputs)
	var out [][]string
	for _, in := range inputs {
		ids := byInput[in]
		sort.Strings(ids)
		out = append(out, ids)
	}
	return out
}

func TestGeneratedTransformationEquivalence(t *testing.T) {
	totals := map[string]int{}
	candidates := 0
	for seed := int64(1); seed <= equivSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := gen.Generate(seed, gen.Options{})
			// Full-fraction profiles give EnumeratePartitionSpecs real key
			// samples without injecting sampling error.
			if err := profile.NewProfiler(c.Cluster, 1.0, seed).Annotate(c.Workflow, c.DFS); err != nil {
				t.Fatalf("seed %d: profiling failed: %v", seed, err)
			}
			s := c.Subject()
			ref, err := s.Reference()
			if err != nil {
				t.Fatal(err)
			}
			cands, applied := enumerate(t, c.Workflow, c.Cluster.TotalReduceSlots())
			for _, cand := range cands {
				if err := s.CheckPlan(ref, cand.desc, cand.plan); err != nil {
					t.Error(err)
				}
			}
			for k, n := range applied {
				totals[k] += n
			}
			candidates += len(cands)
		})
	}
	t.Logf("verified %d transformed plans across %d seeds: %v", candidates, equivSeeds, totals)
	if candidates < 3*equivSeeds {
		t.Errorf("only %d transformation candidates across %d seeds; generator no longer exercises the plan space", candidates, equivSeeds)
	}
	for _, kind := range []string{"intra", "intra+inter", "inter", "horizontal", "horizontal-ext", "partition"} {
		if totals[kind] == 0 {
			t.Errorf("transformation %q never applied across %d seeds (totals: %v)", kind, equivSeeds, totals)
		}
	}
}
