package service

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func journalSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, jrnFile))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestJournalLiveCompactionTerminalTrigger: once enough jobs reach a
// terminal state, the log is rewritten in place to just the in-flight
// submit records — without reopening, without dropping the flock, and
// without losing any in-flight job.
func TestJournalLiveCompactionTerminalTrigger(t *testing.T) {
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir)
	defer j.Close()
	j.SetCompactionThresholds(4, 0)

	// One long-lived job that must survive every compaction.
	if err := j.AppendSubmit("keeper", []byte(`{"keep":true}`), 777); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("job-%d", i)
		if err := j.AppendSubmit(id, []byte(fmt.Sprintf(`{"n":%d}`, i)), 0); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendState(id, Running); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendState(id, Done); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatalf("8 terminal jobs at threshold 4 triggered no live compaction: %+v", st)
	}
	if st.Compacted == 0 {
		t.Error("live compaction dropped no stale records")
	}
	// After the last compaction the log should be proportional to the
	// in-flight set (the keeper plus at most one batch of churn), far
	// below 25 records' worth.
	size := journalSize(t, dir)
	full := int64(st.BytesWritten)
	if size >= full/2 {
		t.Errorf("log is %d bytes after compaction, %d written in total", size, full)
	}
	// The flock must still be held on the stable lock-file inode.
	if _, _, err := OpenJournal(dir); err == nil {
		t.Fatal("second opener succeeded while the compacted journal is live")
	}

	// Appends after compaction land in the renamed file and recovery sees
	// exactly the in-flight set.
	if err := j.AppendSubmit("late", []byte(`{"late":true}`), 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, inc := openTestJournal(t, dir)
	defer r.Close()
	if len(inc) != 2 {
		t.Fatalf("recovered %d jobs, want 2 (keeper, late)", len(inc))
	}
	byID := map[string]IncompleteJob{}
	for _, in := range inc {
		byID[in.ID] = in
	}
	keeper, ok := byID["keeper"]
	if !ok || string(keeper.Doc) != `{"keep":true}` || keeper.DeadlineUnixMS != 777 {
		t.Errorf("keeper mangled across live compactions: %+v", keeper)
	}
	if _, ok := byID["late"]; !ok {
		t.Error("post-compaction append lost")
	}
}

// TestJournalLiveCompactionByteTrigger: the size trigger fires only when
// the log holds droppable records — a log of purely live submits never
// rewrites itself, no matter how large (that would loop forever).
func TestJournalLiveCompactionByteTrigger(t *testing.T) {
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir)
	defer j.Close()
	j.SetCompactionThresholds(1_000_000, 512)

	// Purely live submits past the byte threshold: no compaction possible.
	for i := 0; i < 30; i++ {
		if err := j.AppendSubmit(fmt.Sprintf("live-%d", i), []byte(`{"x":"aaaaaaaaaaaaaaaaaaaaaaaa"}`), 0); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Compactions != 0 {
		t.Fatalf("compacted a log with nothing droppable %d times", st.Compactions)
	}

	// One terminal transition makes records droppable; the byte trigger
	// fires on the next append.
	if err := j.AppendState("live-0", Done); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Compactions != 1 {
		t.Fatalf("byte-triggered compactions = %d, want 1", st.Compactions)
	}
	if got := journalSize(t, dir); got == 0 {
		t.Fatal("compacted log empty despite 29 live jobs")
	}
}

// TestJournalSetCompactionThresholdsDefaults: non-positive terminalEvery
// restores the default rather than disabling compaction outright.
func TestJournalSetCompactionThresholdsDefaults(t *testing.T) {
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir)
	defer j.Close()
	j.SetCompactionThresholds(0, -1)
	// Churn a couple of jobs: with the default threshold (256) nothing
	// should compact at this volume.
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("j%d", i)
		if err := j.AppendSubmit(id, []byte(`{}`), 0); err != nil {
			t.Fatal(err)
		}
		if err := j.AppendState(id, Done); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Compactions != 0 {
		t.Fatalf("default thresholds compacted after 10 terminals: %+v", st)
	}
}
