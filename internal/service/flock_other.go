//go:build !unix

package service

import "os"

// Without flock, double-open protection degrades to nothing: two live
// journals over one directory interleave appends. Unix hosts (the
// deployment target) get the real lock.
func tryJrnFlock(f *os.File) bool { return true }

func funlockJrn(f *os.File) {}
