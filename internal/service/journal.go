package service

// journal.go implements the durable job journal behind a crash-safe
// stubbyd: an append-only, CRC-checked log of every submission's request
// document and subsequent lifecycle transitions. Reopening the journal
// after a crash yields the set of jobs that were admitted but never
// reached a terminal state, so the server can re-enqueue exactly those —
// completed jobs are never resurrected, canceled jobs stay canceled, and
// re-executed jobs complete idempotently through the plan store.
//
// # On-disk layout
//
// A journal directory holds one live log plus the compaction temp file:
//
//	dir/
//	  journal.log       append-only CRC-32C records, single writer (flock)
//	  journal.log.tmp   compaction scratch, published via rename
//
// Each record is
//
//	magic   uint32  jrnMagic ("SJNL")
//	kind    uint8   jrnKindSubmit | jrnKindState
//	length  uint32  payload byte count
//	crc     uint32  CRC-32C (Castagnoli) over the payload
//	payload [length]byte  JSON (JournalRecord)
//
// in big-endian — the same record discipline as the plan store's
// segments. A torn tail (crash mid-append) fails the length or CRC check
// and freezes the scan at the last valid record; Open then compacts the
// surviving records into a fresh log via write-temp-then-rename, which
// both truncates the damage physically and drops records of jobs that
// already finished, so the journal stays proportional to the in-flight
// set rather than to history.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	jrnMagic      = 0x534a4e4c // "SJNL"
	jrnKindSubmit = 1
	jrnKindState  = 2
	jrnHeaderSize = 4 + 1 + 4 + 4
	jrnMaxRecord  = 1 << 30 // sanity bound; request docs are a few KB

	jrnFile = "journal.log"

	// Live-compaction defaults (SetCompactionThresholds overrides): compact
	// once this many jobs reached a terminal state since the last
	// compaction, or once the log grows past this many bytes with anything
	// droppable in it. Reopen-only compaction let a long-lived server's log
	// grow with history instead of with the in-flight set.
	defaultCompactEvery = 256
	defaultCompactBytes = 8 << 20
)

var jrnCRCTable = crc32.MakeTable(crc32.Castagnoli)

// JournalRecord is the JSON payload of one journal record. Submit records
// carry the request document and, when the submitter propagated one, the
// absolute deadline; state records carry the transition.
type JournalRecord struct {
	// ID is the job's server-assigned identifier.
	ID string `json:"id"`
	// State is the transition a state record logs ("running", "done",
	// "failed", "canceled"); empty on submit records.
	State string `json:"state,omitempty"`
	// Doc is the verbatim optimize-request document of a submit record.
	Doc json.RawMessage `json:"doc,omitempty"`
	// DeadlineUnixMS is the job's absolute deadline in Unix milliseconds
	// (0 = none), journaled so a recovered job keeps its deadline.
	DeadlineUnixMS int64 `json:"deadlineUnixMS,omitempty"`
}

// IncompleteJob is one journaled job that never reached a terminal state:
// the unit of restart recovery.
type IncompleteJob struct {
	// ID is the job's original identifier, preserved across the restart so
	// clients polling it reconnect to the recovered job.
	ID string
	// Doc is the submission's verbatim request document.
	Doc []byte
	// DeadlineUnixMS is the journaled absolute deadline (0 = none).
	DeadlineUnixMS int64
}

// JournalStats is a point-in-time snapshot of journal activity. Counters
// are cumulative since Open.
type JournalStats struct {
	// Submits / Transitions count records appended by kind.
	Submits     uint64
	Transitions uint64
	// Recovered is how many incomplete jobs the reopening scan yielded.
	Recovered int
	// Compacted is how many stale records (of already-terminal jobs) the
	// reopening compaction dropped.
	Compacted int
	// Compactions counts live (threshold-triggered) compactions performed
	// since Open; the reopening compaction is not included.
	Compactions uint64
	// TornBytes is how many trailing bytes the reopening scan discarded as
	// a torn or corrupt tail.
	TornBytes int64
	// BytesWritten counts record bytes appended (headers included).
	BytesWritten uint64
	// Errors counts append/sync failures; the service keeps running when
	// it rises, with correspondingly weaker crash-recovery guarantees.
	Errors uint64
}

// Journal is a single-writer durable job journal. All methods are safe
// for concurrent use; Append* calls from concurrent submissions serialize
// on an internal mutex, preserving a total record order.
type Journal struct {
	dir  string
	sync bool

	mu   sync.Mutex
	f    *os.File
	lock *os.File // dir/journal.lock, held (flock) for the journal's lifetime

	// Live-compaction state, all guarded by mu: the in-flight jobs' submit
	// records (what a compaction must preserve), how much droppable history
	// has accumulated, and the thresholds that trigger a rewrite.
	live          map[string]*liveJob
	nextOrder     int
	recordsInLog  int   // records in the log file (live + droppable)
	logBytes      int64 // current log file size
	terminalSince int   // terminal transitions since the last compaction
	compactEvery  int
	compactBytes  int64

	submits      atomic.Uint64
	transitions  atomic.Uint64
	bytesWritten atomic.Uint64
	errs         atomic.Uint64
	compactions  atomic.Uint64
	recovered    int
	compacted    int
	tornBytes    int64
}

// liveJob is the retained submit record of one not-yet-terminal job.
type liveJob struct {
	doc      json.RawMessage
	deadline int64
	order    int
}

// OpenJournal opens (creating if needed) the journal rooted at dir,
// recovers its record of in-flight jobs, and compacts the log. The
// returned incomplete jobs are in original submission order. The journal
// takes an exclusive flock on the log for its lifetime; a second live
// opener fails rather than interleaving appends.
func OpenJournal(dir string) (*Journal, []IncompleteJob, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, jrnFile)
	j := &Journal{dir: dir, sync: true,
		live:         make(map[string]*liveJob),
		compactEvery: defaultCompactEvery,
		compactBytes: defaultCompactBytes,
	}

	// The lock lives in a dedicated file (never renamed-over by
	// compaction, so its inode — and the flock on it — is stable): one live
	// writer per directory, enforced before recovery mutates anything.
	lock, err := os.OpenFile(filepath.Join(dir, "journal.lock"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if !tryJrnFlock(lock) {
		lock.Close()
		return nil, nil, fmt.Errorf("journal: %s is held by a live writer", dir)
	}
	j.lock = lock

	fail := func(err error) (*Journal, []IncompleteJob, error) {
		funlockJrn(lock)
		lock.Close()
		return nil, nil, err
	}

	recs, torn, err := scanJournal(path)
	if err != nil {
		return fail(err)
	}
	j.tornBytes = torn

	// Replay the records into per-job state, preserving submission order.
	type jobRec struct {
		doc      json.RawMessage
		deadline int64
		terminal bool
		order    int
	}
	jobs := make(map[string]*jobRec)
	var order []string
	for _, r := range recs {
		switch {
		case len(r.Doc) > 0:
			if _, ok := jobs[r.ID]; !ok {
				jobs[r.ID] = &jobRec{doc: r.Doc, deadline: r.DeadlineUnixMS, order: len(order)}
				order = append(order, r.ID)
			}
		case r.State != "":
			if jr, ok := jobs[r.ID]; ok {
				if st, perr := ParseState(r.State); perr == nil && st.Terminal() {
					jr.terminal = true
				}
			}
		}
	}
	var incomplete []IncompleteJob
	for _, id := range order {
		jr := jobs[id]
		if jr.terminal {
			continue
		}
		incomplete = append(incomplete, IncompleteJob{ID: id, Doc: jr.doc, DeadlineUnixMS: jr.deadline})
	}
	sort.SliceStable(incomplete, func(a, b int) bool {
		return jobs[incomplete[a].ID].order < jobs[incomplete[b].ID].order
	})
	j.recovered = len(incomplete)
	j.compacted = len(recs) - len(incomplete)

	// Compact: rewrite only the incomplete jobs' submit records into a
	// fresh log and publish it with the classic temp+rename dance. This is
	// also what physically truncates a torn tail.
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fail(fmt.Errorf("journal: compact: %w", err))
	}
	for _, in := range incomplete {
		rec := JournalRecord{ID: in.ID, Doc: in.Doc, DeadlineUnixMS: in.DeadlineUnixMS}
		buf, err := encodeJournalRecord(jrnKindSubmit, &rec)
		if err != nil {
			tf.Close()
			return fail(err)
		}
		if _, err := tf.Write(buf); err != nil {
			tf.Close()
			return fail(fmt.Errorf("journal: compact: %w", err))
		}
		j.logBytes += int64(len(buf))
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fail(fmt.Errorf("journal: compact: %w", err))
	}
	if err := tf.Close(); err != nil {
		return fail(fmt.Errorf("journal: compact: %w", err))
	}
	if err := os.Rename(tmp, path); err != nil {
		return fail(fmt.Errorf("journal: compact: %w", err))
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fail(fmt.Errorf("journal: %w", err))
	}
	j.f = f
	for _, in := range incomplete {
		j.live[in.ID] = &liveJob{doc: in.Doc, deadline: in.DeadlineUnixMS, order: j.nextOrder}
		j.nextOrder++
	}
	j.recordsInLog = len(incomplete)
	return j, incomplete, nil
}

// scanJournal reads every valid record from path, stopping at the first
// torn or corrupt one, and reports how many trailing bytes it discarded.
// A missing file is an empty journal.
func scanJournal(path string) ([]JournalRecord, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	var recs []JournalRecord
	off := int64(0)
	size := int64(len(data))
	for off+jrnHeaderSize <= size {
		hdr := data[off:]
		if binary.BigEndian.Uint32(hdr) != jrnMagic {
			break
		}
		kind := hdr[4]
		if kind != jrnKindSubmit && kind != jrnKindState {
			break
		}
		n := int64(binary.BigEndian.Uint32(hdr[5:]))
		if n > jrnMaxRecord || off+jrnHeaderSize+n > size {
			break
		}
		payload := data[off+jrnHeaderSize : off+jrnHeaderSize+n]
		if crc32.Checksum(payload, jrnCRCTable) != binary.BigEndian.Uint32(hdr[9:]) {
			break
		}
		var rec JournalRecord
		if err := json.Unmarshal(payload, &rec); err != nil || rec.ID == "" {
			break
		}
		recs = append(recs, rec)
		off += jrnHeaderSize + n
	}
	return recs, size - off, nil
}

// encodeJournalRecord frames one record: header, CRC, JSON payload.
func encodeJournalRecord(kind byte, rec *JournalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	if len(payload) > jrnMaxRecord {
		return nil, fmt.Errorf("journal: record of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, jrnHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:], jrnMagic)
	buf[4] = kind
	binary.BigEndian.PutUint32(buf[5:], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[9:], crc32.Checksum(payload, jrnCRCTable))
	copy(buf[jrnHeaderSize:], payload)
	return buf, nil
}

// append writes one framed record and (by default) fdatasyncs it, so an
// acknowledged submission survives an immediate SIGKILL.
func (j *Journal) append(kind byte, rec *JournalRecord) error {
	buf, err := encodeJournalRecord(kind, rec)
	if err != nil {
		j.errs.Add(1)
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.errs.Add(1)
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(buf); err != nil {
		j.errs.Add(1)
		return fmt.Errorf("journal: append: %w", err)
	}
	j.bytesWritten.Add(uint64(len(buf)))
	if j.sync {
		if err := j.f.Sync(); err != nil {
			j.errs.Add(1)
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.recordsInLog++
	j.logBytes += int64(len(buf))
	switch kind {
	case jrnKindSubmit:
		if _, ok := j.live[rec.ID]; !ok {
			j.live[rec.ID] = &liveJob{doc: rec.Doc, deadline: rec.DeadlineUnixMS, order: j.nextOrder}
			j.nextOrder++
		}
	case jrnKindState:
		if st, perr := ParseState(rec.State); perr == nil && st.Terminal() {
			if _, ok := j.live[rec.ID]; ok {
				delete(j.live, rec.ID)
				j.terminalSince++
			}
		}
	}
	if j.shouldCompactLocked() {
		j.compactLocked()
	}
	return nil
}

// shouldCompactLocked decides whether the log has accumulated enough
// droppable history to rewrite. Callers hold j.mu. The recordsInLog guard
// keeps a log of purely live submit records from rewriting itself on every
// append once past the byte threshold — compaction must be able to shrink.
func (j *Journal) shouldCompactLocked() bool {
	if j.recordsInLog <= len(j.live) {
		return false
	}
	return j.terminalSince >= j.compactEvery ||
		(j.compactBytes > 0 && j.logBytes >= j.compactBytes)
}

// compactLocked rewrites the log to just the live jobs' submit records, in
// submission order, with the same write-temp-sync-rename dance the
// reopening compaction uses — a crash at any point leaves either the old
// or the new log fully intact. The journal.lock file is untouched (its
// inode, and the flock on it, must stay stable across rewrites). Failures
// count as Errors and leave the current log appendable; a failure after
// rename reopens on the fresh log or, if even that fails, closes the
// journal (appends then error rather than landing on a stale inode).
// Callers hold j.mu.
func (j *Journal) compactLocked() {
	ids := make([]string, 0, len(j.live))
	for id := range j.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return j.live[ids[a]].order < j.live[ids[b]].order })
	path := filepath.Join(j.dir, jrnFile)
	tmp := path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		j.errs.Add(1)
		return
	}
	abort := func() {
		tf.Close()
		os.Remove(tmp)
		j.errs.Add(1)
	}
	var size int64
	for _, id := range ids {
		lj := j.live[id]
		rec := JournalRecord{ID: id, Doc: lj.doc, DeadlineUnixMS: lj.deadline}
		buf, err := encodeJournalRecord(jrnKindSubmit, &rec)
		if err != nil {
			abort()
			return
		}
		if _, err := tf.Write(buf); err != nil {
			abort()
			return
		}
		size += int64(len(buf))
	}
	if err := tf.Sync(); err != nil {
		abort()
		return
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		j.errs.Add(1)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		j.errs.Add(1)
		return
	}
	j.f.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.errs.Add(1)
		j.f = nil
		return
	}
	j.f = f
	j.compacted += j.recordsInLog - len(ids)
	j.recordsInLog = len(ids)
	j.logBytes = size
	j.terminalSince = 0
	j.compactions.Add(1)
}

// SetCompactionThresholds tunes live compaction: the log is rewritten to
// just the in-flight submit records once terminalEvery jobs reached a
// terminal state since the last compaction, or once the log exceeds
// maxBytes with droppable records in it. terminalEvery <= 0 restores the
// default; maxBytes <= 0 disables the byte trigger.
func (j *Journal) SetCompactionThresholds(terminalEvery int, maxBytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalEvery <= 0 {
		terminalEvery = defaultCompactEvery
	}
	j.compactEvery = terminalEvery
	j.compactBytes = maxBytes
}

// AppendSubmit journals one admitted submission: its server-assigned ID,
// verbatim request document, and (optional) absolute deadline.
func (j *Journal) AppendSubmit(id string, doc []byte, deadlineUnixMS int64) error {
	err := j.append(jrnKindSubmit, &JournalRecord{ID: id, Doc: doc, DeadlineUnixMS: deadlineUnixMS})
	if err == nil {
		j.submits.Add(1)
	}
	return err
}

// AppendState journals one lifecycle transition.
func (j *Journal) AppendState(id string, state State) error {
	err := j.append(jrnKindState, &JournalRecord{ID: id, State: state.String()})
	if err == nil {
		j.transitions.Add(1)
	}
	return err
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	compacted := j.compacted
	j.mu.Unlock()
	return JournalStats{
		Submits:      j.submits.Load(),
		Transitions:  j.transitions.Load(),
		Recovered:    j.recovered,
		Compacted:    compacted,
		Compactions:  j.compactions.Load(),
		TornBytes:    j.tornBytes,
		BytesWritten: j.bytesWritten.Load(),
		Errors:       j.errs.Load(),
	}
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// SetSync toggles per-append fdatasync (on by default). Benchmarks may
// turn it off; crash recovery then depends on the OS having flushed.
func (j *Journal) SetSync(sync bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sync = sync
}

// Close releases the log and its lock. Appends after Close fail and count
// as Errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if j.lock != nil {
		funlockJrn(j.lock)
		j.lock.Close()
		j.lock = nil
	}
	return err
}
