package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTestJournal(t *testing.T, dir string) (*Journal, []IncompleteJob) {
	t.Helper()
	j, inc, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	return j, inc
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, inc := openTestJournal(t, dir)
	if len(inc) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(inc))
	}
	doc1 := []byte(`{"format":"stubby-optimize-request","plan":1}`)
	doc2 := []byte(`{"format":"stubby-optimize-request","plan":2}`)
	doc3 := []byte(`{"format":"stubby-optimize-request","plan":3}`)
	if err := j.AppendSubmit("job-1", doc1, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendState("job-1", Running); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendState("job-1", Done); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit("job-2", doc2, 1234567890); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendState("job-2", Running); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit("job-3", doc3, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendState("job-3", Canceled); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Submits != 3 || st.Transitions != 4 {
		t.Fatalf("stats = %+v, want 3 submits / 4 transitions", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: job-1 finished, job-3 was canceled — only job-2 (running at
	// the "crash") comes back, with its deadline intact.
	j2, inc := openTestJournal(t, dir)
	defer j2.Close()
	if len(inc) != 1 {
		t.Fatalf("recovered %d jobs, want 1 (got %+v)", len(inc), inc)
	}
	if inc[0].ID != "job-2" || !bytes.Equal(inc[0].Doc, doc2) || inc[0].DeadlineUnixMS != 1234567890 {
		t.Fatalf("recovered job = %+v", inc[0])
	}
	if st := j2.Stats(); st.Recovered != 1 || st.Compacted != 6 {
		t.Fatalf("reopen stats = %+v, want Recovered=1 Compacted=6", st)
	}
}

func TestJournalCanceledStaysCanceled(t *testing.T) {
	// A job canceled before the crash must not resurrect, in either record
	// order relative to other jobs.
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir)
	if err := j.AppendSubmit("job-1", []byte(`{"a":1}`), 0); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit("job-2", []byte(`{"a":2}`), 0); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendState("job-1", Running); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendState("job-1", Canceled); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, inc := openTestJournal(t, dir)
	defer j2.Close()
	if len(inc) != 1 || inc[0].ID != "job-2" {
		t.Fatalf("recovered %+v, want only job-2", inc)
	}
}

func TestJournalTornTail(t *testing.T) {
	// A crash mid-append leaves a partial record; reopening must keep every
	// earlier record and truncate the tail, never panic.
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir)
	for i := 1; i <= 5; i++ {
		if err := j.AppendSubmit(fmt.Sprintf("job-%d", i), []byte(fmt.Sprintf(`{"n":%d}`, i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	path := filepath.Join(dir, "journal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 40; cut += 7 {
		torn := data[:len(data)-cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, inc := openTestJournal(t, dir)
		// Records are same-sized; cutting < one record's bytes loses only
		// job-5. Every survivor must be intact and in order.
		if len(inc) != 4 {
			t.Fatalf("cut %d: recovered %d jobs, want 4", cut, len(inc))
		}
		for i, in := range inc {
			if want := fmt.Sprintf("job-%d", i+1); in.ID != want {
				t.Fatalf("cut %d: job %d = %s, want %s", cut, i, in.ID, want)
			}
		}
		if st := j2.Stats(); st.TornBytes == 0 {
			t.Fatalf("cut %d: TornBytes = 0, want > 0", cut)
		}
		j2.Close()
		// The compaction must have truncated the damage physically.
		if fi, err := os.Stat(path); err != nil || fi.Size() >= int64(len(torn)) {
			t.Fatalf("cut %d: compaction did not shrink the log (size %d)", cut, fi.Size())
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJournalRandomCorruption(t *testing.T) {
	// Random single-byte corruption anywhere in the log: earlier records
	// survive, the damage freezes the tail, reopen never panics, and a
	// record completed before the corruption is never duplicated.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		j, _ := openTestJournal(t, dir)
		const jobs = 6
		for i := 1; i <= jobs; i++ {
			if err := j.AppendSubmit(fmt.Sprintf("job-%d", i), []byte(fmt.Sprintf(`{"n":%d}`, i)), 0); err != nil {
				t.Fatal(err)
			}
		}
		// Mark job-1 done so re-duplication would be observable.
		if err := j.AppendState("job-1", Done); err != nil {
			t.Fatal(err)
		}
		j.Close()
		path := filepath.Join(dir, "journal.log")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		pos := rng.Intn(len(data))
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0xff
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, inc := openTestJournal(t, dir)
		seen := map[string]int{}
		for _, in := range inc {
			seen[in.ID]++
			if seen[in.ID] > 1 {
				t.Fatalf("trial %d (byte %d): job %s recovered twice", trial, pos, in.ID)
			}
		}
		// Recovery is a prefix of the true in-flight set: jobs 2..k for some
		// k, plus possibly job-1 if its Done record fell past the damage.
		if len(inc) > jobs {
			t.Fatalf("trial %d: recovered %d jobs from a %d-job log", trial, len(inc), jobs)
		}
		j2.Close()
	}
}

func TestJournalBadMagicFreezesTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir)
	if err := j.AppendSubmit("job-1", []byte(`{"n":1}`), 0); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(dir, "journal.log")
	data, _ := os.ReadFile(path)
	// Append garbage that starts with a valid-looking length but bad magic,
	// then a full valid-framed record with a wrong CRC.
	garbage := make([]byte, jrnHeaderSize+4)
	binary.BigEndian.PutUint32(garbage, 0xdeadbeef)
	data = append(data, garbage...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, inc := openTestJournal(t, dir)
	defer j2.Close()
	if len(inc) != 1 || inc[0].ID != "job-1" {
		t.Fatalf("recovered %+v, want job-1 only", inc)
	}
}

func TestJournalDoubleOpenFails(t *testing.T) {
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir)
	defer j.Close()
	if _, _, err := OpenJournal(dir); err == nil {
		t.Fatal("second live OpenJournal succeeded; want flock failure")
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j, _ := openTestJournal(t, dir)
	j.SetSync(false)
	var wg sync.WaitGroup
	const writers = 8
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := fmt.Sprintf("job-%d-%d", w, i)
				if err := j.AppendSubmit(id, []byte(`{"x":1}`), 0); err != nil {
					t.Error(err)
					return
				}
				if err := j.AppendState(id, Done); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.Close()
	j2, inc := openTestJournal(t, dir)
	defer j2.Close()
	if len(inc) != 0 {
		t.Fatalf("recovered %d jobs, all were terminal", len(inc))
	}
}

func TestBrokerSubscribeFrom(t *testing.T) {
	b := NewBroker()
	for i := 0; i < 10; i++ {
		b.Publish(i)
	}
	b.Close()

	// Every cut point: prefix via Subscribe, suffix via SubscribeFrom; the
	// concatenation must equal the uninterrupted stream.
	ctx := context.Background()
	var full []any
	for ev := range b.Subscribe(ctx) {
		full = append(full, ev)
	}
	if len(full) != 10 {
		t.Fatalf("full stream has %d events", len(full))
	}
	for cut := 0; cut <= 10; cut++ {
		var got []any
		i := 0
		for ev := range b.Subscribe(ctx) {
			if i == cut {
				break
			}
			got = append(got, ev)
			i++
		}
		for ev := range b.SubscribeFrom(ctx, cut) {
			got = append(got, ev)
		}
		if len(got) != len(full) {
			t.Fatalf("cut %d: %d events, want %d", cut, len(got), len(full))
		}
		for i := range full {
			if got[i] != full[i] {
				t.Fatalf("cut %d: event %d = %v, want %v", cut, i, got[i], full[i])
			}
		}
	}

	// Past the log on a closed broker: immediately closed channel.
	if _, ok := <-b.SubscribeFrom(ctx, 99); ok {
		t.Fatal("subscription past a closed log yielded an event")
	}
}

func TestBrokerSubscribeFromLive(t *testing.T) {
	// A resume cursor beyond the current log on a live broker waits for the
	// log to grow rather than replaying anything twice.
	b := NewBroker()
	b.Publish("a")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ch := b.SubscribeFrom(ctx, 1)
	go func() {
		b.Publish("b")
		b.Close()
	}()
	var got []any
	for ev := range ch {
		got = append(got, ev)
	}
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("resumed events = %v, want [b]", got)
	}
}

func TestJobDeadline(t *testing.T) {
	j := NewJobWithDeadline("job-1", time.Now().Add(10*time.Millisecond), func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	j.Execute()
	if j.State() != Failed {
		t.Fatalf("state = %s, want failed", j.State())
	}
	if _, err := j.Result(); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestCancelRacesCompletion(t *testing.T) {
	// Concurrent Cancel racing the job's natural completion: whichever wins,
	// the job ends in exactly one terminal state, Done() closes exactly
	// once, and the final StateChange event matches the terminal state.
	for i := 0; i < 200; i++ {
		release := make(chan struct{})
		j := NewJob("job-r", func(ctx context.Context) (any, error) {
			<-release
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
				return "ok", nil
			}
		})
		go j.Execute()
		go func() {
			close(release)
		}()
		if i%2 == 0 {
			j.Cancel()
		} else {
			go j.Cancel()
		}
		<-j.Done()
		st := j.State()
		if st != Done && st != Canceled {
			t.Fatalf("iteration %d: terminal state %s", i, st)
		}
		var last StateChange
		for ev := range j.Events(context.Background()) {
			if sc, ok := ev.(StateChange); ok {
				last = sc
			}
		}
		if last.State != st {
			t.Fatalf("iteration %d: last event state %s != job state %s", i, last.State, st)
		}
	}
}
