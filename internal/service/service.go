// Package service implements the asynchronous job machinery behind
// Session.Submit and the stubbyd server: a bounded admission queue feeding
// a fixed worker pool, per-job lifecycle state with cancellation, and a
// replayable event broker per job.
//
// The package is deliberately generic — jobs run opaque closures and
// brokers carry opaque events — so it sits below the public stubby package
// (which defines the typed Event stream) without an import cycle.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stubby-mr/stubby/internal/stubbyerr"
)

// State is a job's lifecycle state. The transition graph is a DAG:
//
//	Queued ──▶ Running ──▶ Done
//	   │           ├─────▶ Failed
//	   └───────────┴─────▶ Canceled
type State int32

const (
	// Queued: admitted, waiting for a worker.
	Queued State = iota
	// Running: a worker is executing the job.
	Running
	// Done: finished successfully; the result is available.
	Done
	// Failed: finished with an error.
	Failed
	// Canceled: stopped by cancellation, before or during execution.
	Canceled
)

var stateNames = [...]string{"queued", "running", "done", "failed", "canceled"}

// String returns the state's canonical wire spelling.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int32(s))
	}
	return stateNames[s]
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// ParseState maps a wire spelling back to a State.
func ParseState(v string) (State, error) {
	for i, n := range stateNames {
		if n == v {
			return State(i), nil
		}
	}
	return 0, fmt.Errorf("service: unknown state %q", v)
}

// StateChange is the lifecycle event a job publishes into its broker on
// every transition. The public package maps it onto its typed
// StateChangedEvent when draining the stream.
type StateChange struct {
	State State
	Err   error // terminal failure/cancellation cause, nil otherwise
}

// Broker is a per-job event log with fan-out: every event is retained, and
// each subscriber replays the log from the beginning before following live
// publishes. Retaining the full log makes subscription timing irrelevant —
// an HTTP event stream attached after the job finished still observes the
// complete lifecycle.
type Broker struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []any
	closed bool
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	b := &Broker{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Publish appends ev to the log and wakes subscribers. Publishing to a
// closed broker is a no-op.
func (b *Broker) Publish(ev any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.events = append(b.events, ev)
	b.cond.Broadcast()
}

// Close seals the log: subscribers finish their replay and their channels
// close. Close is idempotent.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

// Subscribe returns a channel that replays every event published so far,
// then follows live publishes. The channel closes when the broker closes
// (after the replay drains) or when ctx is done.
func (b *Broker) Subscribe(ctx context.Context) <-chan any {
	return b.SubscribeFrom(ctx, 0)
}

// Len returns the number of events published so far — the sequence number
// the next published event will occupy.
func (b *Broker) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// SubscribeFrom is Subscribe with a resume cursor: the replay starts at
// sequence number `from` (the index of an event in the broker's
// append-only log; event i is the i-th ever published) instead of 0. A
// reconnecting consumer that counted the events it already received can
// therefore resume with exactly the missed suffix — no gaps, no
// duplicates. Subscribing past the log on a closed broker yields an
// immediately-closed channel; on a live one it waits for the log to grow.
func (b *Broker) SubscribeFrom(ctx context.Context, from int) <-chan any {
	ch := make(chan any)
	// A canceled context must wake a subscriber blocked in cond.Wait.
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.cond.Broadcast()
	})
	go func() {
		defer close(ch)
		defer stop()
		next := from
		if next < 0 {
			next = 0
		}
		for {
			b.mu.Lock()
			for next >= len(b.events) && !b.closed && ctx.Err() == nil {
				b.cond.Wait()
			}
			if ctx.Err() != nil {
				b.mu.Unlock()
				return
			}
			if next >= len(b.events) { // closed and fully replayed
				b.mu.Unlock()
				return
			}
			ev := b.events[next]
			next++
			b.mu.Unlock()
			select {
			case ch <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// Job is one unit of asynchronous work: a closure plus lifecycle state, a
// cancellation scope, and an event broker. All methods are safe for
// concurrent use.
type Job struct {
	id     string
	run    func(context.Context) (any, error)
	broker *Broker

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	err      error
	result   any
	canceled bool // Cancel was requested (distinguishes external ctx errors)
	done     chan struct{}
}

// NewJob builds a queued job around run. The job's execution context is
// independent of the submitter's: it lives until the job finishes or
// Cancel fires.
func NewJob(id string, run func(context.Context) (any, error)) *Job {
	return NewJobWithDeadline(id, time.Time{}, run)
}

// NewJobWithDeadline is NewJob with an absolute execution deadline (zero =
// none): the job's context expires at the deadline, so a submission whose
// client propagated its deadline over the wire fails with a deadline error
// instead of burning a worker past the point anyone is waiting.
func NewJobWithDeadline(id string, deadline time.Time, run func(context.Context) (any, error)) *Job {
	var ctx context.Context
	var cancel context.CancelFunc
	if deadline.IsZero() {
		ctx, cancel = context.WithCancel(context.Background())
	} else {
		ctx, cancel = context.WithDeadline(context.Background(), deadline)
	}
	j := &Job{
		id:     id,
		run:    run,
		broker: NewBroker(),
		ctx:    ctx,
		cancel: cancel,
		state:  Queued,
		done:   make(chan struct{}),
	}
	j.broker.Publish(StateChange{State: Queued})
	return j
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the job's outcome. It is only meaningful once the job is
// terminal (Wait first, or read Done()).
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is terminal or ctx is done, returning ctx's
// error in the latter case (the job keeps running).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cancel requests cancellation: a queued job transitions to Canceled
// immediately (it will never run); a running job's context is canceled and
// the job transitions when its closure returns. Cancel is idempotent and a
// no-op on terminal jobs.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.canceled = true
	switch j.state {
	case Queued:
		j.finishLocked(Canceled, nil, context.Canceled)
		j.mu.Unlock()
	case Running:
		j.mu.Unlock()
		j.cancel()
	default:
		j.mu.Unlock()
	}
}

// Publish emits an event into the job's broker.
func (j *Job) Publish(ev any) { j.broker.Publish(ev) }

// Events subscribes to the job's event stream (see Broker.Subscribe).
func (j *Job) Events(ctx context.Context) <-chan any { return j.broker.Subscribe(ctx) }

// EventsFrom subscribes with a resume cursor (see Broker.SubscribeFrom): a
// reconnecting consumer that counted its received events resumes with
// exactly the missed suffix.
func (j *Job) EventsFrom(ctx context.Context, from int) <-chan any {
	return j.broker.SubscribeFrom(ctx, from)
}

// Finish completes a queued job in place with res, bypassing the worker
// pool — the fast path for submissions whose result is already at hand
// (e.g. a plan-store hit). Subscribers still observe the full lifecycle:
// Running is published immediately before the terminal Done. Finish is a
// no-op unless the job is still Queued (in particular, a canceled job
// stays canceled) and reports whether it completed the job.
func (j *Job) Finish(res any) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Queued {
		return false
	}
	j.state = Running
	j.broker.Publish(StateChange{State: Running})
	j.finishLocked(Done, res, nil)
	return true
}

// Execute runs the job on the calling goroutine (the worker). A job
// canceled while queued is skipped.
func (j *Job) Execute() {
	j.mu.Lock()
	if j.state != Queued {
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.mu.Unlock()
	j.broker.Publish(StateChange{State: Running})

	res, err := j.run(j.ctx)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Running { // unreachable today; guards future transitions
		return
	}
	switch {
	case err == nil:
		j.finishLocked(Done, res, nil)
	case errors.Is(err, context.Canceled):
		j.finishLocked(Canceled, nil, err)
	default:
		j.finishLocked(Failed, nil, err)
	}
}

// finishLocked moves the job to a terminal state. Callers hold j.mu.
func (j *Job) finishLocked(s State, res any, err error) {
	j.state = s
	j.result = res
	j.err = err
	j.cancel() // release the context's resources in every terminal path
	j.broker.Publish(StateChange{State: s, Err: err})
	j.broker.Close()
	close(j.done)
}

// Queue is a bounded admission queue in front of a fixed worker pool.
// Submit never blocks: a full queue sheds the job with a typed
// KindOverloaded error instead of queueing unbounded work, and a draining
// queue rejects with KindUnavailable.
type Queue struct {
	jobs    chan *Job
	workers int
	busy    atomic.Int64
	wg      sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	closeOnce sync.Once
}

// NewQueue starts workers goroutines serving a queue of the given depth.
// Both are clamped to at least 1.
func NewQueue(workers, depth int) *Queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	q := &Queue{jobs: make(chan *Job, depth), workers: workers}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer q.wg.Done()
			for j := range q.jobs {
				q.busy.Add(1)
				j.Execute()
				q.busy.Add(-1)
			}
		}()
	}
	return q
}

// Depth returns the queue's admission capacity.
func (q *Queue) Depth() int { return cap(q.jobs) }

// Workers returns the worker-pool size.
func (q *Queue) Workers() int { return q.workers }

// Queued returns the number of jobs admitted but not yet picked up by a
// worker (a point-in-time snapshot).
func (q *Queue) Queued() int { return len(q.jobs) }

// Busy returns the number of workers currently executing a job (a
// point-in-time snapshot).
func (q *Queue) Busy() int { return int(q.busy.Load()) }

// Submit admits j, or rejects it with KindOverloaded (queue full) or
// KindUnavailable (draining). It never blocks.
func (q *Queue) Submit(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return stubbyerr.New(stubbyerr.KindUnavailable, "submit", "", "",
			"service is draining and accepts no new jobs")
	}
	select {
	case q.jobs <- j:
		return nil
	default:
		return stubbyerr.New(stubbyerr.KindOverloaded, "submit", "", "",
			"admission queue full (depth %d)", cap(q.jobs))
	}
}

// Drain stops admission and waits — up to ctx — for the workers to finish
// every job already admitted (queued jobs still run; cancel them first for
// a fast drain). Drain is idempotent; on ctx expiry it returns ctx's error
// while workers keep draining in the background.
func (q *Queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.closeOnce.Do(func() { close(q.jobs) })
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
