package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/stubby-mr/stubby/internal/stubbyerr"
)

// collect drains a subscription into a slice (the broker must be closed).
func collect(t *testing.T, ch <-chan any) []any {
	t.Helper()
	var out []any
	for ev := range ch {
		out = append(out, ev)
	}
	return out
}

func TestBrokerReplaysFullLogToLateSubscribers(t *testing.T) {
	b := NewBroker()
	b.Publish("a")
	b.Publish("b")
	early := b.Subscribe(context.Background())
	b.Publish("c")
	b.Close()
	late := b.Subscribe(context.Background())

	want := []any{"a", "b", "c"}
	for name, ch := range map[string]<-chan any{"early": early, "late": late} {
		got := collect(t, ch)
		if len(got) != len(want) {
			t.Fatalf("%s subscriber saw %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s subscriber saw %v, want %v", name, got, want)
			}
		}
	}
}

func TestBrokerSubscribeHonorsContext(t *testing.T) {
	b := NewBroker()
	b.Publish("a")
	ctx, cancel := context.WithCancel(context.Background())
	ch := b.Subscribe(ctx)
	<-ch // consume the replayed event, then hang on an open broker
	cancel()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("expected closed channel after cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription did not close after context cancel")
	}
}

func TestJobLifecycleDone(t *testing.T) {
	j := NewJob("j1", func(ctx context.Context) (any, error) { return 42, nil })
	if got := j.State(); got != Queued {
		t.Fatalf("state = %v, want queued", got)
	}
	j.Execute()
	if got := j.State(); got != Done {
		t.Fatalf("state = %v, want done", got)
	}
	res, err := j.Result()
	if err != nil || res != 42 {
		t.Fatalf("result = %v, %v", res, err)
	}
	var states []State
	for ev := range j.Events(context.Background()) {
		if sc, ok := ev.(StateChange); ok {
			states = append(states, sc.State)
		}
	}
	want := []State{Queued, Running, Done}
	if len(states) != len(want) {
		t.Fatalf("state transitions %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state transitions %v, want %v", states, want)
		}
	}
}

func TestJobFailurePreservesError(t *testing.T) {
	boom := errors.New("boom")
	j := NewJob("j1", func(ctx context.Context) (any, error) { return nil, boom })
	j.Execute()
	if got := j.State(); got != Failed {
		t.Fatalf("state = %v, want failed", got)
	}
	if _, err := j.Result(); !errors.Is(err, boom) {
		t.Fatalf("result err = %v, want boom", err)
	}
}

func TestJobCancelWhileQueued(t *testing.T) {
	ran := false
	j := NewJob("j1", func(ctx context.Context) (any, error) { ran = true; return nil, nil })
	j.Cancel()
	if got := j.State(); got != Canceled {
		t.Fatalf("state = %v, want canceled", got)
	}
	j.Execute() // a worker picking up a canceled job must skip it
	if ran {
		t.Fatal("canceled queued job still ran")
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("done channel not closed")
	}
}

func TestJobCancelWhileRunning(t *testing.T) {
	started := make(chan struct{})
	j := NewJob("j1", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	go j.Execute()
	<-started
	j.Cancel()
	if err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := j.State(); got != Canceled {
		t.Fatalf("state = %v, want canceled", got)
	}
}

func TestQueueShedsWithOverloadedKind(t *testing.T) {
	q := NewQueue(1, 1)
	release := make(chan struct{})
	block := func(ctx context.Context) (any, error) { <-release; return nil, nil }

	running := NewJob("running", func(ctx context.Context) (any, error) { <-release; return nil, nil })
	queued := NewJob("queued", block)
	shed := NewJob("shed", block)

	if err := q.Submit(running); err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked the first job up, so the queue slot is
	// truly free for the second.
	deadline := time.Now().Add(5 * time.Second)
	for running.State() != Running {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if err := q.Submit(queued); err != nil {
		t.Fatal(err)
	}
	err := q.Submit(shed)
	if !errors.Is(err, stubbyerr.KindOverloaded) {
		t.Fatalf("third submit error = %v, want KindOverloaded", err)
	}
	var se *stubbyerr.Error
	if !errors.As(err, &se) {
		t.Fatalf("overload error is not a *stubbyerr.Error: %v", err)
	}
	close(release)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if running.State() != Done || queued.State() != Done {
		t.Fatalf("states after drain: %v, %v", running.State(), queued.State())
	}
}

func TestQueueRejectsAfterDrain(t *testing.T) {
	q := NewQueue(1, 4)
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := q.Submit(NewJob("late", func(ctx context.Context) (any, error) { return nil, nil }))
	if !errors.Is(err, stubbyerr.KindUnavailable) {
		t.Fatalf("submit after drain = %v, want KindUnavailable", err)
	}
}

func TestQueueDrainRunsQueuedJobs(t *testing.T) {
	q := NewQueue(2, 8)
	var mu sync.Mutex
	ran := 0
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j := NewJob("j", func(ctx context.Context) (any, error) {
			mu.Lock()
			ran++
			mu.Unlock()
			return nil, nil
		})
		jobs = append(jobs, j)
		if err := q.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran != 6 {
		t.Fatalf("ran %d jobs, want 6", ran)
	}
	for _, j := range jobs {
		if j.State() != Done {
			t.Fatalf("job state %v after drain", j.State())
		}
	}
}

func TestParseStateRoundTrip(t *testing.T) {
	for _, s := range []State{Queued, Running, Done, Failed, Canceled} {
		got, err := ParseState(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseState(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseState("nope"); err == nil {
		t.Fatal("ParseState accepted garbage")
	}
}
