package keyval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randInterval draws an interval with random (possibly unbounded, possibly
// empty) integer endpoints.
func randInterval(r *rand.Rand) Interval {
	var iv Interval
	if r.Intn(4) != 0 {
		iv.Lo = int64(r.Intn(200) - 100)
	}
	if r.Intn(4) != 0 {
		iv.Hi = int64(r.Intn(200) - 100)
	}
	return iv
}

func randIvField(r *rand.Rand) Field {
	if r.Intn(8) == 0 {
		return float64(r.Intn(4000)-2000) / 10
	}
	return int64(r.Intn(240) - 120)
}

// TestIntervalIntersectIsConjunctionQuick: membership in the intersection
// is exactly membership in both intervals.
func TestIntervalIntersectIsConjunctionQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		inter := a.Intersect(b)
		for i := 0; i < 50; i++ {
			v := randIvField(r)
			if inter.Contains(v) != (a.Contains(v) && b.Contains(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalIntersectCommutesQuick: Intersect is commutative up to
// membership.
func TestIntervalIntersectCommutesQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		ab, ba := a.Intersect(b), b.Intersect(a)
		for i := 0; i < 30; i++ {
			v := randIvField(r)
			if ab.Contains(v) != ba.Contains(v) {
				return false
			}
		}
		return ab.Empty() == ba.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalOverlapsSymmetricQuick: Overlaps is symmetric and consistent
// with Empty of the intersection.
func TestIntervalOverlapsSymmetricQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randInterval(r), randInterval(r)
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		return a.Overlaps(b) == !a.Intersect(b).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalEmptyContainsNothingQuick: an empty interval contains no
// value; a non-empty bounded integer interval contains its Lo endpoint.
func TestIntervalEmptyContainsNothingQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		iv := randInterval(r)
		if iv.Empty() {
			for i := 0; i < 30; i++ {
				if iv.Contains(randIvField(r)) {
					return false
				}
			}
			return true
		}
		if iv.Lo != nil && !iv.Contains(iv.Lo) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRangeBoundsPartitionAgreementQuick: for random ascending split
// points, the partition chosen by PartitionSpec.Partition for a key always
// has bounds that contain the key's first field.
func TestRangeBoundsPartitionAgreementQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		set := map[int64]bool{}
		var points []Tuple
		for len(points) < n {
			v := int64(r.Intn(200) - 100)
			if !set[v] {
				set[v] = true
				points = append(points, T(v))
			}
		}
		SortTuples(points)
		spec := PartitionSpec{Type: RangePartition, SplitPoints: points}
		if spec.Validate() != nil {
			return false
		}
		bounds := RangeBounds(points)
		for i := 0; i < 60; i++ {
			key := T(int64(r.Intn(240) - 120))
			p := spec.Partition(key, spec.NumPartitions(0))
			if p < 0 || p >= len(bounds) {
				return false
			}
			if !bounds[p].FieldRangeOverlaps(Interval{Lo: key[0], Hi: nil}) &&
				!bounds[p].FieldRangeOverlaps(Interval{Lo: nil, Hi: key[0]}) {
				return false
			}
			// Direct containment: Lo <= key < Hi on the first field.
			b := bounds[p]
			if len(b.Lo) > 0 && CompareFields(key[0], b.Lo[0]) < 0 {
				return false
			}
			if len(b.Hi) > 0 && CompareFields(key[0], b.Hi[0]) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
