// Package keyval provides the record substrate for the simulated MapReduce
// runtime: tuples of typed fields, key-value pairs, comparison and hashing,
// byte-size accounting, partition functions (hash and range), and interval
// predicates used by filter annotations and partition pruning.
//
// Tuples are positional; field names live in workflow schema annotations
// (package wf), mirroring how Stubby treats MapReduce programs as black
// boxes whose key/value composition is exposed only through annotations.
package keyval

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
)

// Field is a single value in a tuple. The supported dynamic types are
// int64, float64, string, and bool. Using a small closed set keeps
// comparison, hashing, and size accounting total and deterministic.
type Field any

// Tuple is an ordered list of fields. A nil or empty tuple is valid and
// compares less than any non-empty tuple.
type Tuple []Field

// Pair is one key-value record flowing through a MapReduce job.
type Pair struct {
	Key   Tuple
	Value Tuple
}

// T builds a tuple from its arguments, normalizing integer types to int64
// and float32 to float64 so that comparison is well defined.
func T(fields ...any) Tuple {
	t := make(Tuple, len(fields))
	for i, f := range fields {
		t[i] = normalize(f)
	}
	return t
}

func normalize(f any) Field {
	switch v := f.(type) {
	case int:
		return int64(v)
	case int32:
		return int64(v)
	case int64:
		return v
	case uint:
		return int64(v)
	case uint32:
		return int64(v)
	case uint64:
		return int64(v)
	case float32:
		return float64(v)
	case float64:
		return v
	case string:
		return v
	case bool:
		return v
	case nil:
		return nil
	default:
		panic(fmt.Sprintf("keyval: unsupported field type %T", f))
	}
}

// typeRank orders fields of different dynamic types so that CompareFields is
// a total order: nil < bool < int64/float64 (numeric) < string.
func typeRank(f Field) int {
	switch f.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int64, float64:
		return 2
	case string:
		return 3
	default:
		panic(fmt.Sprintf("keyval: unsupported field type %T", f))
	}
}

// CompareFields returns -1, 0, or +1 ordering a before, equal to, or after b.
// Numeric fields compare by value across int64/float64.
func CompareFields(a, b Field) int {
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch av := a.(type) {
	case nil:
		return 0
	case bool:
		bv := b.(bool)
		switch {
		case av == bv:
			return 0
		case !av:
			return -1
		default:
			return 1
		}
	case int64:
		switch bv := b.(type) {
		case int64:
			switch {
			case av < bv:
				return -1
			case av > bv:
				return 1
			default:
				return 0
			}
		case float64:
			return compareFloat(float64(av), bv)
		}
	case float64:
		switch bv := b.(type) {
		case int64:
			return compareFloat(av, float64(bv))
		case float64:
			return compareFloat(av, bv)
		}
	case string:
		return strings.Compare(av, b.(string))
	}
	panic("keyval: unreachable comparison")
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Compare orders tuples lexicographically field by field. A shorter tuple
// that is a prefix of a longer one compares less.
func Compare(a, b Tuple) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if c := CompareFields(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// CompareOn orders tuples by the projection onto the given field indices.
// Indices beyond a tuple's length are treated as nil fields.
func CompareOn(a, b Tuple, fields []int) int {
	for _, i := range fields {
		var fa, fb Field
		if i < len(a) {
			fa = a[i]
		}
		if i < len(b) {
			fb = b[i]
		}
		if c := CompareFields(fa, fb); c != 0 {
			return c
		}
	}
	return 0
}

// EqualOn reports whether two tuples agree on the given field indices.
func EqualOn(a, b Tuple, fields []int) bool {
	return CompareOn(a, b, fields) == 0
}

// Project returns the sub-tuple at the given field indices. Out-of-range
// indices yield nil fields. A nil fields list selects the whole tuple.
func Project(t Tuple, fields []int) Tuple {
	if fields == nil {
		return Clone(t)
	}
	out := make(Tuple, len(fields))
	for j, i := range fields {
		if i < len(t) {
			out[j] = t[i]
		}
	}
	return out
}

// Clone returns a copy of the tuple. Fields are immutable values, so a
// shallow copy of the slice suffices.
func Clone(t Tuple) Tuple {
	if t == nil {
		return nil
	}
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Hash returns a 64-bit FNV-1a hash of the projection of t onto fields.
// If fields is nil the whole tuple is hashed.
func Hash(t Tuple, fields []int) uint64 {
	h := fnv.New64a()
	write := func(f Field) {
		var buf [9]byte
		switch v := f.(type) {
		case nil:
			buf[0] = 0
			h.Write(buf[:1])
		case bool:
			buf[0] = 1
			if v {
				buf[1] = 1
			}
			h.Write(buf[:2])
		case int64:
			buf[0] = 2
			putUint64(buf[1:], uint64(v))
			h.Write(buf[:9])
		case float64:
			buf[0] = 3
			putUint64(buf[1:], math.Float64bits(v))
			h.Write(buf[:9])
		case string:
			buf[0] = 4
			h.Write(buf[:1])
			h.Write([]byte(v))
			buf[0] = 0xff
			h.Write(buf[:1])
		}
	}
	if fields == nil {
		for _, f := range t {
			write(f)
		}
		return h.Sum64()
	}
	for _, i := range fields {
		if i < len(t) {
			write(t[i])
		} else {
			write(nil)
		}
	}
	return h.Sum64()
}

// HashTuples fingerprints an ordered list of tuples: FNV-1a-style folding
// of the per-tuple hashes. Used to key split-point lists (plan signatures,
// skew caches) without materializing a string. The offset basis matches the
// historical in-tree copies — plan signatures derive search seeds from it,
// so the value is load-bearing for reproducibility.
func HashTuples(ts []Tuple) uint64 {
	var h uint64 = 1469598103934665603
	for _, t := range ts {
		h ^= Hash(t, nil)
		h *= 1099511628211
	}
	return h
}

// HashInts fingerprints an int slice (FNV-1a-style over the values, length
// folded in as a terminator), giving comparable-key consumers a fixed-size
// stand-in for a field-index list.
func HashInts(xs []int) uint64 {
	var h uint64 = 1469598103934665603
	for _, x := range xs {
		h ^= uint64(x)
		h *= 1099511628211
	}
	h ^= uint64(len(xs)) | 1<<63
	h *= 1099511628211
	return h
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * (7 - i)))
	}
}

// FieldSize returns the encoded size in bytes of one field, used for I/O
// cost accounting. Sizes approximate a binary serialization: one tag byte
// plus the payload.
func FieldSize(f Field) int64 {
	switch v := f.(type) {
	case nil:
		return 1
	case bool:
		return 2
	case int64:
		return 9
	case float64:
		return 9
	case string:
		return int64(len(v)) + 3
	default:
		panic(fmt.Sprintf("keyval: unsupported field type %T", f))
	}
}

// Size returns the encoded size in bytes of a tuple.
func Size(t Tuple) int64 {
	var n int64 = 2 // field-count header
	for _, f := range t {
		n += FieldSize(f)
	}
	return n
}

// PairSize returns the encoded size in bytes of a key-value pair.
func PairSize(p Pair) int64 {
	return Size(p.Key) + Size(p.Value)
}

// PairsSize returns the total encoded size of a slice of pairs.
func PairsSize(ps []Pair) int64 {
	var n int64
	for _, p := range ps {
		n += PairSize(p)
	}
	return n
}

// String renders a tuple for debugging, e.g. (42, "a").
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		switch v := f.(type) {
		case string:
			fmt.Fprintf(&b, "%q", v)
		default:
			fmt.Fprintf(&b, "%v", v)
		}
	}
	b.WriteByte(')')
	return b.String()
}
