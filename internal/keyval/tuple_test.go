package keyval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tu := T(int(1), int32(2), int64(3), uint(4), uint32(5), uint64(6), float32(1.5), 2.5, "x", true, nil)
	want := Tuple{int64(1), int64(2), int64(3), int64(4), int64(5), int64(6), 1.5, 2.5, "x", true, nil}
	if Compare(tu, want) != 0 {
		t.Fatalf("T normalized to %v, want %v", tu, want)
	}
}

func TestNormalizeUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported field type")
		}
	}()
	T(struct{}{})
}

func TestCompareFieldsTotalOrder(t *testing.T) {
	// nil < bool < numeric < string
	ordered := []Field{nil, false, true, int64(-5), int64(0), 0.5, int64(1), "a", "b"}
	for i := range ordered {
		for j := range ordered {
			got := CompareFields(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("CompareFields(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareFieldsNumericCross(t *testing.T) {
	if CompareFields(int64(2), 2.0) != 0 {
		t.Error("int64(2) should equal float64(2)")
	}
	if CompareFields(int64(2), 2.5) != -1 {
		t.Error("int64(2) should be < 2.5")
	}
	if CompareFields(3.5, int64(3)) != 1 {
		t.Error("3.5 should be > int64(3)")
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{T(1, 2), T(1, 2), 0},
		{T(1), T(1, 2), -1},
		{T(1, 3), T(1, 2), 1},
		{nil, T(), 0},
		{nil, T(1), -1},
		{T("a", 1), T("a", 2), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareOnAndProject(t *testing.T) {
	a, b := T(1, "x", 9), T(2, "x", 3)
	if CompareOn(a, b, []int{1}) != 0 {
		t.Error("projection on field 1 should be equal")
	}
	if CompareOn(a, b, []int{0}) != -1 {
		t.Error("projection on field 0 should order a < b")
	}
	if CompareOn(a, b, []int{2, 0}) != 1 {
		t.Error("projection on fields (2,0) should order a > b")
	}
	p := Project(a, []int{2, 0, 7})
	if Compare(p, T(9, 1, nil)) != 0 {
		t.Errorf("Project = %v", p)
	}
	if !EqualOn(a, b, []int{1}) || EqualOn(a, b, []int{0}) {
		t.Error("EqualOn mismatch")
	}
}

func TestHashDeterministicAndProjective(t *testing.T) {
	a := T(1, "x", 2.5)
	if Hash(a, nil) != Hash(Clone(a), nil) {
		t.Error("hash not deterministic across clones")
	}
	if Hash(a, []int{0}) != Hash(T(1, "y", 9.0), []int{0}) {
		t.Error("hash on field 0 should ignore other fields")
	}
	if Hash(T("ab", "c"), nil) == Hash(T("a", "bc"), nil) {
		t.Error("string framing must prevent concatenation collisions")
	}
}

func TestSizes(t *testing.T) {
	if FieldSize(int64(1)) != 9 || FieldSize(1.0) != 9 || FieldSize(true) != 2 || FieldSize(nil) != 1 {
		t.Error("scalar sizes wrong")
	}
	if FieldSize("abc") != 6 {
		t.Errorf("string size = %d, want 6", FieldSize("abc"))
	}
	tu := T(1, "ab")
	if Size(tu) != 2+9+5 {
		t.Errorf("tuple size = %d", Size(tu))
	}
	p := Pair{Key: T(1), Value: T("ab")}
	if PairSize(p) != Size(p.Key)+Size(p.Value) {
		t.Error("pair size mismatch")
	}
	if PairsSize([]Pair{p, p}) != 2*PairSize(p) {
		t.Error("pairs size mismatch")
	}
}

func TestTupleString(t *testing.T) {
	if s := T(1, "a").String(); s != `(1, "a")` {
		t.Errorf("String() = %s", s)
	}
}

// genTuple builds a random tuple for property tests.
func genTuple(r *rand.Rand) Tuple {
	n := r.Intn(4)
	t := make(Tuple, n)
	for i := range t {
		switch r.Intn(4) {
		case 0:
			t[i] = int64(r.Intn(100))
		case 1:
			t[i] = float64(r.Intn(100)) / 2
		case 2:
			t[i] = string(rune('a' + r.Intn(26)))
		default:
			t[i] = r.Intn(2) == 0
		}
	}
	return t
}

func TestCompareProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	anti := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genTuple(r), genTuple(r)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(anti, cfg); err != nil {
		t.Error(err)
	}
	// Transitivity on a sorted triple.
	trans := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genTuple(r), genTuple(r), genTuple(r)
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, cfg); err != nil {
		t.Error(err)
	}
	// Reflexivity and hash agreement: equal tuples hash equally.
	hash := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genTuple(r)
		return Compare(a, a) == 0 && Hash(a, nil) == Hash(Clone(a), nil)
	}
	if err := quick.Check(hash, cfg); err != nil {
		t.Error(err)
	}
}
