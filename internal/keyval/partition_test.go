package keyval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashPartitionInRange(t *testing.T) {
	spec := PartitionSpec{Type: HashPartition}
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 1
		key := genTuple(r)
		p := spec.Partition(key, n)
		return p >= 0 && p < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestHashPartitionOnSubsetOfFields(t *testing.T) {
	spec := PartitionSpec{Type: HashPartition, KeyFields: []int{0}}
	a, b := T(7, "x"), T(7, "y")
	for n := 1; n <= 16; n++ {
		if spec.Partition(a, n) != spec.Partition(b, n) {
			t.Fatalf("keys equal on field 0 must co-partition (n=%d)", n)
		}
	}
}

func TestRangePartition(t *testing.T) {
	spec := PartitionSpec{
		Type:        RangePartition,
		SplitPoints: []Tuple{T(100), T(200), T(300)},
	}
	cases := []struct {
		key  Tuple
		want int
	}{
		{T(0), 0}, {T(99), 0}, {T(100), 1}, {T(150), 1},
		{T(200), 2}, {T(299), 2}, {T(300), 3}, {T(1000), 3},
	}
	n := spec.NumPartitions(0)
	if n != 4 {
		t.Fatalf("NumPartitions = %d, want 4", n)
	}
	for _, c := range cases {
		if got := spec.Partition(c.key, n); got != c.want {
			t.Errorf("Partition(%v) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestRangePartitionMonotone(t *testing.T) {
	spec := PartitionSpec{Type: RangePartition, SplitPoints: []Tuple{T(10), T(20)}}
	f := func(a, b int64) bool {
		if a > b {
			a, b = b, a
		}
		n := spec.NumPartitions(0)
		return spec.Partition(T(a), n) <= spec.Partition(T(b), n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionSpecValidate(t *testing.T) {
	good := PartitionSpec{Type: RangePartition, SplitPoints: []Tuple{T(1), T(2)}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := PartitionSpec{Type: RangePartition, SplitPoints: []Tuple{T(2), T(2)}}
	if err := bad.Validate(); err == nil {
		t.Error("non-ascending split points accepted")
	}
	hash := PartitionSpec{Type: HashPartition, SplitPoints: []Tuple{T(1)}}
	if err := hash.Validate(); err == nil {
		t.Error("hash spec with split points accepted")
	}
}

func TestPartitionSpecCloneEqual(t *testing.T) {
	s := PartitionSpec{
		Type:        RangePartition,
		KeyFields:   []int{0},
		SortFields:  []int{0, 1},
		SplitPoints: []Tuple{T(5)},
	}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.SplitPoints[0][0] = int64(9)
	if s.SplitPoints[0][0] != int64(5) {
		t.Fatal("clone aliases split points")
	}
	if s.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	other := s.Clone()
	other.SortFields = []int{1, 0}
	if s.Equal(other) {
		t.Fatal("different sort fields reported equal")
	}
}

func TestEffectiveFieldsDefaults(t *testing.T) {
	s := PartitionSpec{}
	if got := s.EffectiveKeyFields(3); len(got) != 3 || got[2] != 2 {
		t.Errorf("EffectiveKeyFields = %v", got)
	}
	if got := s.EffectiveSortFields(2); len(got) != 2 || got[0] != 0 {
		t.Errorf("EffectiveSortFields = %v", got)
	}
}

func TestSortPairsAndIsSorted(t *testing.T) {
	pairs := []Pair{
		{Key: T(2, "b"), Value: T(1)},
		{Key: T(1, "z"), Value: T(2)},
		{Key: T(2, "a"), Value: T(3)},
		{Key: T(1, "z"), Value: T(1)},
	}
	SortPairs(pairs, []int{0, 1})
	want := []Tuple{T(1, "z"), T(1, "z"), T(2, "a"), T(2, "b")}
	for i, p := range pairs {
		if Compare(p.Key, want[i]) != 0 {
			t.Fatalf("pos %d key = %v, want %v", i, p.Key, want[i])
		}
	}
	// Ties broken by value for determinism.
	if pairs[0].Value[0].(int64) != 1 {
		t.Error("tie not broken by value")
	}
	if !IsSortedOn(pairs, []int{0}) {
		t.Error("IsSortedOn should hold after sort")
	}
	if IsSortedOn([]Pair{{Key: T(2)}, {Key: T(1)}}, []int{0}) {
		t.Error("IsSortedOn false negative")
	}
}

func TestSortThenGroupContiguous(t *testing.T) {
	// Sorting on (O, Z) must keep groups of O contiguous — the property the
	// intra-job vertical packing postcondition relies on (Figure 4).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pairs := make([]Pair, 50)
		for i := range pairs {
			pairs[i] = Pair{Key: T(int64(r.Intn(5)), int64(r.Intn(5)))}
		}
		SortPairs(pairs, []int{0, 1})
		seen := map[int64]bool{}
		var prev int64 = -1
		for _, p := range pairs {
			o := p.Key[0].(int64)
			if o != prev {
				if seen[o] {
					return false // group of O reappeared: not contiguous
				}
				seen[o] = true
				prev = o
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEquiDepthSplitPoints(t *testing.T) {
	var sample []Tuple
	for i := 0; i < 1000; i++ {
		sample = append(sample, T(int64(i)))
	}
	points := EquiDepthSplitPoints(sample, nil, 4)
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	spec := PartitionSpec{Type: RangePartition, SplitPoints: points}
	if err := spec.Validate(); err != nil {
		t.Fatalf("derived split points invalid: %v", err)
	}
	// Roughly balanced: each of the 4 partitions should get ~250 keys.
	counts := make([]int, 4)
	for _, s := range sample {
		counts[spec.Partition(s, 4)]++
	}
	for i, c := range counts {
		if c < 200 || c > 300 {
			t.Errorf("partition %d holds %d keys; want ~250", i, c)
		}
	}
}

func TestEquiDepthSplitPointsLowCardinality(t *testing.T) {
	sample := []Tuple{T(1), T(1), T(1), T(1)}
	points := EquiDepthSplitPoints(sample, nil, 4)
	if len(points) > 1 {
		t.Fatalf("low-cardinality sample should collapse duplicates, got %v", points)
	}
	if EquiDepthSplitPoints(nil, nil, 4) != nil {
		t.Error("empty sample should produce no points")
	}
	if EquiDepthSplitPoints(sample, nil, 1) != nil {
		t.Error("n=1 should produce no points")
	}
}

func TestRangeBoundsAndPruneInterval(t *testing.T) {
	bounds := RangeBounds([]Tuple{T(100), T(200)})
	if len(bounds) != 3 {
		t.Fatalf("bounds = %d, want 3", len(bounds))
	}
	filter := Interval{Lo: int64(0), Hi: int64(100)}
	overlapping := 0
	for _, b := range bounds {
		if b.Interval().Overlaps(filter) {
			overlapping++
		}
	}
	if overlapping != 1 {
		t.Errorf("filter [0,100) should overlap exactly partition 0, got %d", overlapping)
	}
}
