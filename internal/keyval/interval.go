package keyval

import "fmt"

// Interval is a half-open interval [Lo, Hi) over a single field, used by
// filter annotations ("J6.filter = {0 <= O < 100}") and by partition pruning
// against range-partitioned datasets. A nil bound is unbounded on that side.
type Interval struct {
	Lo Field // inclusive lower bound; nil = -inf
	Hi Field // exclusive upper bound; nil = +inf
}

// Contains reports whether the field value lies in [Lo, Hi).
func (iv Interval) Contains(f Field) bool {
	if iv.Lo != nil && CompareFields(f, iv.Lo) < 0 {
		return false
	}
	if iv.Hi != nil && CompareFields(f, iv.Hi) >= 0 {
		return false
	}
	return true
}

// Empty reports whether the interval contains no values (Lo >= Hi).
func (iv Interval) Empty() bool {
	if iv.Lo == nil || iv.Hi == nil {
		return false
	}
	return CompareFields(iv.Lo, iv.Hi) >= 0
}

// Unbounded reports whether the interval covers everything.
func (iv Interval) Unbounded() bool {
	return iv.Lo == nil && iv.Hi == nil
}

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	out := Interval{Lo: iv.Lo, Hi: iv.Hi}
	if o.Lo != nil && (out.Lo == nil || CompareFields(o.Lo, out.Lo) > 0) {
		out.Lo = o.Lo
	}
	if o.Hi != nil && (out.Hi == nil || CompareFields(o.Hi, out.Hi) < 0) {
		out.Hi = o.Hi
	}
	return out
}

// Overlaps reports whether the two intervals share any value.
func (iv Interval) Overlaps(o Interval) bool {
	return !iv.Intersect(o).Empty()
}

func (iv Interval) String() string {
	lo, hi := "-inf", "+inf"
	if iv.Lo != nil {
		lo = fmt.Sprintf("%v", iv.Lo)
	}
	if iv.Hi != nil {
		hi = fmt.Sprintf("%v", iv.Hi)
	}
	return fmt.Sprintf("[%s, %s)", lo, hi)
}

// PartitionBounds describes the key range [Lo, Hi) covered by one partition
// of a range-partitioned dataset, projected onto the partition field(s).
// Only the first partition field participates in interval pruning, which is
// the single-attribute case the paper's partition pruning example uses.
type PartitionBounds struct {
	Lo Tuple // inclusive; nil = unbounded below
	Hi Tuple // exclusive; nil = unbounded above
}

// Interval returns the bounds of the first partition field as an Interval.
// Note: for multi-field bounds the upper endpoint is NOT exclusive on the
// first field (a key equal to Hi[0] can still sort below the full Hi
// tuple); use FieldRangeOverlaps for pruning decisions.
func (pb PartitionBounds) Interval() Interval {
	var iv Interval
	if len(pb.Lo) > 0 {
		iv.Lo = pb.Lo[0]
	}
	if len(pb.Hi) > 0 {
		iv.Hi = pb.Hi[0]
	}
	return iv
}

// FieldRangeOverlaps reports whether the partition may contain a record
// whose first partition field lies in iv. The partition's first-field range
// is [Lo[0], Hi[0]), except that when the Hi bound has more than one field
// the upper endpoint becomes inclusive: keys equal to Hi[0] on the first
// field can still compare below the full bound tuple. This is the sound
// overlap test for partition pruning.
func (pb PartitionBounds) FieldRangeOverlaps(iv Interval) bool {
	var lo0, hi0 Field
	if len(pb.Lo) > 0 {
		lo0 = pb.Lo[0]
	}
	hiInclusive := len(pb.Hi) > 1
	if len(pb.Hi) > 0 {
		hi0 = pb.Hi[0]
	}
	// Partition entirely above the filter.
	if iv.Hi != nil && lo0 != nil && CompareFields(lo0, iv.Hi) >= 0 {
		return false
	}
	// Partition entirely below the filter.
	if iv.Lo != nil && hi0 != nil {
		c := CompareFields(iv.Lo, hi0)
		if c > 0 || (c == 0 && !hiInclusive) {
			return false
		}
	}
	return true
}

// RangeBounds computes per-partition bounds from split points: partition i
// covers [SplitPoints[i-1], SplitPoints[i]).
func RangeBounds(splitPoints []Tuple) []PartitionBounds {
	bounds := make([]PartitionBounds, len(splitPoints)+1)
	for i := range bounds {
		if i > 0 {
			bounds[i].Lo = splitPoints[i-1]
		}
		if i < len(splitPoints) {
			bounds[i].Hi = splitPoints[i]
		}
	}
	return bounds
}
