package keyval

import (
	"fmt"
	"sort"
	"strings"
)

// PartitionType identifies how map-output keys are assigned to reduce tasks
// (and therefore how a job's output dataset is partitioned on the DFS).
type PartitionType int

const (
	// HashPartition is MapReduce's default: hash of the partition fields
	// modulo the number of reduce tasks.
	HashPartition PartitionType = iota
	// RangePartition assigns keys to partitions by comparing the partition
	// fields against an ordered list of split points.
	RangePartition
)

func (t PartitionType) String() string {
	switch t {
	case HashPartition:
		return "hash"
	case RangePartition:
		return "range"
	default:
		return fmt.Sprintf("PartitionType(%d)", int(t))
	}
}

// PartitionSpec describes the partition function of a MapReduce job: which
// key fields determine the partition, how the assignment is made, and the
// per-partition sort order. It is the object rewritten by Stubby's partition
// function transformation and by the postconditions of vertical packing.
type PartitionSpec struct {
	// Type selects hash or range partitioning.
	Type PartitionType
	// KeyFields are indices into the map-output key tuple used for
	// partitioning. Nil means all key fields, in order.
	KeyFields []int
	// SortFields are indices into the map-output key tuple defining the
	// per-partition sort order. Nil means all key fields, in order.
	SortFields []int
	// SplitPoints are the range boundaries (projections onto KeyFields),
	// in ascending order, for RangePartition. n split points define n+1
	// partitions; a key k goes to the first partition whose upper split
	// point is > k (the last partition is unbounded above).
	SplitPoints []Tuple
}

// EffectiveKeyFields resolves KeyFields against a key width: nil expands to
// [0..width).
func (s PartitionSpec) EffectiveKeyFields(width int) []int {
	if s.KeyFields != nil {
		return s.KeyFields
	}
	return identity(width)
}

// EffectiveSortFields resolves SortFields against a key width.
func (s PartitionSpec) EffectiveSortFields(width int) []int {
	if s.SortFields != nil {
		return s.SortFields
	}
	return identity(width)
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// NumPartitions returns how many partitions the spec produces when the job
// is configured with numReduce reduce tasks. Range partitioning is pinned to
// len(SplitPoints)+1 partitions regardless of the configured reducer count.
func (s PartitionSpec) NumPartitions(numReduce int) int {
	if s.Type == RangePartition {
		return len(s.SplitPoints) + 1
	}
	if numReduce < 1 {
		return 1
	}
	return numReduce
}

// Partition assigns a map-output key to a partition in [0, numPartitions).
func (s PartitionSpec) Partition(key Tuple, numPartitions int) int {
	if numPartitions <= 1 {
		return 0
	}
	switch s.Type {
	case HashPartition:
		fields := s.KeyFields // nil hashes the whole key
		return int(Hash(key, fields) % uint64(numPartitions))
	case RangePartition:
		proj := Project(key, s.EffectiveKeyFields(len(key)))
		idx := sort.Search(len(s.SplitPoints), func(i int) bool {
			return Compare(proj, s.SplitPoints[i]) < 0
		})
		if idx >= numPartitions {
			idx = numPartitions - 1
		}
		return idx
	default:
		panic(fmt.Sprintf("keyval: unknown partition type %v", s.Type))
	}
}

// Validate checks internal consistency: split points must be strictly
// ascending and present only for range partitioning.
func (s PartitionSpec) Validate() error {
	if s.Type == HashPartition && len(s.SplitPoints) > 0 {
		return fmt.Errorf("keyval: hash partition spec must not carry split points")
	}
	for i := 1; i < len(s.SplitPoints); i++ {
		if Compare(s.SplitPoints[i-1], s.SplitPoints[i]) >= 0 {
			return fmt.Errorf("keyval: split points not strictly ascending at %d: %v >= %v",
				i, s.SplitPoints[i-1], s.SplitPoints[i])
		}
	}
	return nil
}

// String renders the spec compactly, e.g. "hash(0,1) sort(1,0)" or
// "range(0) splits=3". Nil field lists (meaning "all key fields") render
// as "*".
func (s PartitionSpec) String() string {
	var b strings.Builder
	b.WriteString(s.Type.String())
	b.WriteByte('(')
	b.WriteString(fmtFields(s.KeyFields))
	b.WriteByte(')')
	b.WriteString(" sort(")
	b.WriteString(fmtFields(s.SortFields))
	b.WriteByte(')')
	if len(s.SplitPoints) > 0 {
		fmt.Fprintf(&b, " splits=%d", len(s.SplitPoints))
	}
	return b.String()
}

func fmtFields(idx []int) string {
	if idx == nil {
		return "*"
	}
	var b strings.Builder
	for i, f := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", f)
	}
	return b.String()
}

// Clone deep-copies the spec.
func (s PartitionSpec) Clone() PartitionSpec {
	out := s
	// Nil means "all key fields" while empty means "none": preserve
	// nil-ness exactly (append([]int(nil), empty...) would collapse it).
	if s.KeyFields != nil {
		out.KeyFields = make([]int, len(s.KeyFields))
		copy(out.KeyFields, s.KeyFields)
	}
	if s.SortFields != nil {
		out.SortFields = make([]int, len(s.SortFields))
		copy(out.SortFields, s.SortFields)
	}
	if s.SplitPoints != nil {
		out.SplitPoints = make([]Tuple, len(s.SplitPoints))
		for i, sp := range s.SplitPoints {
			out.SplitPoints[i] = Clone(sp)
		}
	}
	return out
}

// Equal reports whether two specs describe the same partition function.
func (s PartitionSpec) Equal(o PartitionSpec) bool {
	if s.Type != o.Type || !intsEqual(s.KeyFields, o.KeyFields) || !intsEqual(s.SortFields, o.SortFields) {
		return false
	}
	if len(s.SplitPoints) != len(o.SplitPoints) {
		return false
	}
	for i := range s.SplitPoints {
		if Compare(s.SplitPoints[i], o.SplitPoints[i]) != 0 {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortPairs sorts pairs in place by the projection of the key onto fields,
// breaking ties on the full key and then the full value so the order is
// deterministic.
func SortPairs(pairs []Pair, fields []int) {
	sort.SliceStable(pairs, func(i, j int) bool {
		if c := CompareOn(pairs[i].Key, pairs[j].Key, fields); c != 0 {
			return c < 0
		}
		if c := Compare(pairs[i].Key, pairs[j].Key); c != 0 {
			return c < 0
		}
		return Compare(pairs[i].Value, pairs[j].Value) < 0
	})
}

// SortTuples sorts tuples in place in full lexicographic order.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return Compare(ts[i], ts[j]) < 0 })
}

// IsSortedOn reports whether pairs are non-decreasing on the key projection.
func IsSortedOn(pairs []Pair, fields []int) bool {
	for i := 1; i < len(pairs); i++ {
		if CompareOn(pairs[i-1].Key, pairs[i].Key, fields) > 0 {
			return false
		}
	}
	return true
}

// EquiDepthSplitPoints derives n-1 split points producing n roughly equally
// loaded partitions from a sample of keys (projected onto fields). The
// sample is sorted and quantile boundaries are chosen; duplicate boundaries
// are dropped, so fewer than n-1 points may be returned for low-cardinality
// samples.
func EquiDepthSplitPoints(sample []Tuple, fields []int, n int) []Tuple {
	if n <= 1 || len(sample) == 0 {
		return nil
	}
	proj := make([]Tuple, len(sample))
	for i, t := range sample {
		if fields == nil {
			proj[i] = Clone(t)
		} else {
			proj[i] = Project(t, fields)
		}
	}
	sort.Slice(proj, func(i, j int) bool { return Compare(proj[i], proj[j]) < 0 })
	var points []Tuple
	for i := 1; i < n; i++ {
		idx := i * len(proj) / n
		if idx >= len(proj) {
			idx = len(proj) - 1
		}
		p := proj[idx]
		if len(points) == 0 || Compare(points[len(points)-1], p) < 0 {
			points = append(points, p)
		}
	}
	return points
}
