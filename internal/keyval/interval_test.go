package keyval

import "testing"

func TestIntervalContains(t *testing.T) {
	iv := Interval{Lo: int64(0), Hi: int64(100)}
	if !iv.Contains(int64(0)) || !iv.Contains(int64(99)) {
		t.Error("bounds inclusion wrong")
	}
	if iv.Contains(int64(100)) || iv.Contains(int64(-1)) {
		t.Error("exclusion wrong")
	}
	open := Interval{}
	if !open.Contains(int64(1e9)) || !open.Unbounded() {
		t.Error("unbounded interval should contain everything")
	}
	lower := Interval{Lo: int64(5)}
	if lower.Contains(int64(4)) || !lower.Contains(int64(5)) {
		t.Error("half-bounded interval wrong")
	}
}

func TestIntervalEmptyIntersectOverlap(t *testing.T) {
	a := Interval{Lo: int64(0), Hi: int64(50)}
	b := Interval{Lo: int64(50), Hi: int64(100)}
	if a.Overlaps(b) {
		t.Error("adjacent half-open intervals must not overlap")
	}
	c := Interval{Lo: int64(25), Hi: int64(75)}
	got := a.Intersect(c)
	if CompareFields(got.Lo, int64(25)) != 0 || CompareFields(got.Hi, int64(50)) != 0 {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Overlaps(c) {
		t.Error("overlapping intervals reported disjoint")
	}
	if !(Interval{Lo: int64(5), Hi: int64(5)}).Empty() {
		t.Error("degenerate interval not empty")
	}
	if (Interval{Lo: int64(5)}).Empty() {
		t.Error("half-bounded interval reported empty")
	}
}

func TestIntervalString(t *testing.T) {
	if s := (Interval{Lo: int64(1), Hi: int64(2)}).String(); s != "[1, 2)" {
		t.Errorf("String = %s", s)
	}
	if s := (Interval{}).String(); s != "[-inf, +inf)" {
		t.Errorf("String = %s", s)
	}
}

func TestPartitionBoundsInterval(t *testing.T) {
	pb := PartitionBounds{Lo: T(10), Hi: T(20)}
	iv := pb.Interval()
	if !iv.Contains(int64(10)) || iv.Contains(int64(20)) {
		t.Error("bounds interval wrong")
	}
	var unbounded PartitionBounds
	if !unbounded.Interval().Unbounded() {
		t.Error("empty bounds should be unbounded")
	}
}
