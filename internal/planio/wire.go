package planio

// wire.go defines the versioned wire schema of the stubby job service on
// top of the plan documents: optimize requests and results (which embed a
// plan document), progress events, job status, and the structured error
// envelope. The public stubby.Client and the stubbyd server both speak
// exactly these documents, and every encoder here is deterministic so wire
// bytes can be golden-tested.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Wire format identifiers. Like the plan documents, requests and results
// carry an explicit format name and version so future revisions migrate
// explicitly instead of misreading old documents.
const (
	RequestFormatName    = "stubby-optimize-request"
	RequestFormatVersion = 1
	ResultFormatName     = "stubby-optimize-result"
	ResultFormatVersion  = 1
)

// Request is one optimize submission: the annotated plan plus the planner
// selection and options the submitter wants applied. Planner, Seed, and
// Cluster are optional — zero values defer to the serving session.
type Request struct {
	// Planner names the registered planner to use ("" = server default).
	Planner string
	// Seed overrides the serving session's search seed when non-zero.
	Seed int64
	// DisableIncremental forces every configuration probe through the
	// monolithic estimator (debugging aid; plans are identical either way).
	DisableIncremental bool
	// Cluster describes the cluster to optimize for. Nil uses the serving
	// session's cluster.
	Cluster *mrsim.Cluster
	// Plan is the annotated workflow to optimize.
	Plan *wf.Workflow
}

// Result is one optimize outcome: the chosen plan with its estimated cost
// and What-if activity counters.
type Result struct {
	// Plan is the optimized workflow.
	Plan *wf.Workflow
	// EstimatedCost is the What-if estimate of the final plan.
	EstimatedCost float64
	// DurationMS is the server-side optimization wall time.
	DurationMS float64
	// WhatIfCalls/WhatIfComputed/FlowCards mirror optimizer.Result.
	WhatIfCalls    uint64
	WhatIfComputed uint64
	FlowCards      uint64
	// Fingerprint is the canonical wf.Fingerprint of Plan, letting the
	// receiver verify the document decoded to exactly the plan the sender
	// optimized.
	Fingerprint string
	// Robustness carries the chosen plan's Monte-Carlo makespan distribution
	// under the serving session's fault model. Nil when the server plans
	// without a fault model (the common case).
	Robustness *RobustnessDoc
	// ReusedSubplans counts rooted sub-DAGs the serving session's reuse
	// catalog replaced with scans of stored results (zero without a
	// catalog; the field is omitted from the wire bytes then, keeping old
	// documents byte-identical).
	ReusedSubplans int
}

// RobustnessDoc is the wire form of a robustness report: summary statistics
// of the plan's makespan distribution across perturbation seeds.
type RobustnessDoc struct {
	Samples   int     `json:"samples"`
	Mean      float64 `json:"mean"`
	P50       float64 `json:"p50"`
	P95       float64 `json:"p95"`
	P99       float64 `json:"p99"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	FailedOut int     `json:"failedOut,omitempty"`
}

// clusterDoc mirrors mrsim.Cluster field by field.
type clusterDoc struct {
	Nodes               int     `json:"nodes"`
	MapSlotsPerNode     int     `json:"mapSlotsPerNode"`
	ReduceSlotsPerNode  int     `json:"reduceSlotsPerNode"`
	DiskMBps            float64 `json:"diskMBps"`
	NetMBps             float64 `json:"netMBps"`
	TaskSetupSec        float64 `json:"taskSetupSec"`
	SortCPUPerRecord    float64 `json:"sortCPUPerRecord"`
	CompressRatio       float64 `json:"compressRatio"`
	CompressCPUSecPerMB float64 `json:"compressCPUSecPerMB"`
	VirtualScale        float64 `json:"virtualScale"`
}

func encodeCluster(c *mrsim.Cluster) *clusterDoc {
	if c == nil {
		return nil
	}
	return &clusterDoc{
		Nodes:               c.Nodes,
		MapSlotsPerNode:     c.MapSlotsPerNode,
		ReduceSlotsPerNode:  c.ReduceSlotsPerNode,
		DiskMBps:            c.DiskMBps,
		NetMBps:             c.NetMBps,
		TaskSetupSec:        c.TaskSetupSec,
		SortCPUPerRecord:    c.SortCPUPerRecord,
		CompressRatio:       c.CompressRatio,
		CompressCPUSecPerMB: c.CompressCPUSecPerMB,
		VirtualScale:        c.VirtualScale,
	}
}

func decodeCluster(d *clusterDoc) *mrsim.Cluster {
	if d == nil {
		return nil
	}
	return &mrsim.Cluster{
		Nodes:               d.Nodes,
		MapSlotsPerNode:     d.MapSlotsPerNode,
		ReduceSlotsPerNode:  d.ReduceSlotsPerNode,
		DiskMBps:            d.DiskMBps,
		NetMBps:             d.NetMBps,
		TaskSetupSec:        d.TaskSetupSec,
		SortCPUPerRecord:    d.SortCPUPerRecord,
		CompressRatio:       d.CompressRatio,
		CompressCPUSecPerMB: d.CompressCPUSecPerMB,
		VirtualScale:        d.VirtualScale,
	}
}

type requestDoc struct {
	Format             string      `json:"format"`
	Version            int         `json:"version"`
	Planner            string      `json:"planner,omitempty"`
	Seed               int64       `json:"seed,omitempty"`
	DisableIncremental bool        `json:"disableIncremental,omitempty"`
	Cluster            *clusterDoc `json:"cluster,omitempty"`
	Plan               *document   `json:"plan"`
}

type resultDoc struct {
	Format         string         `json:"format"`
	Version        int            `json:"version"`
	EstimatedCost  float64        `json:"estimatedCost"`
	DurationMS     float64        `json:"durationMS"`
	WhatIfCalls    uint64         `json:"whatIfCalls"`
	WhatIfComputed uint64         `json:"whatIfComputed"`
	FlowCards      uint64         `json:"flowCards"`
	Fingerprint    string         `json:"fingerprint,omitempty"`
	Robustness     *RobustnessDoc `json:"robustness,omitempty"`
	ReusedSubplans int            `json:"reusedSubplans,omitempty"`
	Plan           *document      `json:"plan"`
}

// EncodeRequest serializes the request to deterministic indented JSON.
func EncodeRequest(r *Request) ([]byte, error) {
	if r == nil || r.Plan == nil {
		return nil, errors.New("planio: request without a plan")
	}
	plan, err := encodeDoc(r.Plan)
	if err != nil {
		return nil, err
	}
	doc := &requestDoc{
		Format:             RequestFormatName,
		Version:            RequestFormatVersion,
		Planner:            r.Planner,
		Seed:               r.Seed,
		DisableIncremental: r.DisableIncremental,
		Cluster:            encodeCluster(r.Cluster),
		Plan:               plan,
	}
	return json.MarshalIndent(doc, "", "  ")
}

// DecodeRequest parses an optimize-request document. The embedded plan is
// decoded structure-only (annotations intact, inert stage functions) — the
// natural mode for an optimizer service, which costs and rewrites plans but
// never executes them.
func DecodeRequest(data []byte) (*Request, error) {
	var doc requestDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("planio: parse request: %w", err)
	}
	if doc.Format != RequestFormatName {
		return nil, fmt.Errorf("planio: not a %s document (format %q)", RequestFormatName, doc.Format)
	}
	if doc.Version != RequestFormatVersion {
		return nil, fmt.Errorf("planio: unsupported request version %d (want %d)", doc.Version, RequestFormatVersion)
	}
	if doc.Plan == nil {
		return nil, errors.New("planio: request without a plan")
	}
	plan, err := decodeDocument(doc.Plan, NewRegistry(), true)
	if err != nil {
		return nil, err
	}
	return &Request{
		Planner:            doc.Planner,
		Seed:               doc.Seed,
		DisableIncremental: doc.DisableIncremental,
		Cluster:            decodeCluster(doc.Cluster),
		Plan:               plan,
	}, nil
}

// EncodeResult serializes the result to deterministic indented JSON.
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil || r.Plan == nil {
		return nil, errors.New("planio: result without a plan")
	}
	plan, err := encodeDoc(r.Plan)
	if err != nil {
		return nil, err
	}
	doc := &resultDoc{
		Format:         ResultFormatName,
		Version:        ResultFormatVersion,
		EstimatedCost:  r.EstimatedCost,
		DurationMS:     r.DurationMS,
		WhatIfCalls:    r.WhatIfCalls,
		WhatIfComputed: r.WhatIfComputed,
		FlowCards:      r.FlowCards,
		Fingerprint:    r.Fingerprint,
		Robustness:     r.Robustness,
		ReusedSubplans: r.ReusedSubplans,
		Plan:           plan,
	}
	return json.MarshalIndent(doc, "", "  ")
}

// DecodeResult parses an optimize-result document (plan structure-only)
// and, when the document carries a fingerprint, verifies the decoded plan
// reproduces it — a free end-to-end integrity check on every wire result.
func DecodeResult(data []byte) (*Result, error) {
	var doc resultDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("planio: parse result: %w", err)
	}
	if doc.Format != ResultFormatName {
		return nil, fmt.Errorf("planio: not a %s document (format %q)", ResultFormatName, doc.Format)
	}
	if doc.Version != ResultFormatVersion {
		return nil, fmt.Errorf("planio: unsupported result version %d (want %d)", doc.Version, ResultFormatVersion)
	}
	if doc.Plan == nil {
		return nil, errors.New("planio: result without a plan")
	}
	plan, err := decodeDocument(doc.Plan, NewRegistry(), true)
	if err != nil {
		return nil, err
	}
	if doc.Fingerprint != "" {
		if got := wf.FingerprintWorkflow(plan).String(); got != doc.Fingerprint {
			return nil, fmt.Errorf("planio: result plan fingerprint %s does not match document fingerprint %s",
				got, doc.Fingerprint)
		}
	}
	return &Result{
		Plan:           plan,
		EstimatedCost:  doc.EstimatedCost,
		DurationMS:     doc.DurationMS,
		WhatIfCalls:    doc.WhatIfCalls,
		WhatIfComputed: doc.WhatIfComputed,
		FlowCards:      doc.FlowCards,
		Fingerprint:    doc.Fingerprint,
		Robustness:     doc.Robustness,
		ReusedSubplans: doc.ReusedSubplans,
	}, nil
}

// DecodeResultBound parses an optimize-result document like DecodeResult
// but binds the plan's stage functions through reg, yielding an executable
// plan. This is the plan-store hit path: the submitter holds the original
// workflow (and therefore its function library), so a stored plan can come
// back runnable rather than structure-only. It returns a *MissingError when
// reg lacks a stage the stored plan references.
func DecodeResultBound(data []byte, reg *Registry) (*Result, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	var doc resultDoc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("planio: parse result: %w", err)
	}
	if doc.Format != ResultFormatName {
		return nil, fmt.Errorf("planio: not a %s document (format %q)", ResultFormatName, doc.Format)
	}
	if doc.Version != ResultFormatVersion {
		return nil, fmt.Errorf("planio: unsupported result version %d (want %d)", doc.Version, ResultFormatVersion)
	}
	if doc.Plan == nil {
		return nil, errors.New("planio: result without a plan")
	}
	plan, err := decodeDocument(doc.Plan, reg, false)
	if err != nil {
		return nil, err
	}
	if doc.Fingerprint != "" {
		if got := wf.FingerprintWorkflow(plan).String(); got != doc.Fingerprint {
			return nil, fmt.Errorf("planio: result plan fingerprint %s does not match document fingerprint %s",
				got, doc.Fingerprint)
		}
	}
	return &Result{
		Plan:           plan,
		EstimatedCost:  doc.EstimatedCost,
		DurationMS:     doc.DurationMS,
		WhatIfCalls:    doc.WhatIfCalls,
		WhatIfComputed: doc.WhatIfComputed,
		FlowCards:      doc.FlowCards,
		Fingerprint:    doc.Fingerprint,
		Robustness:     doc.Robustness,
		ReusedSubplans: doc.ReusedSubplans,
	}, nil
}

// ErrorDoc is the wire form of the *stubbyerr.Error taxonomy. A client
// reconstructing it yields an error for which errors.Is(err, Kind) and
// errors.As(*stubbyerr.Error) behave exactly as in-process.
type ErrorDoc struct {
	Kind     string `json:"kind"`
	Op       string `json:"op,omitempty"`
	Workflow string `json:"workflow,omitempty"`
	Job      string `json:"job,omitempty"`
	Message  string `json:"message,omitempty"`
}

// NewErrorDoc flattens any error into its wire form, preserving taxonomy
// fields when err carries a *stubbyerr.Error.
func NewErrorDoc(err error) *ErrorDoc {
	if err == nil {
		return nil
	}
	var se *stubbyerr.Error
	if errors.As(err, &se) {
		msg := se.Msg
		if se.Err != nil {
			msg = se.Err.Error()
		}
		return &ErrorDoc{
			Kind:     se.Kind.String(),
			Op:       se.Op,
			Workflow: se.Workflow,
			Job:      se.Job,
			Message:  msg,
		}
	}
	return &ErrorDoc{Kind: stubbyerr.Classify(err).String(), Message: err.Error()}
}

// Err reconstructs the structured error.
func (d *ErrorDoc) Err() error {
	if d == nil {
		return nil
	}
	return &stubbyerr.Error{
		Kind:     stubbyerr.ParseKind(d.Kind),
		Op:       d.Op,
		Workflow: d.Workflow,
		Job:      d.Job,
		Msg:      d.Message,
	}
}

// ErrorEnvelope wraps an ErrorDoc in HTTP error response bodies.
type ErrorEnvelope struct {
	Error *ErrorDoc `json:"error"`
}

// Progress event type tags (EventDoc.Type).
const (
	EventUnitStarted       = "unitStarted"
	EventSubplanEnumerated = "subplanEnumerated"
	EventBestCostImproved  = "bestCostImproved"
	EventJobFinished       = "jobFinished"
	EventCacheReport       = "cacheReport"
	EventStateChanged      = "stateChanged"
	EventStoreReport       = "storeReport"
	EventRobustness        = "robustness"
	EventReuseReport       = "reuseReport"
)

// CacheStatsDoc is the wire form of the estimate cache's counters.
type CacheStatsDoc struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// StoreStatsDoc is the wire form of the plan store's counters.
type StoreStatsDoc struct {
	Hits         uint64 `json:"hits"`
	MemHits      uint64 `json:"memHits"`
	DiskHits     uint64 `json:"diskHits"`
	Misses       uint64 `json:"misses"`
	Computes     uint64 `json:"computes"`
	Puts         uint64 `json:"puts"`
	Evictions    uint64 `json:"evictions"`
	BytesWritten uint64 `json:"bytesWritten"`
	BytesRead    uint64 `json:"bytesRead"`
	Errors       uint64 `json:"errors"`
	Entries      int    `json:"entries"`
	Segments     int    `json:"segments"`
	Claims       uint64 `json:"claims,omitempty"`
	ClaimWaits   uint64 `json:"claimWaits,omitempty"`
	ClaimHits    uint64 `json:"claimHits,omitempty"`
}

// ReuseStatsDoc is the wire form of the sub-plan reuse catalog's counters.
type ReuseStatsDoc struct {
	Entries      int    `json:"entries"`
	Puts         uint64 `json:"puts"`
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Compacted    int    `json:"compacted"`
	TornBytes    int64  `json:"tornBytes"`
	BytesWritten uint64 `json:"bytesWritten"`
	Errors       uint64 `json:"errors"`
	Expired      int    `json:"expired,omitempty"`
	Vanished     int    `json:"vanished,omitempty"`
}

// EventDoc is the wire form of one progress event: a closed set of type
// tags over a flat field union (NDJSON-friendly — one compact object per
// stream line). Unknown types are skipped by clients, so the stream can
// grow new event kinds without breaking old readers.
type EventDoc struct {
	Type       string         `json:"type"`
	Workflow   string         `json:"workflow,omitempty"`
	JobID      string         `json:"jobId,omitempty"`
	Phase      string         `json:"phase,omitempty"`
	Unit       int            `json:"unit,omitempty"`
	Jobs       []string       `json:"jobs,omitempty"`
	Desc       string         `json:"desc,omitempty"`
	Cost       float64        `json:"cost,omitempty"`
	Job        string         `json:"job,omitempty"`
	Start      float64        `json:"start,omitempty"`
	End        float64        `json:"end,omitempty"`
	State      string         `json:"state,omitempty"`
	Error      *ErrorDoc      `json:"error,omitempty"`
	Cache      *CacheStatsDoc `json:"cache,omitempty"`
	Hit        bool           `json:"hit,omitempty"`
	Store      *StoreStatsDoc `json:"store,omitempty"`
	Robustness *RobustnessDoc `json:"robustness,omitempty"`
	Reused     int            `json:"reused,omitempty"`
	Reuse      *ReuseStatsDoc `json:"reuse,omitempty"`
}

// StatusDoc is the wire form of a job's status: lifecycle state, the
// progress snapshot, and — for failed or canceled jobs — the structured
// error.
type StatusDoc struct {
	ID           string    `json:"id"`
	Workflow     string    `json:"workflow,omitempty"`
	State        string    `json:"state"`
	Units        int       `json:"units,omitempty"`
	Subplans     int       `json:"subplans,omitempty"`
	Improvements int       `json:"improvements,omitempty"`
	BestCost     float64   `json:"bestCost,omitempty"`
	Error        *ErrorDoc `json:"error,omitempty"`
}

// SubmitResponse acknowledges an accepted submission.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// QueueStatsDoc describes the job queue's occupancy.
type QueueStatsDoc struct {
	Workers int `json:"workers"`
	Depth   int `json:"depth"`
	Queued  int `json:"queued"`
	Busy    int `json:"busy"`
}

// JournalStatsDoc is the wire form of the job journal's counters.
type JournalStatsDoc struct {
	Submits      uint64 `json:"submits"`
	Transitions  uint64 `json:"transitions"`
	Recovered    int    `json:"recovered"`
	Compacted    int    `json:"compacted"`
	Compactions  uint64 `json:"compactions,omitempty"`
	TornBytes    int64  `json:"tornBytes"`
	BytesWritten uint64 `json:"bytesWritten"`
	Errors       uint64 `json:"errors"`
}

// StatszDoc is the wire form of the /statsz endpoint: server status plus
// the counters of every subsystem a serving session carries. EstCache,
// PlanStore, ReuseCatalog, and Journal are nil when the session runs
// without them.
type StatszDoc struct {
	Status       string           `json:"status"`
	Queue        QueueStatsDoc    `json:"queue"`
	EstCache     *CacheStatsDoc   `json:"estcache,omitempty"`
	PlanStore    *StoreStatsDoc   `json:"planstore,omitempty"`
	ReuseCatalog *ReuseStatsDoc   `json:"reusecatalog,omitempty"`
	Journal      *JournalStatsDoc `json:"journal,omitempty"`
	Cluster      *ClusterStatsDoc `json:"cluster,omitempty"`
}
