package planio

import (
	"encoding/json"
	"fmt"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// EncodeLayout renders one dataset layout as deterministic JSON using the
// same exact field codec plan documents use — int64 split points travel as
// strings, so a round trip is value-identical (plain JSON would silently
// float64-ize them). The reuse catalog persists layouts with this.
func EncodeLayout(l wf.Layout) ([]byte, error) {
	doc := layoutDoc{
		PartType:    l.PartType.String(),
		PartFields:  encStrings(l.PartFields),
		SortFields:  encStrings(l.SortFields),
		SplitPoints: encodeTuples(l.SplitPoints),
		Compressed:  l.Compressed,
	}
	return json.Marshal(doc)
}

// DecodeLayout reverses EncodeLayout.
func DecodeLayout(data []byte) (wf.Layout, error) {
	var doc layoutDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return wf.Layout{}, fmt.Errorf("planio: layout: %w", err)
	}
	l := wf.Layout{
		PartFields: decStrings(doc.PartFields),
		SortFields: decStrings(doc.SortFields),
		Compressed: doc.Compressed,
	}
	switch doc.PartType {
	case "hash":
		l.PartType = keyval.HashPartition
	case "range":
		l.PartType = keyval.RangePartition
	default:
		return wf.Layout{}, fmt.Errorf("planio: layout: unknown partition type %q", doc.PartType)
	}
	var err error
	if l.SplitPoints, err = decodeTuples(doc.SplitPoints); err != nil {
		return wf.Layout{}, fmt.Errorf("planio: layout: %w", err)
	}
	return l, nil
}
