package planio

import (
	"math/rand"
	"testing"
)

// TestDecodeSurvivesCorruption decodes many randomly corrupted variants of
// a valid plan document. Corruption may or may not produce a decodable
// document; either way Decode must return normally (error or plan), never
// panic — imported plans cross trust boundaries in the paper's Figure 2
// deployment.
func TestDecodeSurvivesCorruption(t *testing.T) {
	w := fullWorkflow()
	good, err := Encode(w)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	reg := registryFor(w)
	mutations := []func(r *rand.Rand, b []byte) []byte{
		// Flip one byte.
		func(r *rand.Rand, b []byte) []byte {
			out := append([]byte(nil), b...)
			out[r.Intn(len(out))] ^= byte(1 + r.Intn(255))
			return out
		},
		// Truncate.
		func(r *rand.Rand, b []byte) []byte {
			return append([]byte(nil), b[:r.Intn(len(b))]...)
		},
		// Duplicate a random chunk in place.
		func(r *rand.Rand, b []byte) []byte {
			i := r.Intn(len(b))
			j := i + r.Intn(len(b)-i)
			out := append([]byte(nil), b[:j]...)
			out = append(out, b[i:j]...)
			out = append(out, b[j:]...)
			return out
		},
		// Delete a random chunk.
		func(r *rand.Rand, b []byte) []byte {
			i := r.Intn(len(b))
			j := i + r.Intn(len(b)-i)
			out := append([]byte(nil), b[:i]...)
			return append(out, b[j:]...)
		},
	}
	for trial := 0; trial < 500; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		data := mutations[trial%len(mutations)](r, good)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: Decode panicked: %v", trial, p)
				}
			}()
			plan, err := Decode(data, reg)
			if err == nil && plan != nil {
				// A mutation can legitimately leave a valid document; the
				// decoded plan must then itself be valid.
				if verr := plan.Validate(); verr != nil {
					t.Fatalf("trial %d: Decode returned invalid plan without error: %v", trial, verr)
				}
			}
		}()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: DecodeStructure panicked: %v", trial, p)
				}
			}()
			_, _ = DecodeStructure(data)
		}()
	}
}
