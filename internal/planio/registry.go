// Package planio serializes annotated MapReduce workflows — Stubby plans —
// to a versioned JSON document and reconstructs them. It reproduces the
// import/export feature the paper adds to Pig (Section 6: "exporting and
// importing annotated MapReduce workflows used by Stubby"), generalized so
// any workflow generator can hand plans to Stubby across a process or
// machine boundary.
//
// MapReduce programs are black boxes to Stubby, so function bodies are
// never serialized. A stage is exported as its name plus structural
// metadata (kind, group fields, measured CPU rate); on import the function
// is rebound through a Registry, mirroring how Pig plans reference classes
// that must be present on the destination's classpath.
//
// Two import modes exist:
//
//   - Decode binds every stage to a registered function and yields an
//     executable plan. It fails listing the missing names if the registry
//     is incomplete.
//   - DecodeStructure binds inert placeholder functions. The resulting
//     plan carries all annotations, so it can be costed and optimized —
//     Stubby sits above the execution engine and never invokes the
//     functions — but executing it panics with a descriptive message.
package planio

import (
	"fmt"
	"sort"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// Registry maps stage names to their map/reduce function implementations so
// imported plans can be made executable. Map and reduce functions live in
// separate namespaces because a stage's kind disambiguates which is needed.
type Registry struct {
	maps    map[string]wf.MapFn
	reduces map[string]wf.ReduceFn
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		maps:    make(map[string]wf.MapFn),
		reduces: make(map[string]wf.ReduceFn),
	}
}

// RegisterMap binds a map function to a stage name, replacing any previous
// binding.
func (r *Registry) RegisterMap(name string, fn wf.MapFn) {
	r.maps[name] = fn
}

// RegisterReduce binds a reduce/combine function to a stage name, replacing
// any previous binding.
func (r *Registry) RegisterReduce(name string, fn wf.ReduceFn) {
	r.reduces[name] = fn
}

// RegisterStage binds the stage's function under the stage's own name —
// convenient when the exporter has the wf.Stage values at hand.
func (r *Registry) RegisterStage(s wf.Stage) {
	switch s.Kind {
	case wf.MapKind:
		if s.Map != nil {
			r.RegisterMap(s.Name, s.Map)
		}
	case wf.ReduceKind:
		if s.Reduce != nil {
			r.RegisterReduce(s.Name, s.Reduce)
		}
	}
}

// RegisterWorkflow walks every stage (branch, group, and combiner) of the
// workflow and registers its function. Use it to build a registry from an
// in-memory plan that shares its function library with the plans being
// imported.
func (r *Registry) RegisterWorkflow(w *wf.Workflow) {
	for _, j := range w.Jobs {
		for _, b := range j.MapBranches {
			for _, s := range b.Stages {
				r.RegisterStage(s)
			}
		}
		for _, g := range j.ReduceGroups {
			for _, s := range g.Stages {
				r.RegisterStage(s)
			}
			if g.Combiner != nil {
				r.RegisterStage(*g.Combiner)
			}
		}
	}
}

// lookup returns the function of the requested kind, or an error naming the
// missing binding.
func (r *Registry) lookup(name string, kind wf.StageKind) (wf.MapFn, wf.ReduceFn, error) {
	switch kind {
	case wf.MapKind:
		if fn, ok := r.maps[name]; ok {
			return fn, nil, nil
		}
	case wf.ReduceKind:
		if fn, ok := r.reduces[name]; ok {
			return nil, fn, nil
		}
	}
	return nil, nil, fmt.Errorf("no %s function registered for stage %q", kind, name)
}

// MissingError reports the stage functions an import could not bind.
type MissingError struct {
	// Names lists the unresolvable "kind:name" bindings, sorted.
	Names []string
}

func (e *MissingError) Error() string {
	return fmt.Sprintf("planio: %d stage function(s) not registered: %v", len(e.Names), e.Names)
}

// newMissingError builds a MissingError from a set of missing bindings.
func newMissingError(missing map[string]bool) *MissingError {
	names := make([]string, 0, len(missing))
	for n := range missing {
		names = append(names, n)
	}
	sort.Strings(names)
	return &MissingError{Names: names}
}

// placeholderMap is bound to map stages by DecodeStructure. Executing it
// panics: structure-only plans are for costing and optimization, not runs.
func placeholderMap(name string) wf.MapFn {
	return func(_, _ keyval.Tuple, _ wf.Emit) {
		panic(fmt.Sprintf("planio: stage %q was imported structure-only and cannot execute; bind it through a Registry", name))
	}
}

// placeholderReduce is the reduce-side counterpart of placeholderMap.
func placeholderReduce(name string) wf.ReduceFn {
	return func(_ keyval.Tuple, _ []keyval.Tuple, _ wf.Emit) {
		panic(fmt.Sprintf("planio: stage %q was imported structure-only and cannot execute; bind it through a Registry", name))
	}
}
