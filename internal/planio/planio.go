package planio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/wf"
)

// FormatName identifies the document format in its envelope.
const FormatName = "stubby-plan"

// FormatVersion is the current document version. Decode accepts only this
// version; the field exists so future revisions can migrate explicitly
// instead of misreading old documents.
const FormatVersion = 1

// document is the top-level JSON envelope.
type document struct {
	Format   string       `json:"format"`
	Version  int          `json:"version"`
	Name     string       `json:"name"`
	Jobs     []jobDoc     `json:"jobs"`
	Datasets []datasetDoc `json:"datasets"`
}

// fieldDoc encodes one tuple field exactly. int64 values travel as strings
// because JSON numbers lose precision beyond 2^53. Exactly one member is
// set; an all-zero fieldDoc decodes as the nil field.
type fieldDoc struct {
	Int   *string  `json:"int,omitempty"`
	Float *float64 `json:"float,omitempty"`
	Str   *string  `json:"str,omitempty"`
	Bool  *bool    `json:"bool,omitempty"`
}

// tupleDoc encodes a tuple as an ordered field list. A nil tuple encodes as
// null, an empty tuple as [].
type tupleDoc []fieldDoc

type stageDoc struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "map" or "reduce"
	// GroupFields distinguishes nil (group on the whole key) from empty
	// (one group per stream) via pointer presence.
	GroupFields  *[]int  `json:"groupFields,omitempty"`
	CPUPerRecord float64 `json:"cpuPerRecord"`
}

type filterDoc struct {
	Field string    `json:"field"`
	Lo    *fieldDoc `json:"lo,omitempty"`
	Hi    *fieldDoc `json:"hi,omitempty"`
}

type branchDoc struct {
	Tag    int        `json:"tag"`
	Input  string     `json:"input"`
	Stages []stageDoc `json:"stages"`
	Filter *filterDoc `json:"filter,omitempty"`
	KeyIn  *[]string  `json:"keyIn,omitempty"`
	ValIn  *[]string  `json:"valIn,omitempty"`
	KeyOut *[]string  `json:"keyOut,omitempty"`
	ValOut *[]string  `json:"valOut,omitempty"`
}

type partitionSpecDoc struct {
	Type        string     `json:"type"` // "hash" or "range"
	KeyFields   *[]int     `json:"keyFields,omitempty"`
	SortFields  *[]int     `json:"sortFields,omitempty"`
	SplitPoints []tupleDoc `json:"splitPoints,omitempty"`
}

type constraintDoc struct {
	CoGroup     *[]string `json:"coGroup,omitempty"`
	SortPrefix  *[]string `json:"sortPrefix,omitempty"`
	RequireType *string   `json:"requireType,omitempty"`
	Reason      string    `json:"reason"`
}

type groupDoc struct {
	Tag         int              `json:"tag"`
	Stages      []stageDoc       `json:"stages"`
	RunsMapSide bool             `json:"runsMapSide,omitempty"`
	Combiner    *stageDoc        `json:"combiner,omitempty"`
	Output      string           `json:"output"`
	Part        partitionSpecDoc `json:"part"`
	Constraints []constraintDoc  `json:"constraints,omitempty"`
	KeyIn       *[]string        `json:"keyIn,omitempty"`
	ValIn       *[]string        `json:"valIn,omitempty"`
	KeyOut      *[]string        `json:"keyOut,omitempty"`
	ValOut      *[]string        `json:"valOut,omitempty"`
}

type configDoc struct {
	NumReduceTasks    int  `json:"numReduceTasks"`
	SplitSizeMB       int  `json:"splitSizeMB"`
	SortBufferMB      int  `json:"sortBufferMB"`
	IOSortFactor      int  `json:"ioSortFactor"`
	UseCombiner       bool `json:"useCombiner,omitempty"`
	CompressMapOutput bool `json:"compressMapOutput,omitempty"`
	CompressOutput    bool `json:"compressOutput,omitempty"`
}

type pipelineProfileDoc struct {
	Selectivity        float64    `json:"selectivity"`
	CPUPerRecord       float64    `json:"cpuPerRecord"`
	OutBytesPerRecord  float64    `json:"outBytesPerRecord"`
	InBytesPerRecord   float64    `json:"inBytesPerRecord"`
	GroupsPerRecord    float64    `json:"groupsPerRecord,omitempty"`
	GroupsPerMapRecord float64    `json:"groupsPerMapRecord,omitempty"`
	CombineReduction   float64    `json:"combineReduction,omitempty"`
	KeySample          []tupleDoc `json:"keySample,omitempty"`
}

type jobProfileDoc struct {
	// MapSide and ReduceSide are keyed by decimal tag.
	MapSide        map[string]*pipelineProfileDoc `json:"mapSide,omitempty"`
	MapSideByInput map[string]*pipelineProfileDoc `json:"mapSideByInput,omitempty"`
	ReduceSide     map[string]*pipelineProfileDoc `json:"reduceSide,omitempty"`
}

type jobDoc struct {
	ID               string         `json:"id"`
	MapBranches      []branchDoc    `json:"mapBranches"`
	ReduceGroups     []groupDoc     `json:"reduceGroups"`
	Config           configDoc      `json:"config"`
	Profile          *jobProfileDoc `json:"profile,omitempty"`
	AlignMapToInput  bool           `json:"alignMapToInput,omitempty"`
	ReduceCountGroup string         `json:"reduceCountGroup,omitempty"`
	PinnedReducers   bool           `json:"pinnedReducers,omitempty"`
	Origin           []string       `json:"origin,omitempty"`
}

type layoutDoc struct {
	PartType    string     `json:"partType"`
	PartFields  *[]string  `json:"partFields,omitempty"`
	SortFields  *[]string  `json:"sortFields,omitempty"`
	SplitPoints []tupleDoc `json:"splitPoints,omitempty"`
	Compressed  bool       `json:"compressed,omitempty"`
}

type datasetDoc struct {
	ID            string    `json:"id"`
	Base          bool      `json:"base,omitempty"`
	Layout        layoutDoc `json:"layout"`
	KeyFields     *[]string `json:"keyFields,omitempty"`
	ValueFields   *[]string `json:"valueFields,omitempty"`
	EstRecords    float64   `json:"estRecords,omitempty"`
	EstBytes      float64   `json:"estBytes,omitempty"`
	EstPartitions int       `json:"estPartitions,omitempty"`
}

// Encode serializes the plan to indented JSON. The output is deterministic
// for a given workflow, so byte equality of encodings is a meaningful
// structural-equality check.
func Encode(w *wf.Workflow) ([]byte, error) {
	doc, err := encodeDoc(w)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(doc, "", "  ")
}

// EncodeTo writes the encoded plan to w.
func EncodeTo(dst io.Writer, w *wf.Workflow) error {
	data, err := Encode(w)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = dst.Write(data)
	return err
}

// Decode reconstructs an executable plan, binding every stage function
// through the registry. It returns a *MissingError listing unresolved stage
// names if the registry is incomplete, and validates the result.
func Decode(data []byte, reg *Registry) (*wf.Workflow, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	return decode(data, reg, false)
}

// DecodeFrom reads one plan document from r and decodes it like Decode.
func DecodeFrom(r io.Reader, reg *Registry) (*wf.Workflow, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("planio: read: %w", err)
	}
	return Decode(data, reg)
}

// DecodeStructure reconstructs the plan with inert placeholder functions.
// The result carries every annotation and can be costed and optimized, but
// executing it panics. This is the natural mode for an optimizer service
// that receives plans from remote workflow generators (the paper's Figure
// 2 deployment) without sharing their code.
func DecodeStructure(data []byte) (*wf.Workflow, error) {
	return decode(data, NewRegistry(), true)
}

func decode(data []byte, reg *Registry, structureOnly bool) (*wf.Workflow, error) {
	var doc document
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("planio: parse: %w", err)
	}
	return decodeDocument(&doc, reg, structureOnly)
}

// decodeDocument reconstructs a plan from an already-parsed document — the
// shared tail of Decode/DecodeStructure and of the wire envelopes that
// embed plan documents (requests and results).
func decodeDocument(doc *document, reg *Registry, structureOnly bool) (*wf.Workflow, error) {
	if doc.Format != FormatName {
		return nil, fmt.Errorf("planio: not a %s document (format %q)", FormatName, doc.Format)
	}
	if doc.Version != FormatVersion {
		return nil, fmt.Errorf("planio: unsupported version %d (want %d)", doc.Version, FormatVersion)
	}
	d := &decoder{reg: reg, structureOnly: structureOnly, missing: map[string]bool{}}
	w, err := d.workflow(doc)
	if err != nil {
		return nil, err
	}
	if len(d.missing) > 0 {
		return nil, newMissingError(d.missing)
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("planio: decoded plan invalid: %w", err)
	}
	return w, nil
}

// --- encoding ----------------------------------------------------------------

func encodeDoc(w *wf.Workflow) (*document, error) {
	doc := &document{Format: FormatName, Version: FormatVersion, Name: w.Name}
	for _, j := range w.Jobs {
		jd, err := encodeJob(j)
		if err != nil {
			return nil, err
		}
		doc.Jobs = append(doc.Jobs, *jd)
	}
	for _, ds := range w.Datasets {
		doc.Datasets = append(doc.Datasets, encodeDataset(ds))
	}
	return doc, nil
}

func encodeJob(j *wf.Job) (*jobDoc, error) {
	jd := &jobDoc{
		ID:               j.ID,
		Config:           configDoc(j.Config),
		Profile:          encodeProfile(j.Profile),
		AlignMapToInput:  j.AlignMapToInput,
		ReduceCountGroup: j.ReduceCountGroup,
		PinnedReducers:   j.PinnedReducers,
		Origin:           append([]string(nil), j.Origin...),
	}
	for _, b := range j.MapBranches {
		bd := branchDoc{
			Tag:    b.Tag,
			Input:  b.Input,
			Stages: encodeStages(b.Stages),
			Filter: encodeFilter(b.Filter),
			KeyIn:  encStrings(b.KeyIn),
			ValIn:  encStrings(b.ValIn),
			KeyOut: encStrings(b.KeyOut),
			ValOut: encStrings(b.ValOut),
		}
		jd.MapBranches = append(jd.MapBranches, bd)
	}
	for _, g := range j.ReduceGroups {
		gd := groupDoc{
			Tag:         g.Tag,
			Stages:      encodeStages(g.Stages),
			RunsMapSide: g.RunsMapSide,
			Output:      g.Output,
			Part:        encodeSpec(g.Part),
			KeyIn:       encStrings(g.KeyIn),
			ValIn:       encStrings(g.ValIn),
			KeyOut:      encStrings(g.KeyOut),
			ValOut:      encStrings(g.ValOut),
		}
		if g.Combiner != nil {
			sd := encodeStage(*g.Combiner)
			gd.Combiner = &sd
		}
		for _, c := range g.Constraints {
			gd.Constraints = append(gd.Constraints, encodeConstraint(c))
		}
		jd.ReduceGroups = append(jd.ReduceGroups, gd)
	}
	return jd, nil
}

func encodeStages(in []wf.Stage) []stageDoc {
	out := make([]stageDoc, len(in))
	for i, s := range in {
		out[i] = encodeStage(s)
	}
	return out
}

func encodeStage(s wf.Stage) stageDoc {
	return stageDoc{
		Name:         s.Name,
		Kind:         s.Kind.String(),
		GroupFields:  encInts(s.GroupFields),
		CPUPerRecord: s.CPUPerRecord,
	}
}

func encodeFilter(f *wf.Filter) *filterDoc {
	if f == nil {
		return nil
	}
	return &filterDoc{
		Field: f.Field,
		Lo:    encField(f.Interval.Lo),
		Hi:    encField(f.Interval.Hi),
	}
}

func encodeSpec(s keyval.PartitionSpec) partitionSpecDoc {
	return partitionSpecDoc{
		Type:        s.Type.String(),
		KeyFields:   encInts(s.KeyFields),
		SortFields:  encInts(s.SortFields),
		SplitPoints: encodeTuples(s.SplitPoints),
	}
}

func encodeConstraint(c wf.PartitionConstraint) constraintDoc {
	cd := constraintDoc{
		CoGroup:    encStrings(c.CoGroup),
		SortPrefix: encStrings(c.SortPrefix),
		Reason:     c.Reason,
	}
	if c.RequireType != nil {
		t := c.RequireType.String()
		cd.RequireType = &t
	}
	return cd
}

func encodeProfile(p *wf.JobProfile) *jobProfileDoc {
	if p == nil {
		return nil
	}
	doc := &jobProfileDoc{}
	if len(p.MapSide) > 0 {
		doc.MapSide = make(map[string]*pipelineProfileDoc, len(p.MapSide))
		for tag, pp := range p.MapSide {
			doc.MapSide[strconv.Itoa(tag)] = encodePipeline(pp)
		}
	}
	if len(p.MapSideByInput) > 0 {
		doc.MapSideByInput = make(map[string]*pipelineProfileDoc, len(p.MapSideByInput))
		for k, pp := range p.MapSideByInput {
			doc.MapSideByInput[k] = encodePipeline(pp)
		}
	}
	if len(p.ReduceSide) > 0 {
		doc.ReduceSide = make(map[string]*pipelineProfileDoc, len(p.ReduceSide))
		for tag, pp := range p.ReduceSide {
			doc.ReduceSide[strconv.Itoa(tag)] = encodePipeline(pp)
		}
	}
	return doc
}

func encodePipeline(p *wf.PipelineProfile) *pipelineProfileDoc {
	if p == nil {
		return nil
	}
	return &pipelineProfileDoc{
		Selectivity:        p.Selectivity,
		CPUPerRecord:       p.CPUPerRecord,
		OutBytesPerRecord:  p.OutBytesPerRecord,
		InBytesPerRecord:   p.InBytesPerRecord,
		GroupsPerRecord:    p.GroupsPerRecord,
		GroupsPerMapRecord: p.GroupsPerMapRecord,
		CombineReduction:   p.CombineReduction,
		KeySample:          encodeTuples(p.KeySample),
	}
}

func encodeDataset(d *wf.Dataset) datasetDoc {
	return datasetDoc{
		ID:   d.ID,
		Base: d.Base,
		Layout: layoutDoc{
			PartType:    d.Layout.PartType.String(),
			PartFields:  encStrings(d.Layout.PartFields),
			SortFields:  encStrings(d.Layout.SortFields),
			SplitPoints: encodeTuples(d.Layout.SplitPoints),
			Compressed:  d.Layout.Compressed,
		},
		KeyFields:     encStrings(d.KeyFields),
		ValueFields:   encStrings(d.ValueFields),
		EstRecords:    d.EstRecords,
		EstBytes:      d.EstBytes,
		EstPartitions: d.EstPartitions,
	}
}

func encodeTuples(in []keyval.Tuple) []tupleDoc {
	if in == nil {
		return nil
	}
	out := make([]tupleDoc, len(in))
	for i, t := range in {
		out[i] = encodeTuple(t)
	}
	return out
}

func encodeTuple(t keyval.Tuple) tupleDoc {
	out := make(tupleDoc, len(t))
	for i, f := range t {
		if fd := encField(f); fd != nil {
			out[i] = *fd
		}
	}
	return out
}

func encField(f keyval.Field) *fieldDoc {
	switch v := f.(type) {
	case nil:
		return nil
	case int64:
		s := strconv.FormatInt(v, 10)
		return &fieldDoc{Int: &s}
	case float64:
		return &fieldDoc{Float: &v}
	case string:
		return &fieldDoc{Str: &v}
	case bool:
		return &fieldDoc{Bool: &v}
	default:
		// keyval.T normalizes all supported inputs to the four types above;
		// anything else indicates a corrupted tuple.
		panic(fmt.Sprintf("planio: unsupported field type %T", f))
	}
}

func encInts(v []int) *[]int {
	if v == nil {
		return nil
	}
	c := append([]int{}, v...)
	return &c
}

func encStrings(v []string) *[]string {
	if v == nil {
		return nil
	}
	c := append([]string{}, v...)
	return &c
}

// --- decoding ----------------------------------------------------------------

type decoder struct {
	reg           *Registry
	structureOnly bool
	missing       map[string]bool
}

func (d *decoder) workflow(doc *document) (*wf.Workflow, error) {
	w := &wf.Workflow{Name: doc.Name}
	for i := range doc.Jobs {
		j, err := d.job(&doc.Jobs[i])
		if err != nil {
			return nil, err
		}
		w.Jobs = append(w.Jobs, j)
	}
	for i := range doc.Datasets {
		ds, err := decodeDataset(&doc.Datasets[i])
		if err != nil {
			return nil, err
		}
		w.Datasets = append(w.Datasets, ds)
	}
	return w, nil
}

func (d *decoder) job(jd *jobDoc) (*wf.Job, error) {
	j := &wf.Job{
		ID:               jd.ID,
		Config:           wf.Config(jd.Config),
		AlignMapToInput:  jd.AlignMapToInput,
		ReduceCountGroup: jd.ReduceCountGroup,
		PinnedReducers:   jd.PinnedReducers,
		Origin:           append([]string(nil), jd.Origin...),
	}
	var err error
	if j.Profile, err = decodeProfile(jd.Profile); err != nil {
		return nil, fmt.Errorf("planio: job %s: %w", jd.ID, err)
	}
	for _, bd := range jd.MapBranches {
		b := wf.MapBranch{
			Tag:    bd.Tag,
			Input:  bd.Input,
			KeyIn:  decStrings(bd.KeyIn),
			ValIn:  decStrings(bd.ValIn),
			KeyOut: decStrings(bd.KeyOut),
			ValOut: decStrings(bd.ValOut),
		}
		if b.Stages, err = d.stages(bd.Stages); err != nil {
			return nil, fmt.Errorf("planio: job %s branch %d: %w", jd.ID, bd.Tag, err)
		}
		if b.Filter, err = decodeFilter(bd.Filter); err != nil {
			return nil, fmt.Errorf("planio: job %s branch %d: %w", jd.ID, bd.Tag, err)
		}
		j.MapBranches = append(j.MapBranches, b)
	}
	for _, gd := range jd.ReduceGroups {
		g := wf.ReduceGroup{
			Tag:         gd.Tag,
			RunsMapSide: gd.RunsMapSide,
			Output:      gd.Output,
			KeyIn:       decStrings(gd.KeyIn),
			ValIn:       decStrings(gd.ValIn),
			KeyOut:      decStrings(gd.KeyOut),
			ValOut:      decStrings(gd.ValOut),
		}
		if g.Stages, err = d.stages(gd.Stages); err != nil {
			return nil, fmt.Errorf("planio: job %s group %d: %w", jd.ID, gd.Tag, err)
		}
		if gd.Combiner != nil {
			c, err := d.stage(*gd.Combiner)
			if err != nil {
				return nil, fmt.Errorf("planio: job %s group %d combiner: %w", jd.ID, gd.Tag, err)
			}
			g.Combiner = &c
		}
		if g.Part, err = decodeSpec(gd.Part); err != nil {
			return nil, fmt.Errorf("planio: job %s group %d: %w", jd.ID, gd.Tag, err)
		}
		for _, cd := range gd.Constraints {
			c, err := decodeConstraint(cd)
			if err != nil {
				return nil, fmt.Errorf("planio: job %s group %d: %w", jd.ID, gd.Tag, err)
			}
			g.Constraints = append(g.Constraints, c)
		}
		j.ReduceGroups = append(j.ReduceGroups, g)
	}
	return j, nil
}

func (d *decoder) stages(in []stageDoc) ([]wf.Stage, error) {
	out := make([]wf.Stage, len(in))
	for i, sd := range in {
		s, err := d.stage(sd)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

func (d *decoder) stage(sd stageDoc) (wf.Stage, error) {
	s := wf.Stage{
		Name:         sd.Name,
		GroupFields:  decInts(sd.GroupFields),
		CPUPerRecord: sd.CPUPerRecord,
	}
	switch sd.Kind {
	case "map":
		s.Kind = wf.MapKind
	case "reduce":
		s.Kind = wf.ReduceKind
	default:
		return wf.Stage{}, fmt.Errorf("stage %q has unknown kind %q", sd.Name, sd.Kind)
	}
	if d.structureOnly {
		if s.Kind == wf.MapKind {
			s.Map = placeholderMap(sd.Name)
		} else {
			s.Reduce = placeholderReduce(sd.Name)
		}
		return s, nil
	}
	mf, rf, err := d.reg.lookup(sd.Name, s.Kind)
	if err != nil {
		d.missing[sd.Kind+":"+sd.Name] = true
		return s, nil // collected; reported once after the walk
	}
	s.Map, s.Reduce = mf, rf
	return s, nil
}

func decodeFilter(fd *filterDoc) (*wf.Filter, error) {
	if fd == nil {
		return nil, nil
	}
	lo, err := decField(fd.Lo)
	if err != nil {
		return nil, fmt.Errorf("filter lo: %w", err)
	}
	hi, err := decField(fd.Hi)
	if err != nil {
		return nil, fmt.Errorf("filter hi: %w", err)
	}
	return &wf.Filter{Field: fd.Field, Interval: keyval.Interval{Lo: lo, Hi: hi}}, nil
}

func decodeSpec(sd partitionSpecDoc) (keyval.PartitionSpec, error) {
	s := keyval.PartitionSpec{
		KeyFields:  decInts(sd.KeyFields),
		SortFields: decInts(sd.SortFields),
	}
	switch sd.Type {
	case "hash":
		s.Type = keyval.HashPartition
	case "range":
		s.Type = keyval.RangePartition
	default:
		return s, fmt.Errorf("unknown partition type %q", sd.Type)
	}
	var err error
	if s.SplitPoints, err = decodeTuples(sd.SplitPoints); err != nil {
		return s, err
	}
	return s, nil
}

func decodeConstraint(cd constraintDoc) (wf.PartitionConstraint, error) {
	c := wf.PartitionConstraint{
		CoGroup:    decStrings(cd.CoGroup),
		SortPrefix: decStrings(cd.SortPrefix),
		Reason:     cd.Reason,
	}
	if cd.RequireType != nil {
		var t keyval.PartitionType
		switch *cd.RequireType {
		case "hash":
			t = keyval.HashPartition
		case "range":
			t = keyval.RangePartition
		default:
			return c, fmt.Errorf("unknown partition type %q in constraint", *cd.RequireType)
		}
		c.RequireType = &t
	}
	return c, nil
}

func decodeProfile(pd *jobProfileDoc) (*wf.JobProfile, error) {
	if pd == nil {
		return nil, nil
	}
	p := &wf.JobProfile{}
	if len(pd.MapSide) > 0 {
		p.MapSide = make(map[int]*wf.PipelineProfile, len(pd.MapSide))
		for k, v := range pd.MapSide {
			tag, err := strconv.Atoi(k)
			if err != nil {
				return nil, fmt.Errorf("profile mapSide tag %q: %w", k, err)
			}
			pp, err := decodePipeline(v)
			if err != nil {
				return nil, err
			}
			p.MapSide[tag] = pp
		}
	}
	if len(pd.MapSideByInput) > 0 {
		p.MapSideByInput = make(map[string]*wf.PipelineProfile, len(pd.MapSideByInput))
		for k, v := range pd.MapSideByInput {
			pp, err := decodePipeline(v)
			if err != nil {
				return nil, err
			}
			p.MapSideByInput[k] = pp
		}
	}
	if len(pd.ReduceSide) > 0 {
		p.ReduceSide = make(map[int]*wf.PipelineProfile, len(pd.ReduceSide))
		for k, v := range pd.ReduceSide {
			tag, err := strconv.Atoi(k)
			if err != nil {
				return nil, fmt.Errorf("profile reduceSide tag %q: %w", k, err)
			}
			pp, err := decodePipeline(v)
			if err != nil {
				return nil, err
			}
			p.ReduceSide[tag] = pp
		}
	}
	return p, nil
}

func decodePipeline(pd *pipelineProfileDoc) (*wf.PipelineProfile, error) {
	if pd == nil {
		return nil, nil
	}
	ks, err := decodeTuples(pd.KeySample)
	if err != nil {
		return nil, fmt.Errorf("key sample: %w", err)
	}
	return &wf.PipelineProfile{
		Selectivity:        pd.Selectivity,
		CPUPerRecord:       pd.CPUPerRecord,
		OutBytesPerRecord:  pd.OutBytesPerRecord,
		InBytesPerRecord:   pd.InBytesPerRecord,
		GroupsPerRecord:    pd.GroupsPerRecord,
		GroupsPerMapRecord: pd.GroupsPerMapRecord,
		CombineReduction:   pd.CombineReduction,
		KeySample:          ks,
	}, nil
}

func decodeDataset(dd *datasetDoc) (*wf.Dataset, error) {
	d := &wf.Dataset{
		ID:            dd.ID,
		Base:          dd.Base,
		KeyFields:     decStrings(dd.KeyFields),
		ValueFields:   decStrings(dd.ValueFields),
		EstRecords:    dd.EstRecords,
		EstBytes:      dd.EstBytes,
		EstPartitions: dd.EstPartitions,
	}
	d.Layout = wf.Layout{
		PartFields: decStrings(dd.Layout.PartFields),
		SortFields: decStrings(dd.Layout.SortFields),
		Compressed: dd.Layout.Compressed,
	}
	switch dd.Layout.PartType {
	case "hash":
		d.Layout.PartType = keyval.HashPartition
	case "range":
		d.Layout.PartType = keyval.RangePartition
	default:
		return nil, fmt.Errorf("planio: dataset %s: unknown partition type %q", dd.ID, dd.Layout.PartType)
	}
	var err error
	if d.Layout.SplitPoints, err = decodeTuples(dd.Layout.SplitPoints); err != nil {
		return nil, fmt.Errorf("planio: dataset %s: %w", dd.ID, err)
	}
	return d, nil
}

func decodeTuples(in []tupleDoc) ([]keyval.Tuple, error) {
	if in == nil {
		return nil, nil
	}
	out := make([]keyval.Tuple, len(in))
	for i, td := range in {
		t, err := decodeTuple(td)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

func decodeTuple(td tupleDoc) (keyval.Tuple, error) {
	t := make(keyval.Tuple, len(td))
	for i := range td {
		f, err := decField(&td[i])
		if err != nil {
			return nil, err
		}
		t[i] = f
	}
	return t, nil
}

func decField(fd *fieldDoc) (keyval.Field, error) {
	if fd == nil {
		return nil, nil
	}
	set := 0
	if fd.Int != nil {
		set++
	}
	if fd.Float != nil {
		set++
	}
	if fd.Str != nil {
		set++
	}
	if fd.Bool != nil {
		set++
	}
	if set > 1 {
		return nil, fmt.Errorf("field sets %d variants, want at most one", set)
	}
	switch {
	case fd.Int != nil:
		v, err := strconv.ParseInt(*fd.Int, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("int field %q: %w", *fd.Int, err)
		}
		return v, nil
	case fd.Float != nil:
		return *fd.Float, nil
	case fd.Str != nil:
		return *fd.Str, nil
	case fd.Bool != nil:
		return *fd.Bool, nil
	default:
		return nil, nil // all-empty object is the nil field
	}
}

func decInts(p *[]int) []int {
	if p == nil {
		return nil
	}
	if *p == nil {
		return []int{}
	}
	return append([]int{}, (*p)...)
}

func decStrings(p *[]string) []string {
	if p == nil {
		return nil
	}
	if *p == nil {
		return []string{}
	}
	return append([]string{}, (*p)...)
}
