package planio

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ClusterFormatVersion versions the coordinator/worker control documents
// independently of the job wire.
const ClusterFormatVersion = 1

// clusterwire.go carries the coordinator/worker control-plane documents.
// The data plane needs no new schema: a coordinator dispatches work to
// workers as ordinary /v1/jobs submissions using the existing Request and
// Result documents, so a worker is just a stubbyd that also registers and
// heartbeats. Control documents follow the same conventions as the job
// wire: versioned JSON with unknown fields rejected on the server side.

// RegisterRequest announces a worker to a coordinator. URL is the base URL
// the coordinator should dispatch jobs to (e.g. "http://10.0.0.7:8080").
// ID is empty on first registration; a worker re-registering after a
// coordinator restart or missed heartbeats sends its previous ID so the
// coordinator can keep its identity stable in logs and stats.
type RegisterRequest struct {
	Version int    `json:"version"`
	URL     string `json:"url"`
	ID      string `json:"id,omitempty"`
}

// RegisterResponse acknowledges a registration: the worker's assigned ID
// and the lease TTL. A worker whose heartbeats stay within TTLMS holds its
// leases; one that goes silent longer is considered dead and its in-flight
// jobs are re-dispatched.
type RegisterResponse struct {
	ID    string `json:"id"`
	TTLMS int64  `json:"ttlMS"`
}

// HeartbeatRequest renews a worker's lease and reports the store counters
// the coordinator aggregates cluster-wide: ClaimHits (optimizations this
// worker skipped because another replica's publish answered its claim
// wait) and Computes (optimizations this worker actually ran).
type HeartbeatRequest struct {
	Version   int    `json:"version"`
	ID        string `json:"id"`
	ClaimHits uint64 `json:"claimHits,omitempty"`
	Computes  uint64 `json:"computes,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat. OK is false when the
// coordinator does not know the worker (it restarted, or the worker's
// lease already expired); the worker must re-register.
type HeartbeatResponse struct {
	OK bool `json:"ok"`
}

// WorkerDoc describes one registered worker in /v1/cluster/workers.
type WorkerDoc struct {
	ID         string `json:"id"`
	URL        string `json:"url"`
	Live       bool   `json:"live"`
	Leases     int    `json:"leases"`
	LastBeatMS int64  `json:"lastBeatMS"`
}

// WorkersResponse is the /v1/cluster/workers listing.
type WorkersResponse struct {
	Workers []WorkerDoc `json:"workers"`
}

// ClusterStatsDoc is the cluster section of /statsz on a coordinator:
// membership, live leases, and the dispatch/failover counters, plus the
// cluster-wide single-flight totals summed from worker heartbeats.
type ClusterStatsDoc struct {
	Workers          int    `json:"workers"`
	LiveWorkers      int    `json:"liveWorkers"`
	Leases           int    `json:"leases"`
	Dispatches       uint64 `json:"dispatches"`
	Redispatches     uint64 `json:"redispatches"`
	Failovers        uint64 `json:"failovers"`
	SingleFlightHits uint64 `json:"singleFlightHits"`
	Computes         uint64 `json:"computes"`
}

// decodeClusterDoc strictly parses one control document, rejecting
// unknown fields like the job wire does.
func decodeClusterDoc(data []byte, kind string, into any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("planio: parse %s: %w", kind, err)
	}
	return nil
}

// EncodeRegisterRequest renders a registration announcement.
func EncodeRegisterRequest(r *RegisterRequest) ([]byte, error) {
	r.Version = ClusterFormatVersion
	return json.Marshal(r)
}

// DecodeRegisterRequest parses a registration announcement, rejecting
// unknown fields and version mismatches like the job wire does.
func DecodeRegisterRequest(data []byte) (*RegisterRequest, error) {
	var r RegisterRequest
	if err := decodeClusterDoc(data, "register request", &r); err != nil {
		return nil, err
	}
	if r.Version != ClusterFormatVersion {
		return nil, fmt.Errorf("planio: register request: version %d, want %d", r.Version, ClusterFormatVersion)
	}
	if r.URL == "" {
		return nil, fmt.Errorf("planio: register request: missing url")
	}
	return &r, nil
}

// EncodeHeartbeatRequest renders a lease renewal.
func EncodeHeartbeatRequest(h *HeartbeatRequest) ([]byte, error) {
	h.Version = ClusterFormatVersion
	return json.Marshal(h)
}

// DecodeHeartbeatRequest parses a lease renewal.
func DecodeHeartbeatRequest(data []byte) (*HeartbeatRequest, error) {
	var h HeartbeatRequest
	if err := decodeClusterDoc(data, "heartbeat request", &h); err != nil {
		return nil, err
	}
	if h.Version != ClusterFormatVersion {
		return nil, fmt.Errorf("planio: heartbeat request: version %d, want %d", h.Version, ClusterFormatVersion)
	}
	if h.ID == "" {
		return nil, fmt.Errorf("planio: heartbeat request: missing id")
	}
	return &h, nil
}
