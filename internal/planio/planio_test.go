package planio

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/workloads"
)

func passM(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }

func sumR(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
	var s float64
	for _, v := range vs {
		switch x := v[0].(type) {
		case int64:
			s += float64(x)
		case float64:
			s += x
		}
	}
	emit(k, keyval.T(s))
}

// fullWorkflow exercises every serializable feature: a join job with two
// tagged branches and filters, a consumer with a combiner, range
// partitioning with split points, partition constraints, a profile
// annotation with key samples, and base-dataset layout annotations.
func fullWorkflow() *wf.Workflow {
	rt := keyval.RangePartition
	join := &wf.Job{
		ID: "JOIN", Config: wf.DefaultConfig(), Origin: []string{"JOIN"},
		MapBranches: []wf.MapBranch{
			{
				Tag: 0, Input: "left",
				Stages: []wf.Stage{wf.MapStage("ML", passM, 1e-6)},
				Filter: &wf.Filter{Field: "k", Interval: keyval.Interval{Lo: int64(0), Hi: int64(100)}},
				KeyIn:  []string{"k"}, ValIn: []string{"a"},
				KeyOut: []string{"k"}, ValOut: []string{"a"},
			},
			{
				Tag: 0, Input: "right",
				Stages: []wf.Stage{wf.MapStage("MR", passM, 2e-6)},
				KeyIn:  []string{"k"}, ValIn: []string{"b"},
				KeyOut: []string{"k"}, ValOut: []string{"b"},
			},
		},
		ReduceGroups: []wf.ReduceGroup{{
			Tag:    0,
			Stages: []wf.Stage{wf.ReduceStage("RJ", sumR, []int{0}, 3e-6)},
			Output: "joined",
			Part: keyval.PartitionSpec{
				Type:        rt,
				KeyFields:   []int{0},
				SortFields:  []int{0},
				SplitPoints: []keyval.Tuple{keyval.T(int64(10)), keyval.T(int64(20))},
			},
			Constraints: []wf.PartitionConstraint{{
				CoGroup:     []string{"k"},
				SortPrefix:  []string{"k"},
				RequireType: &rt,
				Reason:      "test pin",
			}},
			KeyIn: []string{"k"}, ValIn: []string{"x"},
			KeyOut: []string{"k"}, ValOut: []string{"sum"},
		}},
	}
	agg := &wf.Job{
		ID: "AGG", Config: wf.Config{NumReduceTasks: 4, SplitSizeMB: 64, SortBufferMB: 32, IOSortFactor: 8, UseCombiner: true, CompressMapOutput: true},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "joined",
			Stages: []wf.Stage{wf.MapStage("MA", passM, 1e-6)},
			KeyOut: []string{"k"}, ValOut: []string{"sum"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag:      0,
			Stages:   []wf.Stage{wf.ReduceStage("RA", sumR, nil, 1e-6)},
			Combiner: func() *wf.Stage { s := wf.ReduceStage("CA", sumR, nil, 1e-6); return &s }(),
			Output:   "out",
		}},
		Origin: []string{"AGG"},
		Profile: &wf.JobProfile{
			MapSide: map[int]*wf.PipelineProfile{0: {
				Selectivity: 0.5, CPUPerRecord: 1e-6, OutBytesPerRecord: 20, InBytesPerRecord: 40,
				KeySample: []keyval.Tuple{keyval.T(int64(1)), keyval.T("x", 3.5)},
			}},
			MapSideByInput: map[string]*wf.PipelineProfile{"joined#0": {
				Selectivity: 0.5, CPUPerRecord: 1e-6, OutBytesPerRecord: 20, InBytesPerRecord: 40,
			}},
			ReduceSide: map[int]*wf.PipelineProfile{0: {
				Selectivity: 0.1, CPUPerRecord: 2e-6, OutBytesPerRecord: 18, InBytesPerRecord: 20,
				GroupsPerRecord: 0.25, GroupsPerMapRecord: 0.5, CombineReduction: 0.4,
			}},
		},
	}
	return &wf.Workflow{
		Name: "full",
		Jobs: []*wf.Job{join, agg},
		Datasets: []*wf.Dataset{
			{
				ID: "left", Base: true,
				Layout: wf.Layout{
					PartType: keyval.RangePartition, PartFields: []string{"k"}, SortFields: []string{"k"},
					SplitPoints: []keyval.Tuple{keyval.T(int64(50))}, Compressed: true,
				},
				KeyFields: []string{"k"}, ValueFields: []string{"a"},
				EstRecords: 1000, EstBytes: 42000, EstPartitions: 2,
			},
			{ID: "right", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"b"}},
			{ID: "joined", KeyFields: []string{"k"}, ValueFields: []string{"sum"}},
			{ID: "out"},
		},
	}
}

func registryFor(w *wf.Workflow) *Registry {
	reg := NewRegistry()
	reg.RegisterWorkflow(w)
	return reg
}

func TestRoundTripFull(t *testing.T) {
	w := fullWorkflow()
	if err := w.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	data, err := Encode(w)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(data, registryFor(w))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	data2, err := Encode(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip changed document:\n--- first ---\n%s\n--- second ---\n%s", data, data2)
	}

	// Spot-check semantic fidelity beyond byte equality.
	j := got.Job("JOIN")
	if j == nil {
		t.Fatal("JOIN job missing after decode")
	}
	if got, want := len(j.MapBranches), 2; got != want {
		t.Fatalf("JOIN branches = %d, want %d", got, want)
	}
	if j.MapBranches[0].Filter == nil || j.MapBranches[0].Filter.Field != "k" {
		t.Fatalf("JOIN branch filter lost: %+v", j.MapBranches[0].Filter)
	}
	g := &j.ReduceGroups[0]
	if g.Part.Type != keyval.RangePartition || len(g.Part.SplitPoints) != 2 {
		t.Fatalf("JOIN partition spec lost: %+v", g.Part)
	}
	if len(g.Constraints) != 1 || g.Constraints[0].RequireType == nil {
		t.Fatalf("JOIN constraints lost: %+v", g.Constraints)
	}
	agg := got.Job("AGG")
	if agg.Profile == nil || agg.Profile.ReduceSide[0] == nil {
		t.Fatal("AGG profile lost")
	}
	if got, want := agg.Profile.ReduceSide[0].CombineReduction, 0.4; got != want {
		t.Fatalf("CombineReduction = %v, want %v", got, want)
	}
	if agg.ReduceGroups[0].Combiner == nil || agg.ReduceGroups[0].Combiner.Name != "CA" {
		t.Fatal("AGG combiner lost")
	}
	ds := got.Dataset("left")
	if ds.Layout.PartType != keyval.RangePartition || !ds.Layout.Compressed || len(ds.Layout.SplitPoints) != 1 {
		t.Fatalf("left layout lost: %+v", ds.Layout)
	}
	if ds.EstRecords != 1000 || ds.EstBytes != 42000 || ds.EstPartitions != 2 {
		t.Fatalf("left size annotations lost: %+v", ds)
	}
}

func TestRoundTripAllWorkloads(t *testing.T) {
	for _, abbr := range workloads.Abbrs() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			wl, err := workloads.Build(abbr, workloads.Options{SizeFactor: 0.05, Seed: 7})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			data, err := Encode(wl.Workflow)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := Decode(data, registryFor(wl.Workflow))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			data2, err := Encode(got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatalf("round trip changed %s document", abbr)
			}
		})
	}
}

// TestImportedPlanExecutesIdentically runs the original and the imported IR
// plan over the same inputs and compares every sink dataset record for
// record: import must preserve execution semantics, not just structure.
func TestImportedPlanExecutesIdentically(t *testing.T) {
	wl, err := workloads.Build("IR", workloads.Options{SizeFactor: 0.05, Seed: 3})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	data, err := Encode(wl.Workflow)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	imported, err := Decode(data, registryFor(wl.Workflow))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	run := func(w *wf.Workflow) map[string][]keyval.Pair {
		dfs := wl.DFS.Clone()
		if _, err := mrsim.NewEngine(wl.Cluster, dfs).RunWorkflow(w); err != nil {
			t.Fatalf("run: %v", err)
		}
		out := map[string][]keyval.Pair{}
		for _, d := range w.SinkDatasets() {
			st, ok := dfs.Get(d.ID)
			if !ok {
				t.Fatalf("sink %s not materialized", d.ID)
			}
			pairs := st.AllPairs()
			keyval.SortPairs(pairs, nil)
			out[d.ID] = pairs
		}
		return out
	}
	want, got := run(wl.Workflow), run(imported)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("imported plan produced different output")
	}
}

// TestDecodeStructureOptimizes checks the paper's deployment story: a plan
// arrives from a remote generator as pure structure + annotations, and
// Stubby can still cost and optimize it without the function bodies.
func TestDecodeStructureOptimizes(t *testing.T) {
	wl, err := workloads.Build("IR", workloads.Options{SizeFactor: 0.05, Seed: 3})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := profile.NewProfiler(wl.Cluster, 0.5, 1).Annotate(wl.Workflow, wl.DFS); err != nil {
		t.Fatalf("profile: %v", err)
	}
	data, err := Encode(wl.Workflow)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	structural, err := DecodeStructure(data)
	if err != nil {
		t.Fatalf("decode structure: %v", err)
	}
	// The optimizer never invokes the black-box functions, so a
	// structure-only plan must lead to exactly the decisions the original
	// in-memory plan leads to.
	resOrig, err := optimizer.New(wl.Cluster, optimizer.Options{Seed: 1}).Optimize(wl.Workflow)
	if err != nil {
		t.Fatalf("optimize original: %v", err)
	}
	resStruct, err := optimizer.New(wl.Cluster, optimizer.Options{Seed: 1}).Optimize(structural)
	if err != nil {
		t.Fatalf("optimize structural: %v", err)
	}
	if lo, ls := len(resOrig.Plan.Jobs), len(resStruct.Plan.Jobs); lo != ls {
		t.Errorf("structural import changed plan shape: %d vs %d jobs", lo, ls)
	}
	if co, cs := resOrig.EstimatedCost, resStruct.EstimatedCost; co != cs {
		t.Errorf("structural import changed estimated cost: %v vs %v", co, cs)
	}
	// The placeholder functions must refuse to execute.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("executing a structure-only stage did not panic")
		}
		if !strings.Contains(r.(string), "structure-only") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	s := structural.Jobs[0].MapBranches[0].Stages[0]
	s.Map(keyval.T(int64(1)), keyval.T("x"), func(_, _ keyval.Tuple) {})
}

func TestMissingFunctionsReported(t *testing.T) {
	w := fullWorkflow()
	data, err := Encode(w)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	reg := NewRegistry()
	reg.RegisterMap("ML", passM) // deliberately partial
	_, err = Decode(data, reg)
	if err == nil {
		t.Fatal("decode with partial registry succeeded")
	}
	me, ok := err.(*MissingError)
	if !ok {
		t.Fatalf("error type %T, want *MissingError: %v", err, err)
	}
	want := []string{"map:MA", "map:MR", "reduce:CA", "reduce:RA", "reduce:RJ"}
	if !sort.StringsAreSorted(me.Names) {
		t.Errorf("missing names not sorted: %v", me.Names)
	}
	if !reflect.DeepEqual(me.Names, want) {
		t.Errorf("missing = %v, want %v", me.Names, want)
	}
}

func TestDecodeRejectsBadDocuments(t *testing.T) {
	w := fullWorkflow()
	good, err := Encode(w)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	cases := []struct {
		name string
		data []byte
		frag string
	}{
		{"not json", []byte("nope"), "parse"},
		{"wrong format", bytes.Replace(good, []byte(`"format": "stubby-plan"`), []byte(`"format": "other"`), 1), "not a stubby-plan"},
		{"wrong version", bytes.Replace(good, []byte(`"version": 1`), []byte(`"version": 99`), 1), "unsupported version"},
		{"unknown field", bytes.Replace(good, []byte(`"name": "full"`), []byte(`"name": "full", "bogus": 1`), 1), "parse"},
		{"bad partition type", bytes.Replace(good, []byte(`"type": "range"`), []byte(`"type": "spiral"`), 1), "unknown partition type"},
		{"bad stage kind", bytes.Replace(good, []byte(`"kind": "map"`), []byte(`"kind": "shuffle"`), 1), "unknown kind"},
		{"bad int field", bytes.Replace(good, []byte(`"int": "10"`), []byte(`"int": "ten"`), 1), "int field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(tc.data, registryFor(w))
			if err == nil {
				t.Fatal("decode succeeded")
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestDecodeRejectsInvalidPlan(t *testing.T) {
	w := fullWorkflow()
	// Break referential integrity: point a branch at a missing dataset.
	w.Jobs[1].MapBranches[0].Input = "missing"
	data, err := Encode(w)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := Decode(data, registryFor(w)); err == nil ||
		!strings.Contains(err.Error(), "decoded plan invalid") {
		t.Fatalf("invalid plan not rejected: %v", err)
	}
}

// TestGroupFieldsNilVsEmpty pins the subtle distinction the codec must
// keep: nil group fields mean "group on the whole key" while empty group
// fields mean "one group per stream" (ops.LocalTopK relies on the latter).
func TestGroupFieldsNilVsEmpty(t *testing.T) {
	build := func(gf []int) *wf.Workflow {
		return &wf.Workflow{
			Name: "gf",
			Jobs: []*wf.Job{{
				ID: "J", Config: wf.DefaultConfig(), Origin: []string{"J"},
				MapBranches: []wf.MapBranch{{Tag: 0, Input: "in",
					Stages: []wf.Stage{wf.MapStage("M", passM, 0)}}},
				ReduceGroups: []wf.ReduceGroup{{Tag: 0, Output: "out",
					Stages: []wf.Stage{wf.ReduceStage("R", sumR, gf, 0)}}},
			}},
			Datasets: []*wf.Dataset{{ID: "in", Base: true}, {ID: "out"}},
		}
	}
	for _, tc := range []struct {
		name string
		gf   []int
	}{
		{"nil", nil},
		{"empty", []int{}},
		{"explicit", []int{1, 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := build(tc.gf)
			data, err := Encode(w)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := Decode(data, registryFor(w))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			gotGF := got.Jobs[0].ReduceGroups[0].Stages[0].GroupFields
			if (gotGF == nil) != (tc.gf == nil) {
				t.Fatalf("nil-ness changed: sent %#v, got %#v", tc.gf, gotGF)
			}
			if !reflect.DeepEqual(append([]int{}, gotGF...), append([]int{}, tc.gf...)) {
				t.Fatalf("group fields changed: sent %#v, got %#v", tc.gf, gotGF)
			}
		})
	}
}

// randomTuple builds an arbitrary tuple across all supported field types.
func randomTuple(r *rand.Rand) keyval.Tuple {
	n := r.Intn(5)
	t := make(keyval.Tuple, n)
	for i := range t {
		switch r.Intn(5) {
		case 0:
			t[i] = nil
		case 1:
			t[i] = r.Int63() - r.Int63() // spans negatives and > 2^53
		case 2:
			t[i] = r.NormFloat64() * 1e6
		case 3:
			t[i] = randString(r)
		case 4:
			t[i] = r.Intn(2) == 0
		}
	}
	return t
}

func randString(r *rand.Rand) string {
	b := make([]rune, r.Intn(8))
	for i := range b {
		b[i] = rune(32 + r.Intn(1000)) // include multi-byte runes
	}
	return string(b)
}

func TestTupleFieldRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		orig := randomTuple(r)
		td := encodeTuple(orig)
		data, err := stdJSONRoundTrip(td)
		if err != nil {
			t.Logf("json: %v", err)
			return false
		}
		got, err := decodeTuple(data)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return keyval.Compare(orig, got) == 0 && sameTypes(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func sameTypes(a, b keyval.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if reflect.TypeOf(a[i]) != reflect.TypeOf(b[i]) {
			return false
		}
	}
	return true
}

func stdJSONRoundTrip(td tupleDoc) (tupleDoc, error) {
	data, err := json.Marshal(td)
	if err != nil {
		return nil, err
	}
	var out tupleDoc
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}
