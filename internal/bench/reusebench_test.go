package bench

import "testing"

// TestReuseBench: on an overlapping family, every consumer member's
// optimization hits the catalog member 0 populated and replaces at least
// one sub-DAG with a scan — the exact property GuardOptimizerBench asserts
// over the committed report.
func TestReuseBench(t *testing.T) {
	h := New(Config{})
	rows, err := h.ReuseBench([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != ReuseBenchMembers-1 {
		t.Fatalf("got %d rows, want %d consumer members", len(rows), ReuseBenchMembers-1)
	}
	for _, r := range rows {
		if r.CatalogHits == 0 || r.HitRatio <= 0 {
			t.Errorf("member %d: no catalog hits: %+v", r.Member, r)
		}
		if r.ReusedSubplans < 1 {
			t.Errorf("member %d: reused %d sub-plans, want >= 1", r.Member, r.ReusedSubplans)
		}
		if r.PlanJobs >= r.Jobs {
			t.Errorf("member %d: reuse plan did not shrink (%d -> %d jobs)", r.Member, r.Jobs, r.PlanJobs)
		}
		if r.ReuseCost <= 0 || r.BaselineCost <= 0 {
			t.Errorf("member %d: missing cost estimates: %+v", r.Member, r)
		}
	}
}
