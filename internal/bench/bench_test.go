package bench

import (
	"strings"
	"testing"
)

func testHarness() *Harness {
	return New(Config{SizeFactor: 0.15, Seed: 1})
}

func TestTable1Inventory(t *testing.T) {
	h := testHarness()
	rows, err := h.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Records <= 0 || r.Jobs <= 0 {
			t.Errorf("%s: empty workload", r.Abbr)
		}
		// Virtual size must match the paper's dataset size closely.
		if r.VirtualGB < r.PaperGB*0.95 || r.VirtualGB > r.PaperGB*1.05 {
			t.Errorf("%s: virtual %.1f GB, paper %.1f GB", r.Abbr, r.VirtualGB, r.PaperGB)
		}
	}
	if rows[0].Abbr != "IR" || rows[5].Jobs != 7 {
		t.Error("Table 1 order or BR job count wrong")
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver; skipped in -short")
	}
	h := testHarness()
	rows, err := h.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		switch r.Case {
		case "improvement":
			if r.Speedup <= 1 {
				t.Errorf("%s improvement should exceed 1x, got %.2f", r.Transformation, r.Speedup)
			}
		case "degradation":
			if r.Speedup >= 1 {
				t.Errorf("%s degradation should be below 1x, got %.2f", r.Transformation, r.Speedup)
			}
		}
	}
}

func TestComparePlannersOnPJ(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver; skipped in -short")
	}
	// The Post-processing Jobs decision (Section 7.2): rule-based packing
	// (Baseline/YSmart) loses to cost-based refusal to pack.
	h := testHarness()
	runs, err := h.ComparePlanners("PJ", []string{"Stubby", "YSmart"})
	if err != nil {
		t.Fatal(err)
	}
	var stubbySpeed, ysmartSpeed float64
	for _, r := range runs {
		switch r.Planner {
		case "Stubby":
			stubbySpeed = r.Speedup
		case "YSmart":
			ysmartSpeed = r.Speedup
		}
	}
	if stubbySpeed < 1 {
		t.Errorf("Stubby slower than Baseline on PJ: %.2fx", stubbySpeed)
	}
	if stubbySpeed < ysmartSpeed {
		t.Errorf("Stubby (%.2fx) should beat YSmart (%.2fx) on PJ", stubbySpeed, ysmartSpeed)
	}
}

func TestFigure13Overhead(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver; skipped in -short")
	}
	h := testHarness()
	rows, err := h.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.OptimizeMS <= 0 || r.WorkflowSec <= 0 {
			t.Errorf("%s: empty measurements", r.Workload)
		}
	}
}

func TestFigure14Scatter(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver; skipped in -short")
	}
	h := testHarness()
	points, err := h.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("only %d subplans enumerated", len(points))
	}
	// Normalization and identity subplan presence.
	sawIdentity := false
	for _, p := range points {
		if p.EstimatedNorm < 0 || p.EstimatedNorm > 1 || p.ActualNorm < 0 || p.ActualNorm > 1 {
			t.Errorf("normalized cost out of range: %+v", p)
		}
		if strings.Contains(p.Description, "no structural change") {
			sawIdentity = true
		}
	}
	if !sawIdentity {
		t.Error("identity subplan missing from the deep dive")
	}
	// Rank agreement at the extremes (the paper's dotted circles).
	bestEst, bestAct := 0, 0
	for i, p := range points {
		if p.EstimatedNorm < points[bestEst].EstimatedNorm {
			bestEst = i
		}
		if p.ActualNorm < points[bestAct].ActualNorm {
			bestAct = i
		}
	}
	if points[bestEst].ActualNorm > points[bestAct].ActualNorm*1.3 {
		t.Errorf("estimated best subplan (%q, actual %.3f) far from actual best (%q, %.3f)",
			points[bestEst].Description, points[bestEst].ActualNorm,
			points[bestAct].Description, points[bestAct].ActualNorm)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "bb"}, [][]string{{"x", "y"}, {"long", "z"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a") || !strings.Contains(lines[0], "bb") {
		t.Error("header malformed")
	}
	if !strings.Contains(lines[1], "-") {
		t.Error("separator missing")
	}
}

func TestHarnessCachesWorkloads(t *testing.T) {
	h := testHarness()
	a, err := h.workload("PJ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.workload("PJ")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("workload not cached")
	}
	if _, err := h.workload("XX"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestWhatIfCounts locks in the estimate cache's headline property on the
// bench harness: across the eight paper workloads, the cached search issues
// the same requests but computes measurably fewer estimates, while choosing
// byte-identical plans.
func TestWhatIfCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment driver; skipped in -short")
	}
	h := testHarness()
	rows, err := h.WhatIfCounts()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	var uncached, computed uint64
	for _, r := range rows {
		if !r.PlansIdentical {
			t.Errorf("%s: cached and uncached searches chose different plans", r.Workload)
		}
		if r.CachedRequests != r.UncachedCalls {
			t.Errorf("%s: cached search issued %d requests, uncached issued %d — the search itself changed",
				r.Workload, r.CachedRequests, r.UncachedCalls)
		}
		if r.CachedComputed >= r.UncachedComputed {
			t.Errorf("%s: cache absorbed nothing (%d computed of %d)",
				r.Workload, r.CachedComputed, r.UncachedComputed)
		}
		if r.RepeatComputed != 0 {
			t.Errorf("%s: repeat optimization recomputed %d estimates, want 0", r.Workload, r.RepeatComputed)
		}
		uncached += r.UncachedComputed
		computed += r.CachedComputed
	}
	if computed >= uncached {
		t.Fatalf("no aggregate saving: %d computed of %d uncached", computed, uncached)
	}
	t.Logf("what-if computations: %d uncached -> %d cached (%.1f%% absorbed)",
		uncached, computed, 100*float64(uncached-computed)/float64(uncached))
}
