package bench

// clusterbench.go measures the distributed service: a coordinator server
// fronting R worker replicas of one shared plan-store directory, swept
// over replica counts × admission-queue depths with a repeated-workflow
// arrival mix. It is the multi-node half of `stubby-bench -bench-service`
// and lands in BENCH_service.json as the `cluster` row set, which is what
// proves cluster-wide single-flight in the perf trajectory: Computes per
// row stays at the distinct-workflow count no matter how many replicas
// and concurrent submissions the row ran.

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/stubby-mr/stubby"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// ServiceClusterReplicas and ServiceClusterDepths are the sweep axes of
// the multi-node benchmark.
var (
	ServiceClusterReplicas = []int{1, 2}
	ServiceClusterDepths   = []int{1, 8}
)

// serviceClusterAbbrs is the distinct-workflow mix each row cycles
// through; its length is the single-flight bound on Computes.
var serviceClusterAbbrs = []string{"IR", "BR"}

// ServiceClusterRow is one (replicas × queue depth) measurement of the
// coordinator/worker topology.
type ServiceClusterRow struct {
	// Replicas is how many workers served the row; Depth is the
	// admission-queue depth of every node.
	Replicas int `json:"replicas"`
	Depth    int `json:"depth"`
	// Jobs is how many submissions completed; Distinct is how many
	// distinct workflows the mix cycled through.
	Jobs     int `json:"jobs"`
	Distinct int `json:"distinct_workflows"`
	// Overloads counts submissions shed with ErrKindOverloaded (each was
	// retried until admitted).
	Overloads int `json:"overloads"`
	// Dispatches/Redispatches/Failovers are the coordinator's counters
	// for the row.
	Dispatches   uint64 `json:"dispatches"`
	Redispatches uint64 `json:"redispatches"`
	Failovers    uint64 `json:"failovers"`
	// StoreHits sums the worker replicas' plan-store hits; HitRatio is
	// StoreHits/Jobs. Computes sums the optimizations the replicas
	// actually ran — the cluster-wide single-flight bound is Distinct.
	StoreHits uint64  `json:"store_hits"`
	HitRatio  float64 `json:"hit_ratio"`
	Computes  uint64  `json:"computes"`
	// WallMS is the row's wall time; Throughput is jobs per second.
	WallMS     float64 `json:"wall_ms"`
	Throughput float64 `json:"throughput_jobs_per_sec"`
	// P50MS/P99MS are submit→result latency percentiles per job.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// ServiceClusterBench sweeps replicas × queue depths. Every row builds a
// fresh topology — coordinator, R workers over a fresh shared store
// directory, heartbeating agents — and pushes the repeated-workflow mix
// through the coordinator's unchanged /v1/jobs API.
func (h *Harness) ServiceClusterBench(jobsPerRow, workers int) ([]ServiceClusterRow, error) {
	if jobsPerRow < 1 {
		jobsPerRow = 1
	}
	if workers < 1 {
		workers = 2
	}
	wls := make([]*workloads.Workload, len(serviceClusterAbbrs))
	for i, abbr := range serviceClusterAbbrs {
		wl, err := h.workload(abbr)
		if err != nil {
			return nil, err
		}
		wls[i] = wl
	}
	var rows []ServiceClusterRow
	for _, replicas := range ServiceClusterReplicas {
		for _, depth := range ServiceClusterDepths {
			row, err := h.serviceClusterRow(wls, replicas, depth, jobsPerRow, workers)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func (h *Harness) serviceClusterRow(wls []*workloads.Workload, replicas, depth, jobs, workers int) (ServiceClusterRow, error) {
	storeDir, err := os.MkdirTemp("", "stubby-bench-cluster-")
	if err != nil {
		return ServiceClusterRow{}, err
	}
	defer os.RemoveAll(storeDir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	coord := stubby.NewCoordinator()
	csess, err := stubby.NewSession(
		stubby.WithSeed(h.cfg.Seed),
		stubby.WithParallelism(workers),
		stubby.WithQueueDepth(depth),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 20}),
	)
	if err != nil {
		return ServiceClusterRow{}, err
	}
	defer csess.Close(context.Background())
	srv := stubby.NewServer(csess, stubby.WithCoordinator(coord))
	httpSrv := httptest.NewServer(srv)
	defer httpSrv.Close()

	stores := make([]*stubby.PlanStore, replicas)
	for i := 0; i < replicas; i++ {
		store, err := stubby.NewPlanStore(storeDir)
		if err != nil {
			return ServiceClusterRow{}, err
		}
		defer store.Close()
		stores[i] = store
		wsess, err := stubby.NewSession(
			stubby.WithSeed(h.cfg.Seed),
			stubby.WithParallelism(workers),
			stubby.WithQueueDepth(depth),
			stubby.WithEstimateCache(stubby.NewEstimateCache(0)),
			stubby.WithPlanStore(store),
			stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 20}),
		)
		if err != nil {
			return ServiceClusterRow{}, err
		}
		defer wsess.Close(context.Background())
		whs := httptest.NewServer(stubby.NewServer(wsess))
		defer whs.Close()
		agent := stubby.NewWorkerAgent(httpSrv.URL, whs.URL, stubby.WithWorkerStats(func() (uint64, uint64) {
			st := store.Stats()
			return st.ClaimHits, st.Computes
		}))
		go agent.Run(ctx)
	}
	client, err := stubby.NewClient(httpSrv.URL)
	if err != nil {
		return ServiceClusterRow{}, err
	}
	// Every replica must hold a lease before the clock starts.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if st, ok := srv.ClusterStats(); ok && st.LiveWorkers >= replicas {
			break
		}
		if time.Now().After(deadline) {
			return ServiceClusterRow{}, errors.New("bench: workers never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}

	bctx := context.Background()
	latencies := make([]float64, jobs)
	errs := make([]error, jobs)
	var overloads int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	submitters := workers * 2
	if submitters > jobs {
		submitters = jobs
	}
	next := make(chan int, jobs)
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	start := time.Now()
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				wl := wls[i%len(wls)]
				t0 := time.Now()
				var job *stubby.RemoteJob
				for {
					var err error
					job, err = client.Submit(bctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Cluster: wl.Cluster})
					if err == nil {
						break
					}
					if errors.Is(err, stubby.ErrKindOverloaded) {
						mu.Lock()
						overloads++
						mu.Unlock()
						time.Sleep(2 * time.Millisecond)
						continue
					}
					errs[i] = err
					return
				}
				if _, err := job.Wait(bctx); err != nil {
					errs[i] = err
					return
				}
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServiceClusterRow{}, err
		}
	}
	sort.Float64s(latencies)
	var hits, computes uint64
	for _, store := range stores {
		st := store.Stats()
		hits += st.Hits
		computes += st.Computes
	}
	cst, _ := srv.ClusterStats()
	return ServiceClusterRow{
		Replicas:     replicas,
		Depth:        depth,
		Jobs:         jobs,
		Distinct:     len(wls),
		Overloads:    int(overloads),
		Dispatches:   cst.Dispatches,
		Redispatches: cst.Redispatches,
		Failovers:    cst.Failovers,
		StoreHits:    hits,
		HitRatio:     float64(hits) / float64(jobs),
		Computes:     computes,
		WallMS:       float64(wall.Microseconds()) / 1000,
		Throughput:   float64(jobs) / wall.Seconds(),
		P50MS:        percentile(latencies, 0.50),
		P99MS:        percentile(latencies, 0.99),
	}, nil
}
