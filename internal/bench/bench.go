// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 7). Each driver returns the
// rows/series the paper reports; the cmd/stubby-bench binary and the
// repository's testing.B benchmarks print them.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/stubby-mr/stubby/internal/baselines"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// Config tunes the harness.
type Config struct {
	// SizeFactor scales workload record counts (default 0.25: quick runs
	// with paper-scale virtual sizes).
	SizeFactor float64
	// Seed drives generators, sampling, and search.
	Seed int64
	// ProfileFraction is the sampling rate for profile annotations.
	ProfileFraction float64
}

func (c Config) withDefaults() Config {
	if c.SizeFactor <= 0 {
		c.SizeFactor = 0.25
	}
	if c.ProfileFraction <= 0 {
		c.ProfileFraction = 0.5
	}
	return c
}

// prepared caches a built and profiled workload.
type prepared struct {
	wl *workloads.Workload
}

// Harness runs the experiments.
type Harness struct {
	cfg   Config
	cache map[string]*prepared
}

// New builds a harness.
func New(cfg Config) *Harness {
	return &Harness{cfg: cfg.withDefaults(), cache: make(map[string]*prepared)}
}

// workload returns a built, profiled workload (cached).
func (h *Harness) workload(abbr string) (*workloads.Workload, error) {
	if p, ok := h.cache[abbr]; ok {
		return p.wl, nil
	}
	wl, err := workloads.Build(abbr, workloads.Options{SizeFactor: h.cfg.SizeFactor, Seed: h.cfg.Seed})
	if err != nil {
		return nil, err
	}
	prof := profile.NewProfiler(wl.Cluster, h.cfg.ProfileFraction, h.cfg.Seed+17)
	if err := prof.Annotate(wl.Workflow, wl.DFS); err != nil {
		return nil, err
	}
	h.cache[abbr] = &prepared{wl: wl}
	return wl, nil
}

// runPlan executes a plan over a fresh copy of the workload's data and
// returns the simulated makespan.
func runPlan(wl *workloads.Workload, plan *wf.Workflow) (float64, error) {
	rep, err := mrsim.NewEngine(wl.Cluster, wl.DFS.Clone()).RunWorkflow(plan)
	if err != nil {
		return 0, err
	}
	return rep.Makespan, nil
}

// PlannerRun is one (planner, workload) measurement.
type PlannerRun struct {
	Planner  string
	Workload string
	// Jobs is the optimized plan's job count.
	Jobs int
	// Makespan is the simulated running time of the optimized plan.
	Makespan float64
	// Speedup is Baseline makespan over this makespan.
	Speedup float64
	// OptimizeMS is the planner's own (real) running time.
	OptimizeMS float64
}

// planners resolves the comparator set for a figure through the shared
// planner registry (names are case-insensitive).
func (h *Harness) planners(wl *workloads.Workload, which []string) ([]baselines.Planner, error) {
	reg := baselines.DefaultRegistry()
	out := make([]baselines.Planner, 0, len(which))
	for _, name := range which {
		p, err := reg.New(name, wl.Cluster, h.cfg.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ComparePlanners measures the given planners on one workload, reporting
// speedups over the Baseline planner.
func (h *Harness) ComparePlanners(abbr string, names []string) ([]PlannerRun, error) {
	wl, err := h.workload(abbr)
	if err != nil {
		return nil, err
	}
	base := baselines.Baseline{Cluster: wl.Cluster}
	basePlan, err := base.Plan(wl.Workflow)
	if err != nil {
		return nil, err
	}
	baseTime, err := runPlan(wl, basePlan)
	if err != nil {
		return nil, fmt.Errorf("baseline run on %s: %w", abbr, err)
	}
	planners, err := h.planners(wl, names)
	if err != nil {
		return nil, err
	}
	var out []PlannerRun
	for _, p := range planners {
		t0 := time.Now()
		plan, err := p.Plan(wl.Workflow)
		optMS := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", p.Name(), abbr, err)
		}
		makespan, err := runPlan(wl, plan)
		if err != nil {
			return nil, fmt.Errorf("%s plan on %s failed to run: %w", p.Name(), abbr, err)
		}
		out = append(out, PlannerRun{
			Planner:    p.Name(),
			Workload:   abbr,
			Jobs:       len(plan.Jobs),
			Makespan:   makespan,
			Speedup:    baseTime / makespan,
			OptimizeMS: optMS,
		})
	}
	return out, nil
}

// FormatTable renders rows as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// sortedKeys returns map keys sorted.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
