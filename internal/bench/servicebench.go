package bench

// servicebench.go measures the job service end to end: submit→result
// throughput and latency through a real stubbyd HTTP server (in-process
// listener, real sockets), at several admission-queue depths. It is the
// `stubby-bench -bench-service` driver and writes BENCH_service.json so
// service-layer regressions show up as a perf trajectory across PRs.

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/stubby-mr/stubby"
	"github.com/stubby-mr/stubby/internal/faultproxy"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// ServiceBenchDepths are the admission-queue depths the service benchmark
// sweeps.
var ServiceBenchDepths = []int{1, 8, 64}

// ServiceBenchRow is one queue-depth measurement.
type ServiceBenchRow struct {
	// Depth is the admission-queue depth.
	Depth int `json:"depth"`
	// Workers is the worker-pool size.
	Workers int `json:"workers"`
	// Jobs is how many submissions completed successfully.
	Jobs int `json:"jobs"`
	// Overloads counts submissions shed with ErrKindOverloaded (each was
	// retried until admitted).
	Overloads int `json:"overloads"`
	// WallMS is the whole sweep's wall time.
	WallMS float64 `json:"wall_ms"`
	// Throughput is completed jobs per second of wall time.
	Throughput float64 `json:"throughput_jobs_per_sec"`
	// P50MS/P99MS are submit→result latency percentiles per job.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// ServiceCacheRow is one phase of the plan-store benchmark: the cold phase
// submits every paper workload for the first time (each one runs the
// optimizer), the warm phase replays a repeated-workflow arrival mix
// against the now-populated store (each submission should be a store hit).
type ServiceCacheRow struct {
	// Phase is "cold" or "warm".
	Phase string `json:"phase"`
	// Submissions is how many jobs the phase submitted.
	Submissions int `json:"submissions"`
	// StoreHits is how many of them the plan store answered without
	// running the optimizer.
	StoreHits int `json:"store_hits"`
	// HitRatio is StoreHits/Submissions.
	HitRatio float64 `json:"hit_ratio"`
	// Optimizations is how many full optimizer runs the phase cost.
	Optimizations int `json:"optimizations"`
	// P50MS/P99MS are submit→result latency percentiles per job.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// WallMS is the phase's wall time.
	WallMS float64 `json:"wall_ms"`
}

// ServiceChaosRow is one fault-profile measurement of the journaled
// service behind the deterministic fault proxy: the same submission mix
// runs once fault-free ("clean") and once through injected 503s,
// connection resets, and truncated responses ("chaos"), with retry-policy
// clients. The row pair quantifies what the failure-handling stack costs
// in latency and proves the idempotency bound: optimizations stay at the
// distinct-workflow count no matter how many retries the faults force.
type ServiceChaosRow struct {
	// Profile is "clean" or "chaos".
	Profile string `json:"profile"`
	// Jobs is how many submissions completed successfully.
	Jobs int `json:"jobs"`
	// Injected503/Resets/Truncations count the proxy's injected faults.
	Injected503 uint64 `json:"injected_503"`
	Resets      uint64 `json:"resets"`
	Truncations uint64 `json:"truncations"`
	// Retries/Resumes count the clients' recovery work.
	Retries uint64 `json:"client_retries"`
	Resumes uint64 `json:"stream_resumes"`
	// Optimizations is how many full optimizer runs the phase cost (the
	// idempotency bound: 1, for a single distinct workflow).
	Optimizations int `json:"optimizations"`
	// WallMS is the phase's wall time; Throughput is jobs per second.
	WallMS     float64 `json:"wall_ms"`
	Throughput float64 `json:"throughput_jobs_per_sec"`
	// P50MS/P99MS are submit→result latency percentiles per job.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// ServiceBenchReport is the BENCH_service.json schema.
type ServiceBenchReport struct {
	Workload   string            `json:"workload"`
	SizeFactor float64           `json:"size_factor"`
	Seed       int64             `json:"seed"`
	JobsPerRow int               `json:"jobs_per_row"`
	Rows       []ServiceBenchRow `json:"rows"`
	// Cache holds the plan-store warm/cold phases (all paper workloads).
	Cache []ServiceCacheRow `json:"cache,omitempty"`
	// Chaos holds the fault-injection clean/chaos phases.
	Chaos []ServiceChaosRow `json:"chaos,omitempty"`
	// Cluster holds the multi-node (replicas × queue depth) rows.
	Cluster []ServiceClusterRow `json:"cluster,omitempty"`
}

// ServiceBench sweeps the queue depths, submitting jobs concurrently
// through a stubby.Client against a live HTTP server and waiting for each
// result. Each depth uses a fresh session and server; the submitted
// workflow is the profiled IR workload (small but multi-unit), with a
// reduced search budget so the benchmark measures service overhead and
// scheduling, not raw search time.
func (h *Harness) ServiceBench(depths []int, jobsPerDepth, workers int) ([]ServiceBenchRow, error) {
	if jobsPerDepth < 1 {
		jobsPerDepth = 1
	}
	if workers < 1 {
		workers = 2
	}
	wl, err := h.workload("IR")
	if err != nil {
		return nil, err
	}
	var rows []ServiceBenchRow
	for _, depth := range depths {
		row, err := h.serviceBenchDepth(wl, depth, jobsPerDepth, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (h *Harness) serviceBenchDepth(wl *workloads.Workload, depth, jobs, workers int) (ServiceBenchRow, error) {
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(h.cfg.Seed),
		stubby.WithParallelism(workers),
		stubby.WithQueueDepth(depth),
		stubby.WithEstimateCache(stubby.NewEstimateCache(0)),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 20}),
	)
	if err != nil {
		return ServiceBenchRow{}, err
	}
	httpSrv := httptest.NewServer(stubby.NewServer(sess))
	defer httpSrv.Close()
	defer sess.Close(context.Background())
	client, err := stubby.NewClient(httpSrv.URL)
	if err != nil {
		return ServiceBenchRow{}, err
	}

	ctx := context.Background()
	latencies := make([]float64, jobs)
	var overloads int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	// More submitters than workers keeps the queue pressured so depth
	// actually matters; overloaded submissions back off and retry.
	submitters := workers * 2
	if submitters > jobs {
		submitters = jobs
	}
	next := make(chan int, jobs)
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	start := time.Now()
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				var job *stubby.RemoteJob
				for {
					var err error
					job, err = client.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow})
					if err == nil {
						break
					}
					if errors.Is(err, stubby.ErrKindOverloaded) {
						mu.Lock()
						overloads++
						mu.Unlock()
						time.Sleep(2 * time.Millisecond)
						continue
					}
					errs[i] = err
					return
				}
				if _, err := job.Wait(ctx); err != nil {
					errs[i] = err
					return
				}
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServiceBenchRow{}, err
		}
	}
	sort.Float64s(latencies)
	return ServiceBenchRow{
		Depth:      depth,
		Workers:    workers,
		Jobs:       jobs,
		Overloads:  int(overloads),
		WallMS:     float64(wall.Microseconds()) / 1000,
		Throughput: float64(jobs) / wall.Seconds(),
		P50MS:      percentile(latencies, 0.50),
		P99MS:      percentile(latencies, 0.99),
	}, nil
}

// ServiceCacheBench measures what the persistent plan store buys the
// service: one server with a store attached takes every paper workload cold
// (each submission runs the optimizer and lands in the store), then a
// repeated-workflow arrival mix of rounds×workloads warm submissions (every
// one a store hit). The row pair quantifies the cache-hit ratio and the
// warm-vs-cold submit→result latency gap.
func (h *Harness) ServiceCacheBench(rounds, workers int) ([]ServiceCacheRow, error) {
	if rounds < 1 {
		rounds = 1
	}
	if workers < 1 {
		workers = 2
	}
	abbrs := workloads.Abbrs()
	wls := make([]*workloads.Workload, len(abbrs))
	for i, abbr := range abbrs {
		wl, err := h.workload(abbr)
		if err != nil {
			return nil, err
		}
		wls[i] = wl
	}

	storeDir, err := os.MkdirTemp("", "stubby-bench-store-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(storeDir)
	store, err := stubby.NewPlanStore(storeDir)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	sess, err := stubby.NewSession(
		stubby.WithCluster(wls[0].Cluster),
		stubby.WithSeed(h.cfg.Seed),
		stubby.WithParallelism(workers),
		stubby.WithEstimateCache(stubby.NewEstimateCache(0)),
		stubby.WithPlanStore(store),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 20}),
	)
	if err != nil {
		return nil, err
	}
	httpSrv := httptest.NewServer(stubby.NewServer(sess))
	defer httpSrv.Close()
	defer sess.Close(context.Background())
	client, err := stubby.NewClient(httpSrv.URL)
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	phase := func(name string, mix []*workloads.Workload) (ServiceCacheRow, error) {
		before := store.Stats()
		latencies := make([]float64, len(mix))
		start := time.Now()
		for i, wl := range mix {
			t0 := time.Now()
			job, err := client.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Cluster: wl.Cluster})
			if err != nil {
				return ServiceCacheRow{}, err
			}
			if _, err := job.Wait(ctx); err != nil {
				return ServiceCacheRow{}, err
			}
			latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
		}
		wall := time.Since(start)
		after := store.Stats()
		hits := int(after.Hits - before.Hits)
		sort.Float64s(latencies)
		return ServiceCacheRow{
			Phase:         name,
			Submissions:   len(mix),
			StoreHits:     hits,
			HitRatio:      float64(hits) / float64(len(mix)),
			Optimizations: int(after.Computes - before.Computes),
			P50MS:         percentile(latencies, 0.50),
			P99MS:         percentile(latencies, 0.99),
			WallMS:        float64(wall.Microseconds()) / 1000,
		}, nil
	}

	cold, err := phase("cold", wls)
	if err != nil {
		return nil, err
	}
	// The warm mix interleaves repeats of every workload, round-robin — the
	// repeated-submission arrival pattern the store is built for.
	var warmMix []*workloads.Workload
	for r := 0; r < rounds; r++ {
		warmMix = append(warmMix, wls...)
	}
	warm, err := phase("warm", warmMix)
	if err != nil {
		return nil, err
	}
	return []ServiceCacheRow{cold, warm}, nil
}

// ServiceChaosBench runs the same submission mix through a journaled
// server twice — once behind a pass-through proxy, once behind the
// deterministic fault proxy — with retry-policy clients, measuring the
// cost of riding out the faults and the idempotency bound on optimizer
// work. Faults and retry jitter are seed-deterministic, so the injected
// fault mix is reproducible run to run.
func (h *Harness) ServiceChaosBench(jobs, workers int) ([]ServiceChaosRow, error) {
	if jobs < 1 {
		jobs = 1
	}
	if workers < 1 {
		workers = 2
	}
	wl, err := h.workload("IR")
	if err != nil {
		return nil, err
	}
	profiles := []struct {
		name string
		p    faultproxy.Profile
	}{
		{"clean", faultproxy.Profile{}},
		{"chaos", faultproxy.Profile{
			LatencyProb: 0.2, LatencyMin: time.Millisecond, LatencyMax: 3 * time.Millisecond,
			Reject503Prob: 0.10, ResetProb: 0.05, TruncateProb: 0.05,
		}},
	}
	var rows []ServiceChaosRow
	for _, prof := range profiles {
		row, err := h.serviceChaosPhase(wl, prof.name, prof.p, jobs, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func (h *Harness) serviceChaosPhase(wl *workloads.Workload, name string, prof faultproxy.Profile, jobs, workers int) (ServiceChaosRow, error) {
	dir, err := os.MkdirTemp("", "stubby-bench-chaos-")
	if err != nil {
		return ServiceChaosRow{}, err
	}
	defer os.RemoveAll(dir)
	store, err := stubby.NewPlanStore(filepath.Join(dir, "store"))
	if err != nil {
		return ServiceChaosRow{}, err
	}
	defer store.Close()
	journal, err := stubby.OpenJournal(filepath.Join(dir, "journal"))
	if err != nil {
		return ServiceChaosRow{}, err
	}
	defer journal.Close()
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(h.cfg.Seed),
		stubby.WithParallelism(workers),
		stubby.WithEstimateCache(stubby.NewEstimateCache(0)),
		stubby.WithPlanStore(store),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 20}),
	)
	if err != nil {
		return ServiceChaosRow{}, err
	}
	httpSrv := httptest.NewServer(stubby.NewServer(sess, stubby.WithJournal(journal)))
	defer httpSrv.Close()
	defer sess.Close(context.Background())
	proxy, err := faultproxy.New(strings.TrimPrefix(httpSrv.URL, "http://"), h.cfg.Seed, prof)
	if err != nil {
		return ServiceChaosRow{}, err
	}
	defer proxy.Close()
	client, err := stubby.NewClient(proxy.URL(), stubby.WithRetryPolicy(stubby.RetryPolicy{
		MaxAttempts: 12, BaseDelay: 5 * time.Millisecond,
		MaxDelay: 100 * time.Millisecond, Seed: h.cfg.Seed,
	}))
	if err != nil {
		return ServiceChaosRow{}, err
	}

	ctx := context.Background()
	latencies := make([]float64, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	submitters := workers * 2
	if submitters > jobs {
		submitters = jobs
	}
	next := make(chan int, jobs)
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	start := time.Now()
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				if _, err := client.Optimize(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow}); err != nil {
					errs[i] = err
					return
				}
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServiceChaosRow{}, err
		}
	}
	sort.Float64s(latencies)
	pstats, metrics := proxy.Stats(), client.Metrics()
	return ServiceChaosRow{
		Profile:       name,
		Jobs:          jobs,
		Injected503:   pstats.Injected503,
		Resets:        pstats.Resets,
		Truncations:   pstats.Truncations,
		Retries:       metrics.Retries,
		Resumes:       metrics.Resumes,
		Optimizations: int(store.Stats().Computes),
		WallMS:        float64(wall.Microseconds()) / 1000,
		Throughput:    float64(jobs) / wall.Seconds(),
		P50MS:         percentile(latencies, 0.50),
		P99MS:         percentile(latencies, 0.99),
	}, nil
}

// percentile reads the p-quantile from sorted values, rounding the rank
// up so small samples never understate the tail (nearest-rank method).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p * float64(len(sorted)-1)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// ServiceBenchJSON assembles and writes the report.
func ServiceBenchJSON(path string, h *Harness, rows []ServiceBenchRow, cache []ServiceCacheRow, chaos []ServiceChaosRow, cluster []ServiceClusterRow, jobsPerRow int) error {
	rep := ServiceBenchReport{
		Workload:   "IR",
		SizeFactor: h.cfg.SizeFactor,
		Seed:       h.cfg.Seed,
		JobsPerRow: jobsPerRow,
		Rows:       rows,
		Cache:      cache,
		Chaos:      chaos,
		Cluster:    cluster,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
