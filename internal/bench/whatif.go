package bench

import (
	"bytes"
	"fmt"

	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/whatif/estcache"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// WhatIfRun measures the estimate cache's effect on one workload: the full
// Stubby search runs once without a cache and once against a cache shared
// across the whole table, counting What-if activity both ways and checking
// the transparency contract (identical plans, equal costs) as it goes.
type WhatIfRun struct {
	Workload string
	// UncachedCalls / UncachedComputed are the What-if requests issued and
	// the full monolithic computations run by the cache-off search.
	// Incremental delta estimates count as requests but not computations,
	// so requests exceed computations even without a cache.
	UncachedCalls    uint64
	UncachedComputed uint64
	// CachedRequests / CachedComputed are the same split for the cached
	// search. Requests must equal the uncached search's (caching cannot
	// change the search); the computation difference is the full-estimate
	// work the cache absorbed.
	CachedRequests uint64
	CachedComputed uint64
	// HitRatePct is the share of the uncached search's full computations
	// the cache absorbed: 100 * (UncachedComputed - CachedComputed) /
	// UncachedComputed.
	HitRatePct float64
	// RepeatComputed is the number of full computations when the same
	// workload is optimized a second time against the shared cache — the
	// OptimizeAll amortization case (repeated or overlapping workflows).
	// With sufficient capacity it is zero: the deterministic search
	// replays entirely from the cache.
	RepeatComputed uint64
	// PlansIdentical reports whether cached, uncached, and repeat searches
	// chose byte-identical plans (they must; the differential suite
	// enforces it).
	PlansIdentical bool
	// Makespan is the estimated cost of the (shared) chosen plan.
	Makespan float64
}

// WhatIfCounts runs the cache-on/off comparison over every paper workload
// with one cache shared across the whole sweep, mirroring an OptimizeAll
// fan-out sharing a session cache.
func (h *Harness) WhatIfCounts() ([]WhatIfRun, error) {
	// Sized so the sweep's full working set stays resident; the default
	// capacity targets long-running services where bounding memory matters
	// more than a perfect replay.
	cache := estcache.New(1 << 18)
	var out []WhatIfRun
	for _, abbr := range workloads.Abbrs() {
		wl, err := h.workload(abbr)
		if err != nil {
			return nil, err
		}
		uncached, err := optimizer.New(wl.Cluster, optimizer.Options{Seed: h.cfg.Seed}).
			Optimize(wl.Workflow)
		if err != nil {
			return nil, fmt.Errorf("uncached %s: %w", abbr, err)
		}
		cached, err := optimizer.New(wl.Cluster, optimizer.Options{Seed: h.cfg.Seed, EstimateCache: cache}).
			Optimize(wl.Workflow)
		if err != nil {
			return nil, fmt.Errorf("cached %s: %w", abbr, err)
		}
		repeat, err := optimizer.New(wl.Cluster, optimizer.Options{Seed: h.cfg.Seed, EstimateCache: cache}).
			Optimize(wl.Workflow)
		if err != nil {
			return nil, fmt.Errorf("repeat %s: %w", abbr, err)
		}
		ub, err := planio.Encode(uncached.Plan)
		if err != nil {
			return nil, err
		}
		cb, err := planio.Encode(cached.Plan)
		if err != nil {
			return nil, err
		}
		rb, err := planio.Encode(repeat.Plan)
		if err != nil {
			return nil, err
		}
		run := WhatIfRun{
			Workload:         abbr,
			UncachedCalls:    uncached.WhatIfCalls,
			UncachedComputed: uncached.WhatIfComputed,
			CachedRequests:   cached.WhatIfCalls,
			CachedComputed:   cached.WhatIfComputed,
			RepeatComputed:   repeat.WhatIfComputed,
			PlansIdentical: bytes.Equal(ub, cb) && bytes.Equal(ub, rb) &&
				uncached.EstimatedCost == cached.EstimatedCost &&
				uncached.EstimatedCost == repeat.EstimatedCost,
			Makespan: cached.EstimatedCost,
		}
		if run.UncachedComputed > 0 {
			run.HitRatePct = 100 * float64(run.UncachedComputed-run.CachedComputed) / float64(run.UncachedComputed)
		}
		out = append(out, run)
	}
	return out, nil
}
