package bench

import (
	"strings"
	"testing"
)

func guardReport(wallMS float64, rob []RobustnessRow) OptBenchReport {
	return OptBenchReport{
		Rows: []OptimizerBenchRow{{Workload: "IR", MonolithicMS: wallMS, IncrementalMS: wallMS / 2,
			MonolithicCalls: 100, IncrementalCalls: 100,
			MonolithicFlowCards: 400, IncrementalFlowCards: 200, PlansIdentical: true}},
		Robustness: rob,
		Reuse:      []ReuseRow{goodReuseRow()},
	}
}

func goodReuseRow() ReuseRow {
	return ReuseRow{FamilySeed: 1, Member: 1, Jobs: 5, PlanJobs: 3,
		ReusedSubplans: 1, CatalogHits: 2, CatalogMisses: 3, HitRatio: 0.4,
		BaselineCost: 100, ReuseCost: 80, CostRatio: 1.25}
}

func goodRobRow() RobustnessRow {
	return RobustnessRow{Workload: "IR", Jobs: 4, Samples: 32,
		NominalSec: 100, MeanSec: 120, P95Sec: 140, P99Sec: 150}
}

func TestGuardOptimizerBench(t *testing.T) {
	base := guardReport(1000, []RobustnessRow{goodRobRow()})

	if err := GuardOptimizerBench(guardReport(1000, []RobustnessRow{goodRobRow()}), base); err != nil {
		t.Errorf("identical run rejected: %v", err)
	}
	// Within the slack band.
	if err := GuardOptimizerBench(guardReport(1040, []RobustnessRow{goodRobRow()}), base); err != nil {
		t.Errorf("4%% slower rejected: %v", err)
	}
	// Outside it.
	err := GuardOptimizerBench(guardReport(1200, []RobustnessRow{goodRobRow()}), base)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("20%% regression accepted: %v", err)
	}
	// Missing robustness rows.
	if err := GuardOptimizerBench(guardReport(1000, nil), base); err == nil {
		t.Error("missing robustness rows accepted")
	}
	// Malformed row (p99 below p95).
	bad := goodRobRow()
	bad.P99Sec = bad.P95Sec - 1
	if err := GuardOptimizerBench(guardReport(1000, []RobustnessRow{bad}), base); err == nil {
		t.Error("p99 < p95 accepted")
	}
	// A measured workload with no robustness row (fallback leak).
	other := goodRobRow()
	other.Workload = "SN"
	if err := GuardOptimizerBench(guardReport(1000, []RobustnessRow{other}), base); err == nil {
		t.Error("workload without a robustness row accepted")
	}
	// Empty baseline.
	if err := GuardOptimizerBench(guardReport(1000, []RobustnessRow{goodRobRow()}), OptBenchReport{}); err == nil {
		t.Error("empty baseline accepted")
	}
	// Non-identical plans.
	broken := guardReport(1000, []RobustnessRow{goodRobRow()})
	broken.Rows[0].PlansIdentical = false
	if err := GuardOptimizerBench(broken, base); err == nil {
		t.Error("diverged plans accepted")
	}
	// Deterministic estimator counters drifted from the baseline.
	drift := guardReport(1000, []RobustnessRow{goodRobRow()})
	drift.Rows[0].IncrementalFlowCards += 7
	err = GuardOptimizerBench(drift, base)
	if err == nil || !strings.Contains(err.Error(), "activity drifted") {
		t.Errorf("counter drift accepted: %v", err)
	}

	// Missing reuse rows.
	noReuse := guardReport(1000, []RobustnessRow{goodRobRow()})
	noReuse.Reuse = nil
	err = GuardOptimizerBench(noReuse, base)
	if err == nil || !strings.Contains(err.Error(), "reuse rows") {
		t.Errorf("missing reuse rows accepted: %v", err)
	}
	// A consumer member whose lookups all missed.
	cold := guardReport(1000, []RobustnessRow{goodRobRow()})
	cold.Reuse[0].CatalogHits = 0
	cold.Reuse[0].HitRatio = 0
	err = GuardOptimizerBench(cold, base)
	if err == nil || !strings.Contains(err.Error(), "no catalog hits") {
		t.Errorf("zero hit ratio accepted: %v", err)
	}
	// Hits that never turned into an adopted rewrite.
	stale := guardReport(1000, []RobustnessRow{goodRobRow()})
	stale.Reuse[0].ReusedSubplans = 0
	err = GuardOptimizerBench(stale, base)
	if err == nil || !strings.Contains(err.Error(), "reused no sub-plans") {
		t.Errorf("zero reused sub-plans accepted: %v", err)
	}
	// A reuse plan that did not remove any jobs.
	fat := guardReport(1000, []RobustnessRow{goodRobRow()})
	fat.Reuse[0].PlanJobs = fat.Reuse[0].Jobs
	err = GuardOptimizerBench(fat, base)
	if err == nil || !strings.Contains(err.Error(), "did not shrink") {
		t.Errorf("non-shrinking reuse plan accepted: %v", err)
	}
}
