package bench

import (
	"strings"
	"testing"
)

func guardReport(wallMS float64, rob []RobustnessRow) OptBenchReport {
	return OptBenchReport{
		Rows: []OptimizerBenchRow{{Workload: "IR", MonolithicMS: wallMS, IncrementalMS: wallMS / 2,
			MonolithicCalls: 100, IncrementalCalls: 100,
			MonolithicFlowCards: 400, IncrementalFlowCards: 200, PlansIdentical: true}},
		Robustness: rob,
	}
}

func goodRobRow() RobustnessRow {
	return RobustnessRow{Workload: "IR", Jobs: 4, Samples: 32,
		NominalSec: 100, MeanSec: 120, P95Sec: 140, P99Sec: 150}
}

func TestGuardOptimizerBench(t *testing.T) {
	base := guardReport(1000, []RobustnessRow{goodRobRow()})

	if err := GuardOptimizerBench(guardReport(1000, []RobustnessRow{goodRobRow()}), base); err != nil {
		t.Errorf("identical run rejected: %v", err)
	}
	// Within the slack band.
	if err := GuardOptimizerBench(guardReport(1040, []RobustnessRow{goodRobRow()}), base); err != nil {
		t.Errorf("4%% slower rejected: %v", err)
	}
	// Outside it.
	err := GuardOptimizerBench(guardReport(1200, []RobustnessRow{goodRobRow()}), base)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Errorf("20%% regression accepted: %v", err)
	}
	// Missing robustness rows.
	if err := GuardOptimizerBench(guardReport(1000, nil), base); err == nil {
		t.Error("missing robustness rows accepted")
	}
	// Malformed row (p99 below p95).
	bad := goodRobRow()
	bad.P99Sec = bad.P95Sec - 1
	if err := GuardOptimizerBench(guardReport(1000, []RobustnessRow{bad}), base); err == nil {
		t.Error("p99 < p95 accepted")
	}
	// A measured workload with no robustness row (fallback leak).
	other := goodRobRow()
	other.Workload = "SN"
	if err := GuardOptimizerBench(guardReport(1000, []RobustnessRow{other}), base); err == nil {
		t.Error("workload without a robustness row accepted")
	}
	// Empty baseline.
	if err := GuardOptimizerBench(guardReport(1000, []RobustnessRow{goodRobRow()}), OptBenchReport{}); err == nil {
		t.Error("empty baseline accepted")
	}
	// Non-identical plans.
	broken := guardReport(1000, []RobustnessRow{goodRobRow()})
	broken.Rows[0].PlansIdentical = false
	if err := GuardOptimizerBench(broken, base); err == nil {
		t.Error("diverged plans accepted")
	}
	// Deterministic estimator counters drifted from the baseline.
	drift := guardReport(1000, []RobustnessRow{goodRobRow()})
	drift.Rows[0].IncrementalFlowCards += 7
	err = GuardOptimizerBench(drift, base)
	if err == nil || !strings.Contains(err.Error(), "activity drifted") {
		t.Errorf("counter drift accepted: %v", err)
	}
}
