package bench

import (
	"fmt"
	"time"

	"github.com/stubby-mr/stubby/internal/baselines"
	"github.com/stubby-mr/stubby/internal/gen"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/whatif"
)

// GenRow is one (generated workflow, planner) equivalence check — the CLI
// face of the semantic-equivalence oracle, used to reproduce any failing
// seed a test suite or fuzzer reports (`stubby-bench -gen -seed=N`).
type GenRow struct {
	Seed     int64
	Planner  string
	Jobs     int // input job count
	PlanJobs int // optimized plan's job count
	// EstCost is the What-if estimate of the optimized plan.
	EstCost float64
	// Equivalent is the oracle's verdict: the optimized plan computed the
	// same canonicalized sink outputs as the identity plan.
	Equivalent bool
	// OptimizeMS is the planner's own (real) running time.
	OptimizeMS float64
}

// GenCheck generates `count` cases starting at seed, runs every registered
// planner over each, and applies the equivalence oracle. Failure messages
// (with the reproducing seed and the offending plan's DOT) are returned as
// a separate list so the CLI can print the table first and the forensics
// after; descriptors lists each case's full descriptor for -gen -v style
// inspection by the caller.
func (h *Harness) GenCheck(seed int64, count int) (rows []GenRow, failures []string, descriptors []string, err error) {
	reg := baselines.DefaultRegistry()
	for i := 0; i < count; i++ {
		s := seed + int64(i)
		c := gen.Generate(s, gen.Options{})
		descriptors = append(descriptors, c.Descriptor())
		if err := profile.NewProfiler(c.Cluster, h.cfg.ProfileFraction, s).Annotate(c.Workflow, c.DFS); err != nil {
			return nil, nil, nil, fmt.Errorf("gen seed %d: profiling: %w", s, err)
		}
		subject := c.Subject()
		ref, err := subject.Reference()
		if err != nil {
			return nil, nil, nil, err
		}
		est := whatif.New(c.Cluster)
		for _, spec := range reg.Specs() {
			p := spec.New(c.Cluster, s)
			t0 := time.Now()
			plan, perr := p.Plan(c.Workflow)
			optMS := float64(time.Since(t0).Microseconds()) / 1000
			row := GenRow{Seed: s, Planner: spec.Name, Jobs: len(c.Workflow.Jobs), OptimizeMS: optMS}
			if perr != nil {
				failures = append(failures, fmt.Sprintf("seed %d: planner %s failed: %v", s, spec.Name, perr))
				rows = append(rows, row)
				continue
			}
			row.PlanJobs = len(plan.Jobs)
			if e, eerr := est.Estimate(plan); eerr == nil {
				row.EstCost = e.Makespan
			}
			if oerr := subject.CheckPlan(ref, spec.Name, plan); oerr != nil {
				failures = append(failures, oerr.Error())
			} else {
				row.Equivalent = true
			}
			rows = append(rows, row)
		}
	}
	return rows, failures, descriptors, nil
}
