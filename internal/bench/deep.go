package bench

import (
	"fmt"
	"math/rand"

	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// Deep pipelines: the multi-job regime the paper's Table 1 workloads only
// hint at. Production workflow generators (Pig, Hive, Oozie compositions —
// the systems Stubby sits behind in Figure 2) routinely emit chains of ten
// or more jobs, and that is the regime incremental What-if estimation is
// built for: optimization units cover a small window of the chain, so most
// of each configuration probe's estimate is prefix or unaffected tail. The
// bench harness materializes synthetic N-stage aggregation chains to
// measure that regime alongside the paper workloads.

// DeepPipelineAbbrs lists the synthetic deep-pipeline workloads the
// optimizer benchmark measures in addition to the paper's Table 1 set.
func DeepPipelineAbbrs() []string { return []string{"DP08", "DP12", "DP16"} }

// deepPipelineStages maps a DPnn abbreviation to its stage count.
func deepPipelineStages(abbr string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(abbr, "DP%d", &n); err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// buildDeepPipeline constructs an N-stage aggregation chain: a base event
// set followed by N group-and-sum jobs, each re-keying onto a different
// dimension (stage-dependent modulus), every stage combinable. The chain is
// profiled like the paper workloads and carries a cluster whose virtual
// scale puts it in the multi-hundred-GB cost regime.
func buildDeepPipeline(stages int, sizeFactor float64, seed int64) (*workloads.Workload, error) {
	if sizeFactor <= 0 {
		sizeFactor = 1
	}
	numRecords := int(60000 * sizeFactor)
	if numRecords < 100 {
		numRecords = 100
	}
	rng := rand.New(rand.NewSource(seed ^ 0xdeeb))
	pairs := make([]keyval.Pair, numRecords)
	for i := range pairs {
		pairs[i] = keyval.Pair{
			Key:   keyval.T(int64(rng.Intn(50000))),
			Value: keyval.T(int64(1), rng.Float64()*100),
		}
	}
	dfs := mrsim.NewDFS()
	if err := dfs.Ingest("dp_events", pairs, mrsim.IngestSpec{
		NumPartitions: 24,
		KeyFields:     []string{"k"},
		Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}},
	}); err != nil {
		return nil, err
	}

	sum := func(key keyval.Tuple, values []keyval.Tuple, emit wf.Emit) {
		var n int64
		var total float64
		for _, v := range values {
			n += v[0].(int64)
			total += v[1].(float64)
		}
		emit(key, keyval.T(n, total))
	}
	w := &wf.Workflow{
		Name: fmt.Sprintf("deep-pipeline-%d", stages),
		Datasets: []*wf.Dataset{
			{ID: "dp_events", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"n", "total"}},
		},
	}
	in := "dp_events"
	for s := 0; s < stages; s++ {
		// Each stage re-keys onto its own dimension so consecutive stages
		// group differently (mirroring rollup chains: by user, by page, by
		// region, ...); cardinalities cycle so intermediate volumes stay
		// non-trivial along the whole chain.
		card := int64([]int{4096, 2048, 6144, 3072, 5120, 1536, 7168, 2560}[s%8])
		mult := int64(2*s + 3)
		id := fmt.Sprintf("S%02d", s+1)
		out := fmt.Sprintf("dp_%02d", s+1)
		rekey := func(card, mult int64) wf.MapFn {
			return func(key, value keyval.Tuple, emit wf.Emit) {
				emit(keyval.T((key[0].(int64)*mult)%card), value)
			}
		}(card, mult)
		combine := wf.ReduceStage("C_"+id, sum, nil, 4e-7)
		w.Jobs = append(w.Jobs, &wf.Job{
			ID: id, Config: wf.DefaultConfig(), Origin: []string{id},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: in,
				Stages: []wf.Stage{wf.MapStage("M_"+id, rekey, 8e-7)},
				KeyIn:  []string{"k"}, KeyOut: []string{"k"},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: out, Combiner: &combine,
				Stages: []wf.Stage{wf.ReduceStage("R_"+id, sum, nil, 6e-7)},
				KeyIn:  []string{"k"}, KeyOut: []string{"k"},
			}},
		})
		w.Datasets = append(w.Datasets, &wf.Dataset{ID: out, KeyFields: []string{"k"}})
		in = out
	}

	cluster := mrsim.DefaultCluster()
	cluster.VirtualScale = 4000 / sizeFactor
	return &workloads.Workload{
		Abbr:     fmt.Sprintf("DP%02d", stages),
		Title:    fmt.Sprintf("Deep Pipeline (%d stages)", stages),
		Workflow: w,
		DFS:      dfs,
		Cluster:  cluster,
	}, nil
}

// deepWorkload returns a built, profiled deep pipeline (cached alongside
// the paper workloads).
func (h *Harness) deepWorkload(abbr string) (*workloads.Workload, error) {
	if p, ok := h.cache[abbr]; ok {
		return p.wl, nil
	}
	stages, ok := deepPipelineStages(abbr)
	if !ok {
		return nil, fmt.Errorf("bench: unknown deep pipeline %q", abbr)
	}
	wl, err := buildDeepPipeline(stages, h.cfg.SizeFactor, h.cfg.Seed)
	if err != nil {
		return nil, err
	}
	prof := profile.NewProfiler(wl.Cluster, h.cfg.ProfileFraction, h.cfg.Seed+17)
	if err := prof.Annotate(wl.Workflow, wl.DFS); err != nil {
		return nil, err
	}
	h.cache[abbr] = &prepared{wl: wl}
	return wl, nil
}
