package bench

import (
	"fmt"
	"os"

	"github.com/stubby-mr/stubby/internal/catalog"
	"github.com/stubby-mr/stubby/internal/gen"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/wf"
)

// ReuseRow measures the sub-plan reuse catalog on one member of an
// overlapping workflow family (gen.Family): member 0 runs to completion and
// publishes its materialized intermediates; each later member — same prefix,
// different suffix — is then optimized against that catalog, once without
// and once with reuse enabled.
type ReuseRow struct {
	// FamilySeed identifies the family; Member is the sibling's index
	// (members >= 1 only: member 0 is the producer, not a consumer).
	FamilySeed int64 `json:"family_seed"`
	Member     int   `json:"member"`
	// Jobs is the member's input job count; PlanJobs the job count of the
	// reuse-enabled optimized plan (reuse removes whole closures).
	Jobs     int `json:"jobs"`
	PlanJobs int `json:"plan_jobs"`
	// ReusedSubplans counts rooted sub-DAGs the pre-pass replaced with
	// scans of stored results.
	ReusedSubplans int `json:"reused_subplans"`
	// CatalogHits / CatalogMisses are this optimization's Lookup deltas;
	// HitRatio is hits over total lookups.
	CatalogHits   uint64  `json:"catalog_hits"`
	CatalogMisses uint64  `json:"catalog_misses"`
	HitRatio      float64 `json:"hit_ratio"`
	// BaselineCost / ReuseCost are the estimated makespans of the plans
	// chosen without and with the catalog attached; CostRatio is
	// baseline over reuse (>= 1 means reuse helped or broke even).
	BaselineCost float64 `json:"baseline_cost"`
	ReuseCost    float64 `json:"reuse_cost"`
	CostRatio    float64 `json:"cost_ratio"`
}

// ReuseBenchSeeds are the family seeds the reuse benchmark measures and
// ReuseBenchMembers how many siblings each family has (member 0 plus
// ReuseBenchMembers-1 consumers). ReuseBenchRRSEvals caps the configuration
// search so rows measure the reuse pre-pass, not RRS wall time.
var ReuseBenchSeeds = []int64{1, 2, 3, 5, 8}

const (
	ReuseBenchMembers  = 3
	ReuseBenchRRSEvals = 40
)

// publishCase mirrors the session's run-completion hook: every non-empty
// intermediate dataset the run materialized is published under its producing
// sub-DAG's rooted fingerprint.
func publishCase(cat *catalog.Store, w *wf.Workflow, dfs *mrsim.DFS) error {
	h := wf.NewHasher()
	for _, d := range w.Datasets {
		if d.Base || w.Producer(d.ID) == nil {
			continue
		}
		fp, ok := h.Subplan(w, d.ID)
		if !ok {
			continue
		}
		stored, ok := dfs.Get(d.ID)
		if !ok || stored.Records() == 0 || stored.Bytes() == 0 {
			continue
		}
		layout, err := planio.EncodeLayout(stored.Layout)
		if err != nil {
			return err
		}
		total := stored.Bytes()
		var maxPart int64
		for _, p := range stored.Parts {
			if p.Bytes > maxPart {
				maxPart = p.Bytes
			}
		}
		if err := cat.Put(catalog.Entry{
			Fingerprint:  fp.String(),
			Dataset:      d.ID,
			Workflow:     w.Name,
			Jobs:         len(wf.ProducingJobs(w, d.ID)),
			Records:      float64(stored.Records()),
			Bytes:        float64(total),
			Partitions:   len(stored.Parts),
			MaxPartShare: float64(maxPart) / float64(total),
			KeyFields:    d.KeyFields,
			ValueFields:  d.ValueFields,
			Layout:       layout,
		}); err != nil {
			return err
		}
	}
	return nil
}

// ReuseBench measures cross-workflow sub-plan reuse over generator-produced
// overlapping families. For each seed: member 0 is profiled, executed on the
// simulated cluster, and its intermediates published to a fresh on-disk
// catalog; members 1..ReuseBenchMembers-1 are profiled identically (shared
// prefixes profile identically, so their rooted fingerprints collide with
// the published ones) and optimized twice — without and with the catalog.
func (h *Harness) ReuseBench(seeds []int64) ([]ReuseRow, error) {
	if seeds == nil {
		seeds = ReuseBenchSeeds
	}
	var out []ReuseRow
	for _, seed := range seeds {
		rows, err := h.reuseFamily(seed)
		if err != nil {
			return nil, fmt.Errorf("reuse family %d: %w", seed, err)
		}
		out = append(out, rows...)
	}
	return out, nil
}

func (h *Harness) reuseFamily(seed int64) ([]ReuseRow, error) {
	fam := gen.Family(seed, ReuseBenchMembers, gen.Options{})
	// One profiler seed per family: siblings share their prefix byte for
	// byte, so profiling them with the same sampling seed reproduces the
	// same prefix annotations — which is what makes the rooted
	// fingerprints collide across members.
	for _, c := range fam {
		prof := profile.NewProfiler(c.Cluster, h.cfg.ProfileFraction, seed)
		if err := prof.Annotate(c.Workflow, c.DFS); err != nil {
			return nil, err
		}
	}

	dir, err := os.MkdirTemp("", "stubby-reuse-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cat, err := catalog.Open(dir)
	if err != nil {
		return nil, err
	}
	defer cat.Close()

	// Member 0 runs to completion; its materialized intermediates become
	// the catalog the siblings optimize against.
	runDFS := fam[0].DFS.Clone()
	if _, err := mrsim.NewEngine(fam[0].Cluster, runDFS).RunWorkflow(fam[0].Workflow); err != nil {
		return nil, err
	}
	if err := publishCase(cat, fam[0].Workflow, runDFS); err != nil {
		return nil, err
	}

	var out []ReuseRow
	for m := 1; m < len(fam); m++ {
		c := fam[m]
		base, err := optimizer.New(c.Cluster, optimizer.Options{
			Seed: h.cfg.Seed, RRSEvals: ReuseBenchRRSEvals,
		}).Optimize(c.Workflow)
		if err != nil {
			return nil, err
		}
		before := cat.Stats()
		res, err := optimizer.New(c.Cluster, optimizer.Options{
			Seed: h.cfg.Seed, RRSEvals: ReuseBenchRRSEvals, ReuseCatalog: cat,
		}).Optimize(c.Workflow)
		if err != nil {
			return nil, err
		}
		after := cat.Stats()
		row := ReuseRow{
			FamilySeed:     seed,
			Member:         m,
			Jobs:           len(c.Workflow.Jobs),
			PlanJobs:       len(res.Plan.Jobs),
			ReusedSubplans: res.ReusedSubplans,
			CatalogHits:    after.Hits - before.Hits,
			CatalogMisses:  after.Misses - before.Misses,
			BaselineCost:   base.EstimatedCost,
			ReuseCost:      res.EstimatedCost,
		}
		if total := row.CatalogHits + row.CatalogMisses; total > 0 {
			row.HitRatio = float64(row.CatalogHits) / float64(total)
		}
		if row.ReuseCost > 0 {
			row.CostRatio = row.BaselineCost / row.ReuseCost
		}
		out = append(out, row)
	}
	return out, nil
}
