package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/stubby-mr/stubby/internal/baselines"
	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/trans"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// ---------------------------------------------------------------- Table 1 --

// Table1Row is one workload inventory line.
type Table1Row struct {
	Abbr, Title string
	PaperGB     float64
	// Records/Partitions are the materialized base-data figures; VirtualGB
	// is what they represent under the workload's cluster scale.
	Records    int64
	Partitions int
	VirtualGB  float64
	Jobs       int
}

// Table1 regenerates the workload inventory (paper Table 1).
func (h *Harness) Table1() ([]Table1Row, error) {
	var out []Table1Row
	for _, abbr := range workloads.Abbrs() {
		wl, err := h.workload(abbr)
		if err != nil {
			return nil, err
		}
		var records int64
		var bytes float64
		parts := 0
		for _, id := range wl.DFS.IDs() {
			stored, _ := wl.DFS.Get(id)
			records += stored.Records()
			bytes += float64(stored.Bytes())
			parts += len(stored.Parts)
		}
		out = append(out, Table1Row{
			Abbr: abbr, Title: wl.Title, PaperGB: wl.PaperGB,
			Records: records, Partitions: parts,
			VirtualGB: bytes * wl.Cluster.VirtualScale / 1e9,
			Jobs:      len(wl.Workflow.Jobs),
		})
	}
	return out, nil
}

// ---------------------------------------------------------------- Figure 5 --

// Fig5Row is one bar of Figure 5: the speedup of applying a packing
// transformation relative to not applying it, for one data regime.
type Fig5Row struct {
	Transformation string // "intra-vertical" or "horizontal"
	Case           string // "improvement" or "degradation"
	Unpacked       float64
	Packed         float64
	Speedup        float64 // Unpacked / Packed
}

// Figure5 reproduces the motivation experiment: vertical and horizontal
// packing each shown in a regime where they help and one where they hurt
// (Section 3.1/3.3, Figure 5).
func (h *Harness) Figure5() ([]Fig5Row, error) {
	var out []Fig5Row
	// Intra-job vertical packing on a none-to-one subgraph. The input
	// layout satisfies the consumer's grouping either way; packing
	// eliminates the shuffle but pins map-side parallelism to the input
	// partition count.
	vert := func(caseName string, parts int, cpu float64) error {
		un, packed, err := h.fig5Vertical(parts, cpu)
		if err != nil {
			return err
		}
		out = append(out, Fig5Row{"intra-vertical", caseName, un, packed, un / packed})
		return nil
	}
	// Improvement: plenty of pre-sorted partitions -> aligned map tasks
	// still fill the cluster and the whole shuffle disappears.
	if err := vert("improvement", 120, 0.5e-6); err != nil {
		return nil, err
	}
	// Degradation: few coarse partitions -> the packed plan concentrates
	// all compute on a handful of aligned map tasks while the unpacked
	// plan fans out over the whole cluster.
	if err := vert("degradation", 16, 0.5e-6); err != nil {
		return nil, err
	}
	// Horizontal packing of two same-input aggregates.
	horiz := func(caseName string, records int, cpu float64, gb float64) error {
		un, packed, err := h.fig5Horizontal(records, cpu, gb)
		if err != nil {
			return err
		}
		out = append(out, Fig5Row{"horizontal", caseName, un, packed, un / packed})
		return nil
	}
	// Improvement: a very large scan-bound input is read once not twice.
	if err := horiz("improvement", 60000, 0.3e-6, 500); err != nil {
		return nil, err
	}
	// Degradation: small compute-bound jobs the cluster could have run
	// concurrently (the Post-processing Jobs situation).
	if err := horiz("degradation", 8000, 30e-6, 4); err != nil {
		return nil, err
	}
	return out, nil
}

func fig5Cluster(gb float64, bytes float64) *mrsim.Cluster {
	c := mrsim.DefaultCluster()
	if bytes > 0 {
		c.VirtualScale = gb * 1e9 / bytes
	}
	return c
}

// fig5Vertical builds base(partitioned+sorted on k) -> J(group-sum on k)
// and times the job with and without intra-job vertical packing.
func (h *Harness) fig5Vertical(parts int, cpu float64) (unpacked, packed float64, err error) {
	rng := rand.New(rand.NewSource(h.cfg.Seed ^ 0xf16))
	n := int(float64(40000) * h.cfg.SizeFactor * 4)
	pairs := make([]keyval.Pair, n)
	for i := range pairs {
		pairs[i] = keyval.Pair{Key: keyval.T(int64(rng.Intn(n / 4))), Value: keyval.T(rng.Float64())}
	}
	mkDFS := func() (*mrsim.DFS, error) {
		dfs := mrsim.NewDFS()
		err := dfs.Ingest("base", pairs, mrsim.IngestSpec{
			NumPartitions: parts,
			KeyFields:     []string{"k"},
			Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}, SortFields: []string{"k"}},
		})
		return dfs, err
	}
	sum := wf.ReduceStage("R", func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
		var s float64
		for _, v := range vs {
			s += v[0].(float64)
		}
		emit(k, keyval.T(s))
	}, nil, cpu)
	job := &wf.Job{
		ID: "J", Config: wf.DefaultConfig(), Origin: []string{"J"},
		MapBranches: []wf.MapBranch{{
			Tag: 0, Input: "base",
			Stages: []wf.Stage{wf.MapStage("M", func(k, v keyval.Tuple, emit wf.Emit) { emit(k, v) }, cpu)},
			KeyIn:  []string{"k"}, ValIn: []string{"v"},
			KeyOut: []string{"k"}, ValOut: []string{"v"},
		}},
		ReduceGroups: []wf.ReduceGroup{{
			Tag: 0, Output: "out",
			Stages: []wf.Stage{sum},
			KeyIn:  []string{"k"}, ValIn: []string{"v"},
			KeyOut: []string{"k"}, ValOut: []string{"sum"},
		}},
	}
	w := &wf.Workflow{
		Name: "fig5v",
		Jobs: []*wf.Job{job},
		Datasets: []*wf.Dataset{
			{ID: "base", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"v"},
				Layout: wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}, SortFields: []string{"k"}}},
			{ID: "out"},
		},
	}
	dfs, err := mkDFS()
	if err != nil {
		return 0, 0, err
	}
	cluster := fig5Cluster(100, float64(keyval.PairsSize(pairs)))
	// Tune the unpacked plan's reducer count to a sensible production
	// setting so the comparison is fair.
	w.Job("J").Config.NumReduceTasks = cluster.TotalReduceSlots() * 9 / 10
	repA, err := mrsim.NewEngine(cluster, dfs).RunWorkflow(w)
	if err != nil {
		return 0, 0, err
	}
	packedPlan, err := trans.IntraVertical(w, "J")
	if err != nil {
		return 0, 0, err
	}
	dfs2, err := mkDFS()
	if err != nil {
		return 0, 0, err
	}
	repB, err := mrsim.NewEngine(cluster, dfs2).RunWorkflow(packedPlan)
	if err != nil {
		return 0, 0, err
	}
	return repA.Makespan, repB.Makespan, nil
}

// fig5Horizontal builds base -> {A, B} (two filter+group aggregates) and
// times them separately versus horizontally packed.
func (h *Harness) fig5Horizontal(records int, cpu float64, gb float64) (unpacked, packed float64, err error) {
	rng := rand.New(rand.NewSource(h.cfg.Seed ^ 0xf17))
	pairs := make([]keyval.Pair, records)
	for i := range pairs {
		pairs[i] = keyval.Pair{Key: keyval.T(int64(rng.Intn(500))), Value: keyval.T(rng.Float64(), rng.Float64())}
	}
	mkDFS := func() (*mrsim.DFS, error) {
		dfs := mrsim.NewDFS()
		err := dfs.Ingest("base", pairs, mrsim.IngestSpec{
			NumPartitions: 12,
			KeyFields:     []string{"k"},
			Layout:        wf.Layout{PartType: keyval.HashPartition, PartFields: []string{"k"}},
		})
		return dfs, err
	}
	agg := func(id, out string, idx int) *wf.Job {
		// Filtering consumers (the paper's "filtering, grouping, and
		// aggregation"): each keeps a disjoint ~5% slice, so the scan
		// dominates and sharing it is the prize.
		lo := int64(idx * 25)
		hi := lo + 25
		return &wf.Job{
			ID: id, Config: wf.DefaultConfig(), Origin: []string{id},
			MapBranches: []wf.MapBranch{{
				Tag: 0, Input: "base",
				Stages: []wf.Stage{wf.MapStage("M_"+id, func(k, v keyval.Tuple, emit wf.Emit) {
					if x := k[0].(int64); x >= lo && x < hi {
						emit(k, keyval.T(v[idx]))
					}
				}, cpu)},
				KeyIn: []string{"k"}, ValIn: []string{"x", "y"},
				KeyOut: []string{"k"}, ValOut: []string{"v"},
			}},
			ReduceGroups: []wf.ReduceGroup{{
				Tag: 0, Output: out,
				Stages: []wf.Stage{wf.ReduceStage("R_"+id, func(k keyval.Tuple, vs []keyval.Tuple, emit wf.Emit) {
					var s float64
					for _, v := range vs {
						s += v[0].(float64)
					}
					emit(k, keyval.T(s/float64(len(vs))))
				}, nil, cpu)},
				KeyIn: []string{"k"}, ValIn: []string{"v"},
				KeyOut: []string{"k"}, ValOut: []string{"avg"},
			}},
		}
	}
	w := &wf.Workflow{
		Name: "fig5h",
		Jobs: []*wf.Job{agg("A", "outA", 0), agg("B", "outB", 1)},
		Datasets: []*wf.Dataset{
			{ID: "base", Base: true, KeyFields: []string{"k"}, ValueFields: []string{"x", "y"}},
			{ID: "outA"}, {ID: "outB"},
		},
	}
	cluster := fig5Cluster(gb, float64(keyval.PairsSize(pairs)))
	for _, j := range w.Jobs {
		j.Config.NumReduceTasks = cluster.TotalReduceSlots() / 4
	}
	dfs, err := mkDFS()
	if err != nil {
		return 0, 0, err
	}
	repA, err := mrsim.NewEngine(cluster, dfs).RunWorkflow(w)
	if err != nil {
		return 0, 0, err
	}
	packedPlan, err := trans.Horizontal(w, []string{"A", "B"}, true)
	if err != nil {
		return 0, 0, err
	}
	// Give the packed job the combined reducer budget so the comparison
	// isolates the packing decision, not a reducer-count artifact.
	packedPlan.Jobs[0].Config.NumReduceTasks = cluster.TotalReduceSlots() / 2
	dfs2, err := mkDFS()
	if err != nil {
		return 0, 0, err
	}
	repB, err := mrsim.NewEngine(cluster, dfs2).RunWorkflow(packedPlan)
	if err != nil {
		return 0, 0, err
	}
	return repA.Makespan, repB.Makespan, nil
}

// --------------------------------------------------------- Figures 11 & 12 --

// Figure11 measures Stubby and its transformation groups in isolation
// against the Baseline on all eight workflows.
func (h *Harness) Figure11() (map[string][]PlannerRun, error) {
	return h.compareAll([]string{"Stubby", "Vertical", "Horizontal"})
}

// Figure12 measures Stubby against the state-of-the-art comparators.
func (h *Harness) Figure12() (map[string][]PlannerRun, error) {
	return h.compareAll([]string{"Stubby", "Starfish", "YSmart", "MRShare"})
}

func (h *Harness) compareAll(names []string) (map[string][]PlannerRun, error) {
	out := make(map[string][]PlannerRun)
	for _, abbr := range workloads.Abbrs() {
		runs, err := h.ComparePlanners(abbr, names)
		if err != nil {
			return nil, err
		}
		out[abbr] = runs
	}
	return out, nil
}

// ---------------------------------------------------------------- Figure 13 --

// Fig13Row is one workload's optimization overhead.
type Fig13Row struct {
	Workload string
	// OptimizeMS is Stubby's real optimization time in milliseconds.
	OptimizeMS float64
	// WorkflowSec is the Baseline plan's simulated running time.
	WorkflowSec float64
	// OverheadPct is OptimizeMS/1000 over WorkflowSec, in percent. (The
	// optimizer runs on the host clock while workflows run on the
	// simulated clock; the paper's "small relative overhead" shape is
	// preserved, see EXPERIMENTS.md.)
	OverheadPct float64
}

// Figure13 measures Stubby's optimization efficiency on all workflows.
func (h *Harness) Figure13() ([]Fig13Row, error) {
	var out []Fig13Row
	for _, abbr := range workloads.Abbrs() {
		wl, err := h.workload(abbr)
		if err != nil {
			return nil, err
		}
		base, err := baselines.Baseline{Cluster: wl.Cluster}.Plan(wl.Workflow)
		if err != nil {
			return nil, err
		}
		baseTime, err := runPlan(wl, base)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := optimizer.New(wl.Cluster, optimizer.Options{Seed: h.cfg.Seed}).Optimize(wl.Workflow); err != nil {
			return nil, err
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		out = append(out, Fig13Row{
			Workload:    abbr,
			OptimizeMS:  ms,
			WorkflowSec: baseTime,
			OverheadPct: ms / 1000 / baseTime * 100,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------- Figure 14 --

// Fig14Point is one subplan of the deep-dive optimization unit.
type Fig14Point struct {
	Description   string
	EstimatedCost float64
	ActualCost    float64
	// EstimatedNorm/ActualNorm are normalized to the unit's worst subplan.
	EstimatedNorm, ActualNorm float64
}

// Figure14 drills into the first optimization unit of the Information
// Retrieval workflow: every enumerated subplan is configured by RRS, costed
// by the What-if engine, and then actually executed, yielding the
// estimated-versus-actual scatter.
func (h *Harness) Figure14() ([]Fig14Point, error) {
	wl, err := h.workload("IR")
	if err != nil {
		return nil, err
	}
	res, err := optimizer.New(wl.Cluster, optimizer.Options{
		Seed: h.cfg.Seed, KeepSubplans: true,
	}).Optimize(wl.Workflow)
	if err != nil {
		return nil, err
	}
	if len(res.Units) == 0 {
		return nil, fmt.Errorf("bench: no optimization units recorded")
	}
	unit := res.Units[0]
	var out []Fig14Point
	maxEst, maxAct := 0.0, 0.0
	for _, sp := range unit.Subplans {
		if sp.Plan == nil {
			continue
		}
		actual, err := runPlan(wl, sp.Plan)
		if err != nil {
			return nil, fmt.Errorf("bench: subplan %q failed: %w", sp.Description, err)
		}
		p := Fig14Point{Description: sp.Description, EstimatedCost: sp.Cost, ActualCost: actual}
		out = append(out, p)
		if sp.Cost > maxEst {
			maxEst = sp.Cost
		}
		if actual > maxAct {
			maxAct = actual
		}
	}
	for i := range out {
		if maxEst > 0 {
			out[i].EstimatedNorm = out[i].EstimatedCost / maxEst
		}
		if maxAct > 0 {
			out[i].ActualNorm = out[i].ActualCost / maxAct
		}
	}
	return out, nil
}
