package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/whatif"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// OptimizerBenchRow measures the incremental What-if estimator's effect on
// one workload: the full Stubby search runs with incremental estimation
// forced off (every configuration probe re-estimates the whole workflow
// monolithically) and on (probes delta-estimate only the affected cone),
// recording wall-clock and estimator activity both ways and checking the
// equivalence contract (identical plans, equal costs) as it goes.
type OptimizerBenchRow struct {
	Workload string `json:"workload"`
	// Jobs is the input workflow's job count.
	Jobs int `json:"jobs"`
	// MonolithicMS / IncrementalMS are optimize wall-clock times (best of
	// OptimizerBenchRuns attempts, to damp scheduler noise).
	MonolithicMS  float64 `json:"monolithic_ms"`
	IncrementalMS float64 `json:"incremental_ms"`
	// Calls / Computed / FlowCards pairs split estimator activity per mode:
	// requests issued, full monolithic estimates run, and per-job flow
	// computations performed.
	MonolithicCalls      uint64 `json:"monolithic_whatif_calls"`
	MonolithicComputed   uint64 `json:"monolithic_whatif_computed"`
	MonolithicFlowCards  uint64 `json:"monolithic_flow_cards"`
	IncrementalCalls     uint64 `json:"incremental_whatif_calls"`
	IncrementalComputed  uint64 `json:"incremental_whatif_computed"`
	IncrementalFlowCards uint64 `json:"incremental_flow_cards"`
	// WallSpeedup is MonolithicMS / IncrementalMS; FlowCardRatio is
	// MonolithicFlowCards / IncrementalFlowCards.
	WallSpeedup   float64 `json:"wall_speedup"`
	FlowCardRatio float64 `json:"flow_card_ratio"`
	// PlansIdentical reports whether both modes chose byte-identical plans
	// with equal estimated costs (they must — incremental estimation is
	// bit-transparent).
	PlansIdentical bool `json:"plans_identical"`
}

// OptimizerBenchRuns is how many times each (workload, mode) optimization
// repeats; rows report the fastest attempt.
const OptimizerBenchRuns = 3

// OptimizerBench runs the incremental-vs-monolithic comparison over the
// given workloads (nil means every paper workload).
func (h *Harness) OptimizerBench(abbrs []string) ([]OptimizerBenchRow, error) {
	if abbrs == nil {
		abbrs = workloads.Abbrs()
	}
	var out []OptimizerBenchRow
	for _, abbr := range abbrs {
		var wl *workloads.Workload
		var err error
		if _, deep := deepPipelineStages(abbr); deep {
			wl, err = h.deepWorkload(abbr)
		} else {
			wl, err = h.workload(abbr)
		}
		if err != nil {
			return nil, err
		}
		run := func(disable bool) (*optimizer.Result, float64, error) {
			best := 0.0
			var res *optimizer.Result
			for i := 0; i < OptimizerBenchRuns; i++ {
				opt := optimizer.New(wl.Cluster, optimizer.Options{
					Seed: h.cfg.Seed, DisableIncremental: disable,
				})
				t0 := time.Now()
				r, err := opt.Optimize(wl.Workflow)
				ms := float64(time.Since(t0).Microseconds()) / 1000
				if err != nil {
					return nil, 0, err
				}
				if res == nil || ms < best {
					best = ms
					res = r
				}
			}
			return res, best, nil
		}
		mono, monoMS, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("monolithic %s: %w", abbr, err)
		}
		inc, incMS, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("incremental %s: %w", abbr, err)
		}
		mb, err := planio.Encode(mono.Plan)
		if err != nil {
			return nil, err
		}
		ib, err := planio.Encode(inc.Plan)
		if err != nil {
			return nil, err
		}
		row := OptimizerBenchRow{
			Workload:             abbr,
			Jobs:                 len(wl.Workflow.Jobs),
			MonolithicMS:         monoMS,
			IncrementalMS:        incMS,
			MonolithicCalls:      mono.WhatIfCalls,
			MonolithicComputed:   mono.WhatIfComputed,
			MonolithicFlowCards:  mono.FlowCards,
			IncrementalCalls:     inc.WhatIfCalls,
			IncrementalComputed:  inc.WhatIfComputed,
			IncrementalFlowCards: inc.FlowCards,
			PlansIdentical: bytes.Equal(mb, ib) &&
				mono.EstimatedCost == inc.EstimatedCost,
		}
		if incMS > 0 {
			row.WallSpeedup = monoMS / incMS
		}
		if inc.FlowCards > 0 {
			row.FlowCardRatio = float64(mono.FlowCards) / float64(inc.FlowCards)
		}
		out = append(out, row)
	}
	return out, nil
}

// RobustnessRow reports one workload's optimized plan under perturbation:
// the Monte-Carlo makespan distribution of the chosen plan's scheduling
// layer under the standard fault profile (task failures, stragglers,
// heterogeneous node classes, speculation).
type RobustnessRow struct {
	Workload string `json:"workload"`
	Jobs     int    `json:"jobs"`
	Samples  int    `json:"samples"`
	// NominalSec is the fault-free estimated makespan of the chosen plan;
	// the distribution columns are perturbed replays of the same plan.
	NominalSec float64 `json:"nominal_sec"`
	MeanSec    float64 `json:"mean_sec"`
	P95Sec     float64 `json:"p95_sec"`
	P99Sec     float64 `json:"p99_sec"`
	// FailedOut counts samples in which some task exhausted its retry bound.
	FailedOut int `json:"failed_out"`
}

// RobustnessBenchSamples is the per-workload Monte-Carlo sample count and
// RobustnessBenchSeed the base perturbation seed, fixed so rows are
// reproducible across runs and machines.
const (
	RobustnessBenchSamples = 32
	RobustnessBenchSeed    = 42
)

// RobustnessBench optimizes each workload once with robustness scoring
// attached (standard fault profile) and reports the chosen plan's makespan
// distribution. Workloads in the fallback estimation regime produce no row.
func (h *Harness) RobustnessBench(abbrs []string) ([]RobustnessRow, error) {
	if abbrs == nil {
		abbrs = workloads.Abbrs()
	}
	var out []RobustnessRow
	for _, abbr := range abbrs {
		var wl *workloads.Workload
		var err error
		if _, deep := deepPipelineStages(abbr); deep {
			wl, err = h.deepWorkload(abbr)
		} else {
			wl, err = h.workload(abbr)
		}
		if err != nil {
			return nil, err
		}
		opt := optimizer.New(wl.Cluster, optimizer.Options{
			Seed: h.cfg.Seed,
			Robustness: &whatif.RobustnessOptions{
				Model:   mrsim.StandardFaultProfile(RobustnessBenchSeed),
				Samples: RobustnessBenchSamples,
			},
		})
		res, err := opt.Optimize(wl.Workflow)
		if err != nil {
			return nil, fmt.Errorf("robustness %s: %w", abbr, err)
		}
		if res.Robustness == nil {
			continue
		}
		out = append(out, RobustnessRow{
			Workload:   abbr,
			Jobs:       len(res.Plan.Jobs),
			Samples:    res.Robustness.Samples,
			NominalSec: res.EstimatedCost,
			MeanSec:    res.Robustness.Mean,
			P95Sec:     res.Robustness.P95,
			P99Sec:     res.Robustness.P99,
			FailedOut:  res.Robustness.FailedOut,
		})
	}
	return out, nil
}

// MultiJobThreshold is the job count at which a workload counts as
// multi-job for the optimizer benchmark's aggregate (the regime incremental
// estimation targets: optimization units are proper subsets of the plan).
const MultiJobThreshold = 4

// OptBenchAggregate summarizes a set of OptimizerBenchRows.
type OptBenchAggregate struct {
	Workloads []string `json:"workloads"`
	// WallSpeedup is total monolithic wall-clock over total incremental
	// wall-clock; GeomeanWallSpeedup is the per-workload geometric mean.
	WallSpeedup        float64 `json:"wall_speedup"`
	GeomeanWallSpeedup float64 `json:"geomean_wall_speedup"`
	// FlowCardRatio is total monolithic flow computations over total
	// incremental flow computations.
	FlowCardRatio float64 `json:"flow_card_ratio"`
	// PlansIdentical is the conjunction of the rows' equivalence checks.
	PlansIdentical bool `json:"plans_identical"`
}

// OptBenchReport is the JSON document stubby-bench -bench-optimizer emits
// (BENCH_optimizer.json) so future changes have a perf trajectory to
// compare against.
type OptBenchReport struct {
	SizeFactor float64             `json:"size_factor"`
	Seed       int64               `json:"seed"`
	Rows       []OptimizerBenchRow `json:"rows"`
	All        OptBenchAggregate   `json:"all"`
	// MultiJob aggregates the workloads with >= MultiJobThreshold jobs.
	MultiJob OptBenchAggregate `json:"multi_job"`
	// Robustness holds per-workload makespan distributions of the chosen
	// plans under the standard fault profile (see RobustnessBench).
	Robustness []RobustnessRow `json:"robustness"`
	// Reuse holds cross-workflow sub-plan reuse hit rates over the
	// generator-produced overlapping families (see ReuseBench).
	Reuse []ReuseRow `json:"reuse,omitempty"`
}

func aggregate(rows []OptimizerBenchRow) OptBenchAggregate {
	agg := OptBenchAggregate{PlansIdentical: true}
	var monoMS, incMS float64
	var monoCards, incCards uint64
	logSum := 0.0
	for _, r := range rows {
		agg.Workloads = append(agg.Workloads, r.Workload)
		monoMS += r.MonolithicMS
		incMS += r.IncrementalMS
		monoCards += r.MonolithicFlowCards
		incCards += r.IncrementalFlowCards
		if r.WallSpeedup > 0 {
			logSum += math.Log(r.WallSpeedup)
		}
		agg.PlansIdentical = agg.PlansIdentical && r.PlansIdentical
	}
	if incMS > 0 {
		agg.WallSpeedup = monoMS / incMS
	}
	if incCards > 0 {
		agg.FlowCardRatio = float64(monoCards) / float64(incCards)
	}
	if len(rows) > 0 {
		agg.GeomeanWallSpeedup = math.Exp(logSum / float64(len(rows)))
	}
	return agg
}

// OptimizerBenchReport assembles the JSON report from measured rows.
func OptimizerBenchReport(rows []OptimizerBenchRow, sizeFactor float64, seed int64) OptBenchReport {
	rep := OptBenchReport{SizeFactor: sizeFactor, Seed: seed, Rows: rows, All: aggregate(rows)}
	var multi []OptimizerBenchRow
	for _, r := range rows {
		if r.Jobs >= MultiJobThreshold {
			multi = append(multi, r)
		}
	}
	rep.MultiJob = aggregate(multi)
	return rep
}

// WriteOptimizerBenchJSON writes the report, indented, to path.
func WriteOptimizerBenchJSON(path string, rep OptBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadOptimizerBenchJSON reads a report previously written by
// WriteOptimizerBenchJSON (the committed BENCH_optimizer.json baseline).
func ReadOptimizerBenchJSON(path string) (OptBenchReport, error) {
	var rep OptBenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// GuardWallSlack is the regression tolerance GuardOptimizerBench allows on
// the nil-model optimizer wall time relative to the committed baseline.
const GuardWallSlack = 1.05

// GuardOptimizerBench is the CI smoke over a fresh optimizer-bench report:
// robustness rows must be present and well-formed for every measured
// workload, and the nil-model (no fault model attached) optimizer wall
// time must not regress more than GuardWallSlack relative to the baseline
// report — the fault-model machinery is opt-in, and the default path must
// not pay for it. Wall times are compared as totals across all workloads
// to damp per-row noise.
func GuardOptimizerBench(fresh, baseline OptBenchReport) error {
	if len(fresh.Robustness) == 0 {
		return fmt.Errorf("bench guard: no robustness rows emitted")
	}
	// Sub-plan reuse must demonstrably fire on the overlapping families:
	// every consumer member's optimization resolves at least one published
	// fingerprint (hit ratio > 0) and replaces at least one sub-DAG.
	if len(fresh.Reuse) == 0 {
		return fmt.Errorf("bench guard: no sub-plan reuse rows emitted")
	}
	for _, r := range fresh.Reuse {
		if r.CatalogHits == 0 || r.HitRatio <= 0 {
			return fmt.Errorf("bench guard: family %d member %d had no catalog hits: %+v", r.FamilySeed, r.Member, r)
		}
		if r.ReusedSubplans < 1 {
			return fmt.Errorf("bench guard: family %d member %d reused no sub-plans despite %d catalog hits", r.FamilySeed, r.Member, r.CatalogHits)
		}
		if r.PlanJobs >= r.Jobs {
			return fmt.Errorf("bench guard: family %d member %d reuse plan did not shrink: %d -> %d jobs", r.FamilySeed, r.Member, r.Jobs, r.PlanJobs)
		}
	}
	byName := make(map[string]bool, len(fresh.Robustness))
	for _, r := range fresh.Robustness {
		if r.Samples <= 0 || r.NominalSec <= 0 || r.MeanSec <= 0 ||
			r.P95Sec <= 0 || r.P99Sec <= 0 || r.P99Sec < r.P95Sec {
			return fmt.Errorf("bench guard: malformed robustness row for %s: %+v", r.Workload, r)
		}
		byName[r.Workload] = true
	}
	baseRows := make(map[string]OptimizerBenchRow, len(baseline.Rows))
	for _, r := range baseline.Rows {
		baseRows[r.Workload] = r
	}
	for _, row := range fresh.Rows {
		if !byName[row.Workload] {
			return fmt.Errorf("bench guard: workload %s has no robustness row", row.Workload)
		}
		if !row.PlansIdentical {
			return fmt.Errorf("bench guard: %s plans diverged incremental vs monolithic", row.Workload)
		}
		// Estimator activity is deterministic, so unlike wall time it
		// compares exactly: any extra nil-model work the fault machinery
		// introduced shows up here without measurement noise.
		if b, ok := baseRows[row.Workload]; ok {
			if row.MonolithicCalls != b.MonolithicCalls || row.IncrementalCalls != b.IncrementalCalls ||
				row.MonolithicFlowCards != b.MonolithicFlowCards || row.IncrementalFlowCards != b.IncrementalFlowCards {
				return fmt.Errorf("bench guard: %s nil-model estimator activity drifted from baseline: calls %d/%d vs %d/%d, flow cards %d/%d vs %d/%d",
					row.Workload, row.MonolithicCalls, row.IncrementalCalls, b.MonolithicCalls, b.IncrementalCalls,
					row.MonolithicFlowCards, row.IncrementalFlowCards, b.MonolithicFlowCards, b.IncrementalFlowCards)
			}
		}
	}
	var freshMS, baseMS float64
	for _, r := range fresh.Rows {
		freshMS += r.MonolithicMS + r.IncrementalMS
	}
	for _, r := range baseline.Rows {
		baseMS += r.MonolithicMS + r.IncrementalMS
	}
	if baseMS <= 0 {
		return fmt.Errorf("bench guard: baseline has no wall-time rows")
	}
	if freshMS > baseMS*GuardWallSlack {
		return fmt.Errorf("bench guard: nil-model optimizer wall time regressed %.1f%% (fresh %.0f ms vs baseline %.0f ms, tolerance %.0f%%)",
			(freshMS/baseMS-1)*100, freshMS, baseMS, (GuardWallSlack-1)*100)
	}
	return nil
}
