package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// OptimizerBenchRow measures the incremental What-if estimator's effect on
// one workload: the full Stubby search runs with incremental estimation
// forced off (every configuration probe re-estimates the whole workflow
// monolithically) and on (probes delta-estimate only the affected cone),
// recording wall-clock and estimator activity both ways and checking the
// equivalence contract (identical plans, equal costs) as it goes.
type OptimizerBenchRow struct {
	Workload string `json:"workload"`
	// Jobs is the input workflow's job count.
	Jobs int `json:"jobs"`
	// MonolithicMS / IncrementalMS are optimize wall-clock times (best of
	// OptimizerBenchRuns attempts, to damp scheduler noise).
	MonolithicMS  float64 `json:"monolithic_ms"`
	IncrementalMS float64 `json:"incremental_ms"`
	// Calls / Computed / FlowCards pairs split estimator activity per mode:
	// requests issued, full monolithic estimates run, and per-job flow
	// computations performed.
	MonolithicCalls      uint64 `json:"monolithic_whatif_calls"`
	MonolithicComputed   uint64 `json:"monolithic_whatif_computed"`
	MonolithicFlowCards  uint64 `json:"monolithic_flow_cards"`
	IncrementalCalls     uint64 `json:"incremental_whatif_calls"`
	IncrementalComputed  uint64 `json:"incremental_whatif_computed"`
	IncrementalFlowCards uint64 `json:"incremental_flow_cards"`
	// WallSpeedup is MonolithicMS / IncrementalMS; FlowCardRatio is
	// MonolithicFlowCards / IncrementalFlowCards.
	WallSpeedup   float64 `json:"wall_speedup"`
	FlowCardRatio float64 `json:"flow_card_ratio"`
	// PlansIdentical reports whether both modes chose byte-identical plans
	// with equal estimated costs (they must — incremental estimation is
	// bit-transparent).
	PlansIdentical bool `json:"plans_identical"`
}

// OptimizerBenchRuns is how many times each (workload, mode) optimization
// repeats; rows report the fastest attempt.
const OptimizerBenchRuns = 3

// OptimizerBench runs the incremental-vs-monolithic comparison over the
// given workloads (nil means every paper workload).
func (h *Harness) OptimizerBench(abbrs []string) ([]OptimizerBenchRow, error) {
	if abbrs == nil {
		abbrs = workloads.Abbrs()
	}
	var out []OptimizerBenchRow
	for _, abbr := range abbrs {
		var wl *workloads.Workload
		var err error
		if _, deep := deepPipelineStages(abbr); deep {
			wl, err = h.deepWorkload(abbr)
		} else {
			wl, err = h.workload(abbr)
		}
		if err != nil {
			return nil, err
		}
		run := func(disable bool) (*optimizer.Result, float64, error) {
			best := 0.0
			var res *optimizer.Result
			for i := 0; i < OptimizerBenchRuns; i++ {
				opt := optimizer.New(wl.Cluster, optimizer.Options{
					Seed: h.cfg.Seed, DisableIncremental: disable,
				})
				t0 := time.Now()
				r, err := opt.Optimize(wl.Workflow)
				ms := float64(time.Since(t0).Microseconds()) / 1000
				if err != nil {
					return nil, 0, err
				}
				if res == nil || ms < best {
					best = ms
					res = r
				}
			}
			return res, best, nil
		}
		mono, monoMS, err := run(true)
		if err != nil {
			return nil, fmt.Errorf("monolithic %s: %w", abbr, err)
		}
		inc, incMS, err := run(false)
		if err != nil {
			return nil, fmt.Errorf("incremental %s: %w", abbr, err)
		}
		mb, err := planio.Encode(mono.Plan)
		if err != nil {
			return nil, err
		}
		ib, err := planio.Encode(inc.Plan)
		if err != nil {
			return nil, err
		}
		row := OptimizerBenchRow{
			Workload:             abbr,
			Jobs:                 len(wl.Workflow.Jobs),
			MonolithicMS:         monoMS,
			IncrementalMS:        incMS,
			MonolithicCalls:      mono.WhatIfCalls,
			MonolithicComputed:   mono.WhatIfComputed,
			MonolithicFlowCards:  mono.FlowCards,
			IncrementalCalls:     inc.WhatIfCalls,
			IncrementalComputed:  inc.WhatIfComputed,
			IncrementalFlowCards: inc.FlowCards,
			PlansIdentical: bytes.Equal(mb, ib) &&
				mono.EstimatedCost == inc.EstimatedCost,
		}
		if incMS > 0 {
			row.WallSpeedup = monoMS / incMS
		}
		if inc.FlowCards > 0 {
			row.FlowCardRatio = float64(mono.FlowCards) / float64(inc.FlowCards)
		}
		out = append(out, row)
	}
	return out, nil
}

// MultiJobThreshold is the job count at which a workload counts as
// multi-job for the optimizer benchmark's aggregate (the regime incremental
// estimation targets: optimization units are proper subsets of the plan).
const MultiJobThreshold = 4

// OptBenchAggregate summarizes a set of OptimizerBenchRows.
type OptBenchAggregate struct {
	Workloads []string `json:"workloads"`
	// WallSpeedup is total monolithic wall-clock over total incremental
	// wall-clock; GeomeanWallSpeedup is the per-workload geometric mean.
	WallSpeedup        float64 `json:"wall_speedup"`
	GeomeanWallSpeedup float64 `json:"geomean_wall_speedup"`
	// FlowCardRatio is total monolithic flow computations over total
	// incremental flow computations.
	FlowCardRatio float64 `json:"flow_card_ratio"`
	// PlansIdentical is the conjunction of the rows' equivalence checks.
	PlansIdentical bool `json:"plans_identical"`
}

// OptBenchReport is the JSON document stubby-bench -bench-optimizer emits
// (BENCH_optimizer.json) so future changes have a perf trajectory to
// compare against.
type OptBenchReport struct {
	SizeFactor float64             `json:"size_factor"`
	Seed       int64               `json:"seed"`
	Rows       []OptimizerBenchRow `json:"rows"`
	All        OptBenchAggregate   `json:"all"`
	// MultiJob aggregates the workloads with >= MultiJobThreshold jobs.
	MultiJob OptBenchAggregate `json:"multi_job"`
}

func aggregate(rows []OptimizerBenchRow) OptBenchAggregate {
	agg := OptBenchAggregate{PlansIdentical: true}
	var monoMS, incMS float64
	var monoCards, incCards uint64
	logSum := 0.0
	for _, r := range rows {
		agg.Workloads = append(agg.Workloads, r.Workload)
		monoMS += r.MonolithicMS
		incMS += r.IncrementalMS
		monoCards += r.MonolithicFlowCards
		incCards += r.IncrementalFlowCards
		if r.WallSpeedup > 0 {
			logSum += math.Log(r.WallSpeedup)
		}
		agg.PlansIdentical = agg.PlansIdentical && r.PlansIdentical
	}
	if incMS > 0 {
		agg.WallSpeedup = monoMS / incMS
	}
	if incCards > 0 {
		agg.FlowCardRatio = float64(monoCards) / float64(incCards)
	}
	if len(rows) > 0 {
		agg.GeomeanWallSpeedup = math.Exp(logSum / float64(len(rows)))
	}
	return agg
}

// OptimizerBenchReport assembles the JSON report from measured rows.
func OptimizerBenchReport(rows []OptimizerBenchRow, sizeFactor float64, seed int64) OptBenchReport {
	rep := OptBenchReport{SizeFactor: sizeFactor, Seed: seed, Rows: rows, All: aggregate(rows)}
	var multi []OptimizerBenchRow
	for _, r := range rows {
		if r.Jobs >= MultiJobThreshold {
			multi = append(multi, r)
		}
	}
	rep.MultiJob = aggregate(multi)
	return rep
}

// WriteOptimizerBenchJSON writes the report, indented, to path.
func WriteOptimizerBenchJSON(path string, rep OptBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
