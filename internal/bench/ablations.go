package bench

import (
	"fmt"
	"time"

	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/whatif"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// Ablation drivers isolate the design choices DESIGN.md calls out:
// the Vertical-before-Horizontal phase ordering (Section 4), the dynamic
// optimization-unit decomposition (Section 4.1), the use of RRS rather
// than simpler configuration search (Section 4.2), and the profile
// sampling fraction behind the information spectrum. Each driver runs
// optimizer variants that differ in exactly one knob and reports the
// resulting plan quality and optimization effort.

// AblationRun is one (workload, variant) measurement.
type AblationRun struct {
	Workload string
	// Variant names the optimizer configuration under test; the first
	// variant of each driver is Stubby's default and anchors Speedup.
	Variant string
	// Jobs is the optimized plan's job count.
	Jobs int
	// Makespan is the simulated running time of the optimized plan.
	Makespan float64
	// Speedup is the default variant's makespan over this one (>1 means
	// the default is slower — the ablated choice won).
	Speedup float64
	// OptimizeMS is the optimizer's real running time in milliseconds.
	OptimizeMS float64
}

// runVariants optimizes one workload under each (name, options) variant.
// The first variant anchors the speedup column.
func (h *Harness) runVariants(abbr string, variants []struct {
	name string
	opt  optimizer.Options
}) ([]AblationRun, error) {
	wl, err := h.workload(abbr)
	if err != nil {
		return nil, err
	}
	var out []AblationRun
	var anchor float64
	for i, v := range variants {
		t0 := time.Now()
		res, err := optimizer.New(wl.Cluster, v.opt).Optimize(wl.Workflow)
		optMS := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			return nil, fmt.Errorf("%s variant %q: %w", abbr, v.name, err)
		}
		makespan, err := runPlan(wl, res.Plan)
		if err != nil {
			return nil, fmt.Errorf("%s variant %q run: %w", abbr, v.name, err)
		}
		if i == 0 {
			anchor = makespan
		}
		out = append(out, AblationRun{
			Workload:   abbr,
			Variant:    v.name,
			Jobs:       len(res.Plan.Jobs),
			Makespan:   makespan,
			Speedup:    anchor / makespan,
			OptimizeMS: optMS,
		})
	}
	return out, nil
}

// AblationOrdering compares the paper's Vertical-before-Horizontal phase
// ordering against the reverse on the given workloads. The paper's
// argument (Section 4): horizontal packing first builds combined map-output
// keys that block later vertical packing, so reversing the order should
// never win and should lose on vertically-packable workflows.
func (h *Harness) AblationOrdering(abbrs []string) (map[string][]AblationRun, error) {
	variants := []struct {
		name string
		opt  optimizer.Options
	}{
		{"V-then-H", optimizer.Options{Seed: h.cfg.Seed}},
		{"H-then-V", optimizer.Options{Seed: h.cfg.Seed, HorizontalFirst: true}},
	}
	out := map[string][]AblationRun{}
	for _, abbr := range abbrs {
		rows, err := h.runVariants(abbr, variants)
		if err != nil {
			return nil, err
		}
		out[abbr] = rows
	}
	return out, nil
}

// AblationSearch compares configuration-search strategies under the same
// evaluation budget: RRS (the paper's choice), pure uniform random
// sampling, and no search at all (configurations as submitted).
func (h *Harness) AblationSearch(abbrs []string) (map[string][]AblationRun, error) {
	variants := []struct {
		name string
		opt  optimizer.Options
	}{
		{"RRS", optimizer.Options{Seed: h.cfg.Seed}},
		{"Random", optimizer.Options{Seed: h.cfg.Seed, ConfigSearch: optimizer.SearchRandom}},
		{"NoSearch", optimizer.Options{Seed: h.cfg.Seed, DisableConfigSearch: true}},
	}
	out := map[string][]AblationRun{}
	for _, abbr := range abbrs {
		rows, err := h.runVariants(abbr, variants)
		if err != nil {
			return nil, err
		}
		out[abbr] = rows
	}
	return out, nil
}

// AblationUnitScope compares the dynamic optimization-unit traversal
// against optimizing the whole workflow as one global unit. The global
// unit searches a strictly larger joint space per invocation, so it can
// only match or improve plan quality — at an optimization-time cost that
// grows with workflow size, which is the divide-and-conquer argument of
// Section 4.1.
func (h *Harness) AblationUnitScope(abbrs []string) (map[string][]AblationRun, error) {
	variants := []struct {
		name string
		opt  optimizer.Options
	}{
		{"DynamicUnits", optimizer.Options{Seed: h.cfg.Seed}},
		{"GlobalUnit", optimizer.Options{Seed: h.cfg.Seed, GlobalUnit: true, MaxSubplans: 256}},
	}
	out := map[string][]AblationRun{}
	for _, abbr := range abbrs {
		rows, err := h.runVariants(abbr, variants)
		if err != nil {
			return nil, err
		}
		out[abbr] = rows
	}
	return out, nil
}

// ProfileFractionRow measures one profiling sampling rate: how accurate
// the What-if estimate of the optimized plan is, and how good the chosen
// plan actually is, when profiles come from a fraction of the data.
type ProfileFractionRow struct {
	// Fraction is the profiled sample rate in (0, 1].
	Fraction float64
	// Estimated is the What-if makespan of the plan Stubby chose.
	Estimated float64
	// Actual is the simulated makespan of that plan.
	Actual float64
	// RelError is |Estimated-Actual|/Actual.
	RelError float64
	// Speedup is the unoptimized plan's makespan over the optimized one.
	Speedup float64
}

// AblationProfileFraction rebuilds the workload at each sampling fraction,
// profiles, optimizes, and reports estimate accuracy and plan quality —
// the information-spectrum trade-off between profiling cost and
// optimization fidelity (Sections 2.2 and 5).
func (h *Harness) AblationProfileFraction(abbr string, fractions []float64) ([]ProfileFractionRow, error) {
	var out []ProfileFractionRow
	for _, f := range fractions {
		wl, err := workloads.Build(abbr, workloads.Options{SizeFactor: h.cfg.SizeFactor, Seed: h.cfg.Seed})
		if err != nil {
			return nil, err
		}
		if err := profile.NewProfiler(wl.Cluster, f, h.cfg.Seed+17).Annotate(wl.Workflow, wl.DFS); err != nil {
			return nil, fmt.Errorf("profile %s at %.2f: %w", abbr, f, err)
		}
		base, err := runPlan(wl, wl.Workflow)
		if err != nil {
			return nil, err
		}
		res, err := optimizer.New(wl.Cluster, optimizer.Options{Seed: h.cfg.Seed}).Optimize(wl.Workflow)
		if err != nil {
			return nil, fmt.Errorf("optimize %s at %.2f: %w", abbr, f, err)
		}
		// Estimate against a clean estimator so per-run caches do not leak.
		est, err := whatif.New(wl.Cluster).Estimate(res.Plan)
		if err != nil {
			return nil, err
		}
		actual, err := runPlan(wl, res.Plan)
		if err != nil {
			return nil, err
		}
		relErr := est.Makespan - actual
		if relErr < 0 {
			relErr = -relErr
		}
		out = append(out, ProfileFractionRow{
			Fraction:  f,
			Estimated: est.Makespan,
			Actual:    actual,
			RelError:  relErr / actual,
			Speedup:   base / actual,
		})
	}
	return out, nil
}
