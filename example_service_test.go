package stubby_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"github.com/stubby-mr/stubby"
)

// ExampleSession_Submit shows the asynchronous job lifecycle: submit an
// optimization, watch its typed event stream, and collect the result. A
// handle outlives the job, so late subscribers replay the whole stream.
func ExampleSession_Submit() {
	wl, err := stubby.BuildWorkload("IR", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithQueueDepth(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	defer sess.Close(ctx)
	if err := sess.Profile(ctx, wl.Workflow, wl.DFS); err != nil {
		log.Fatal(err)
	}

	handle, err := sess.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow})
	if err != nil {
		log.Fatal(err)
	}
	res, err := handle.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// The replayed event stream always walks queued -> running -> done.
	var states []stubby.JobState
	units := 0
	for ev := range handle.Events(ctx) {
		switch e := ev.(type) {
		case stubby.StateChangedEvent:
			states = append(states, e.State)
		case stubby.UnitStartedEvent:
			units++
		}
	}
	fmt.Printf("states: %v\n", states)
	fmt.Printf("searched units: %v, plan produced: %v\n", units > 0, res.Plan != nil)
	// Output:
	// states: [queued running done]
	// searched units: true, plan produced: true
}

// ExampleClient optimizes through a stubbyd server over HTTP: the same
// Submit/Wait shape as the in-process API, with plans traveling as
// versioned JSON documents (structure-only — the server never sees user
// code).
func ExampleClient() {
	wl, err := stubby.BuildWorkload("IR", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	psess, err := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := psess.Profile(ctx, wl.Workflow, wl.DFS); err != nil {
		log.Fatal(err)
	}

	// A stubbyd server (here in-process; normally `stubbyd -addr :8080`).
	sess, err := stubby.NewSession(stubby.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close(ctx)
	srv := httptest.NewServer(stubby.NewServer(sess))
	defer srv.Close()

	client, err := stubby.NewClient(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	job, err := client.Submit(ctx, stubby.OptimizeRequest{
		Workflow: wl.Workflow,
		Planner:  "stubby",
		Seed:     1,
		Cluster:  wl.Cluster, // the remote What-if engine costs against our cluster
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Wait(ctx)
	if err != nil {
		log.Fatal(err)
	}
	status, err := job.Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state: %s, plan returned: %v, cost estimated: %v\n",
		status.State(), res.Plan != nil, res.EstimatedCost > 0)
	// Output: state: done, plan returned: true, cost estimated: true
}
