package stubby_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/stubby-mr/stubby"
	"github.com/stubby-mr/stubby/internal/gen"
	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/wf"
)

// fpOf is the canonical workflow fingerprint used across the wire suites.
func fpOf(t *testing.T, w *stubby.Workflow) string {
	t.Helper()
	if w == nil {
		t.Fatal("nil workflow")
	}
	return wf.FingerprintWorkflow(w).String()
}

// wireGenSeeds is how many generator seeds the round-trip suite covers.
const wireGenSeeds = 10

// profiledGenCase generates and profiles one random workflow.
func profiledGenCase(t *testing.T, seed int64, opt gen.Options) *gen.Case {
	t.Helper()
	c := gen.Generate(seed, opt)
	sess, err := stubby.NewSession(stubby.WithCluster(c.Cluster), stubby.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Profile(context.Background(), c.Workflow, c.DFS); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWireRoundTripFingerprints: encode→decode must reproduce the exact
// canonical fingerprint — structure, configurations, profiles, layouts —
// for every paper workload and ten generated workflows, through all three
// document kinds (plan, optimize-request, optimize-result).
func TestWireRoundTripFingerprints(t *testing.T) {
	type subject struct {
		name    string
		w       *stubby.Workflow
		cluster *stubby.Cluster
	}
	var subjects []subject
	wls := differentialWorkloads(t)
	for _, abbr := range stubby.Workloads() {
		subjects = append(subjects, subject{abbr, wls[abbr].Workflow, wls[abbr].Cluster})
	}
	for seed := int64(1); seed <= wireGenSeeds; seed++ {
		c := profiledGenCase(t, seed, gen.Options{})
		subjects = append(subjects, subject{fmt.Sprintf("gen-%d", seed), c.Workflow, c.Cluster})
	}

	for _, sub := range subjects {
		sub := sub
		t.Run(sub.name, func(t *testing.T) {
			want := fpOf(t, sub.w)

			// Plan document.
			data, err := planio.Encode(sub.w)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := planio.DecodeStructure(data)
			if err != nil {
				t.Fatal(err)
			}
			if got := fpOf(t, decoded); got != want {
				t.Errorf("plan doc round trip changed fingerprint: %s -> %s", want, got)
			}

			// Request document (planner + seed + cluster survive too).
			reqData, err := planio.EncodeRequest(&planio.Request{
				Planner: "stubby", Seed: 7, Cluster: sub.cluster, Plan: sub.w,
			})
			if err != nil {
				t.Fatal(err)
			}
			req, err := planio.DecodeRequest(reqData)
			if err != nil {
				t.Fatal(err)
			}
			if got := fpOf(t, req.Plan); got != want {
				t.Errorf("request doc round trip changed fingerprint: %s -> %s", want, got)
			}
			if req.Planner != "stubby" || req.Seed != 7 {
				t.Errorf("request metadata lost: %+v", req)
			}
			if req.Cluster == nil || *req.Cluster != *sub.cluster {
				t.Errorf("request cluster lost: %+v", req.Cluster)
			}

			// Result document, including the fingerprint integrity check.
			resData, err := planio.EncodeResult(&planio.Result{
				Plan: sub.w, EstimatedCost: 123.5, DurationMS: 42,
				WhatIfCalls: 10, WhatIfComputed: 3, FlowCards: 17,
				Fingerprint: want,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := planio.DecodeResult(resData)
			if err != nil {
				t.Fatal(err)
			}
			if got := fpOf(t, res.Plan); got != want {
				t.Errorf("result doc round trip changed fingerprint: %s -> %s", want, got)
			}
			if res.EstimatedCost != 123.5 || res.WhatIfCalls != 10 ||
				res.WhatIfComputed != 3 || res.FlowCards != 17 {
				t.Errorf("result metadata lost: %+v", res)
			}
		})
	}
}

// TestWireResultFingerprintMismatchRejected: a result document whose plan
// was tampered with fails the integrity check on decode.
func TestWireResultFingerprintMismatchRejected(t *testing.T) {
	c := profiledGenCase(t, 1, gen.Options{})
	data, err := planio.EncodeResult(&planio.Result{
		Plan:        c.Workflow,
		Fingerprint: "0000000000000000AAAAAAAAAAAAAAAA",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := planio.DecodeResult(data); err == nil {
		t.Fatal("tampered result decoded without error")
	}
}

// TestWireGoldens locks the wire bytes of request and result documents for
// two generator seeds into golden files: any schema drift — renamed
// fields, changed defaults, reordered sections — is an explicit diff.
// Like the plan snapshots, -update is forbidden in CI.
func TestWireGoldens(t *testing.T) {
	if *update && os.Getenv("CI") != "" {
		t.Fatal("-update is forbidden in CI: regenerate wire goldens locally and commit the diff")
	}
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			// Smaller cases than the round-trip sweep: goldens are for
			// schema drift, and compact documents make reviewable diffs.
			c := profiledGenCase(t, seed, gen.Options{MaxJobs: 4, Records: 120})
			reqData, err := planio.EncodeRequest(&planio.Request{
				Planner: "stubby", Seed: seed, Cluster: c.Cluster, Plan: c.Workflow,
			})
			if err != nil {
				t.Fatal(err)
			}
			resData, err := planio.EncodeResult(&planio.Result{
				Plan: c.Workflow, EstimatedCost: 123.456, DurationMS: 12.5,
				WhatIfCalls: 42, WhatIfComputed: 7, FlowCards: 99,
				Fingerprint: fpOf(t, c.Workflow),
			})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, filepath.Join("testdata", "wire", fmt.Sprintf("request-seed-%02d.golden", seed)), reqData)
			checkGolden(t, filepath.Join("testdata", "wire", fmt.Sprintf("result-seed-%02d.golden", seed)), resData)
		})
	}
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("wire document drifted from golden %s.\n"+
			"If the change is intended, regenerate with:\n"+
			"\tgo test -run TestWireGoldens -update .\nand commit the diff.", path)
	}
}

// serviceFixture stands up a stubbyd server (real HTTP listener) over a
// fresh session and returns a client for it.
func serviceFixture(t *testing.T, opts ...stubby.SessionOption) (*stubby.Session, *httptest.Server, *stubby.Client) {
	t.Helper()
	base := []stubby.SessionOption{
		stubby.WithSeed(1),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: differentialRRSEvals}),
		stubby.WithIncrementalEstimation(!disableIncremental()),
	}
	sess, err := stubby.NewSession(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(stubby.NewServer(sess))
	t.Cleanup(func() {
		hs.Close()
		_ = sess.Close(context.Background())
	})
	client, err := stubby.NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	return sess, hs, client
}

// inProcessPlan optimizes wl in-process with exactly the options the
// service fixture uses, returning the plan fingerprint.
func inProcessPlan(t *testing.T, wl *stubby.Workload) string {
	t.Helper()
	res := optimizeWith(t, wl, "stubby", nil, 1)
	return fpOf(t, res.Plan)
}

// TestServiceE2ESmokeBR is the end-to-end smoke of the acceptance
// criteria: start a server, submit the profiled BR workload over HTTP,
// stream its events, and assert the returned plan is fingerprint-identical
// to the in-process Session.Optimize plan.
func TestServiceE2ESmokeBR(t *testing.T) {
	wl := differentialWorkloads(t)["BR"]
	_, _, client := serviceFixture(t)
	ctx := context.Background()

	job, err := client.Submit(ctx, stubby.OptimizeRequest{
		Workflow: wl.Workflow, Planner: "stubby", Seed: 1, Cluster: wl.Cluster,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := job.Events(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var states []stubby.JobState
	units := 0
	for ev := range events {
		switch e := ev.(type) {
		case stubby.StateChangedEvent:
			states = append(states, e.State)
		case stubby.UnitStartedEvent:
			units++
		}
	}
	if len(states) == 0 || states[len(states)-1] != stubby.StateDone {
		t.Fatalf("streamed states %v, want trailing done", states)
	}
	if units == 0 {
		t.Fatal("no UnitStarted events streamed over HTTP")
	}
	res, err := job.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fpOf(t, res.Plan), inProcessPlan(t, wl); got != want {
		t.Fatalf("remote BR plan fingerprint %s != in-process %s", got, want)
	}
	status, err := job.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.State() != stubby.StateDone || status.Progress.Units == 0 {
		t.Fatalf("remote status %+v", status)
	}
}

// TestWireParityAllWorkloads: for every paper workload, the plan returned
// by stubby.Client through stubbyd is fingerprint-identical to
// Session.Optimize's plan (the cluster travels in the request).
func TestWireParityAllWorkloads(t *testing.T) {
	wls := differentialWorkloads(t)
	_, _, client := serviceFixture(t)
	ctx := context.Background()
	for _, abbr := range stubby.Workloads() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			wl := wls[abbr]
			job, err := client.Submit(ctx, stubby.OptimizeRequest{
				Workflow: wl.Workflow, Planner: "stubby", Seed: 1, Cluster: wl.Cluster,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := job.Wait(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := fpOf(t, res.Plan), inProcessPlan(t, wl); got != want {
				t.Errorf("remote %s plan fingerprint %s != in-process %s", abbr, got, want)
			}
			if res.EstimatedCost <= 0 || res.WhatIfCalls == 0 {
				t.Errorf("remote %s result missing cost/counters: %+v", abbr, res)
			}
		})
	}
}

// TestRemoteCancelMidFlightNoLeak: canceling over HTTP transitions the
// job to canceled, Wait surfaces ErrKindCanceled, and no goroutines leak
// (runs under -race in CI).
func TestRemoteCancelMidFlightNoLeak(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	sess, hs, client := serviceFixture(t, stubby.WithParallelism(1), stubby.WithQueueDepth(4))
	started, release := registerBlocking(t, sess)
	defer close(release)
	ctx := context.Background()

	baseline := runtime.NumGoroutine()
	job, err := client.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "blocking"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // mid-flight: the search is parked inside the planner
	waitc := make(chan error, 1)
	go func() {
		_, err := job.Wait(ctx)
		waitc <- err
	}()
	status, err := job.Cancel(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-waitc; !errors.Is(werr, stubby.ErrKindCanceled) {
		t.Fatalf("Wait after remote cancel = %v, want ErrKindCanceled", werr)
	}
	status, err = job.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.State() != stubby.StateCanceled {
		t.Fatalf("remote state after cancel = %v, want canceled", status.State())
	}
	if !errors.Is(status.Err, stubby.ErrKindCanceled) {
		t.Fatalf("remote status error = %v, want ErrKindCanceled", status.Err)
	}
	// Everything spun up for the canceled job must unwind.
	hs.Client().CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	waitGoroutinesBelow(t, baseline)
}

// TestRemoteOverloadTyped: submissions beyond the admission queue are
// shed with ErrKindOverloaded through the full HTTP round trip (429).
func TestRemoteOverloadTyped(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	sess, _, client := serviceFixture(t, stubby.WithParallelism(1), stubby.WithQueueDepth(1))
	started, release := registerBlocking(t, sess)
	ctx := context.Background()
	req := stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "blocking"}

	j1, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Submit(ctx, req)
	if !errors.Is(err, stubby.ErrKindOverloaded) {
		t.Fatalf("third remote submit = %v, want ErrKindOverloaded", err)
	}
	var se *stubby.Error
	if !errors.As(err, &se) {
		t.Fatalf("remote overload error is not *stubby.Error: %v", err)
	}
	close(release)
	for _, j := range []*stubby.RemoteJob{j1, j2} {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRemoteDisableIncremental: the wire knob reaches the optimizer —
// monolithic estimation computes far more full estimates, while the plan
// stays fingerprint-identical (incremental estimation is bit-transparent).
func TestRemoteDisableIncremental(t *testing.T) {
	wl := differentialWorkloads(t)["IR"]
	_, _, client := serviceFixture(t)
	ctx := context.Background()
	run := func(disable bool) *stubby.Result {
		job, err := client.Submit(ctx, stubby.OptimizeRequest{
			Workflow: wl.Workflow, Planner: "stubby", Seed: 1, Cluster: wl.Cluster,
			DisableIncremental: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	incr := run(false)
	mono := run(true)
	if fpOf(t, incr.Plan) != fpOf(t, mono.Plan) {
		t.Fatal("DisableIncremental changed the plan (must be bit-transparent)")
	}
	if mono.WhatIfComputed <= incr.WhatIfComputed {
		t.Fatalf("DisableIncremental not honored over the wire: monolithic computed %d full estimates, incremental %d",
			mono.WhatIfComputed, incr.WhatIfComputed)
	}
}

// TestServerJobRetention: finished jobs beyond the retention bound are
// forgotten oldest-first; recent ones stay queryable.
func TestServerJobRetention(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	sess, err := stubby.NewSession(stubby.WithParallelism(1), stubby.WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(stubby.NewServer(sess, stubby.WithJobRetention(2)))
	defer hs.Close()
	defer sess.Close(context.Background())
	client, err := stubby.NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var jobs []*stubby.RemoteJob
	for i := 0; i < 5; i++ {
		job, err := client.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "baseline"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := job.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	// Submitting job 5 saw four finished jobs and pruned down to two.
	for _, j := range jobs[:2] {
		if _, err := j.Status(ctx); !errors.Is(err, stubby.ErrKindNotFound) {
			t.Fatalf("evicted job %s status = %v, want ErrKindNotFound", j.ID(), err)
		}
	}
	for _, j := range jobs[2:] {
		if _, err := j.Status(ctx); err != nil {
			t.Fatalf("retained job %s status = %v", j.ID(), err)
		}
	}
}

// TestServerDrain: a draining server rejects new submissions with
// ErrKindUnavailable (503) while admitted jobs finish, and a drain
// deadline force-cancels parked jobs instead of hanging.
func TestServerDrain(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	sess, err := stubby.NewSession(stubby.WithParallelism(1), stubby.WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	started, release := registerBlocking(t, sess)
	defer close(release)
	srv := stubby.NewServer(sess)
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client, err := stubby.NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	job, err := client.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "blocking"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is parked; a zero-deadline drain must force-cancel it
	drainCtx, cancel := context.WithCancel(ctx)
	cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("forced drain = %v", err)
	}
	status, err := job.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.State() != stubby.StateCanceled {
		t.Fatalf("parked job after forced drain = %v, want canceled", status.State())
	}
	if _, err := client.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow}); !errors.Is(err, stubby.ErrKindUnavailable) {
		t.Fatalf("submit to draining server = %v, want ErrKindUnavailable", err)
	}
}

// TestRemoteErrorTaxonomy: the remaining wire error paths carry their
// kinds — invalid documents, unknown jobs, results before completion.
func TestRemoteErrorTaxonomy(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	sess, hs, client := serviceFixture(t, stubby.WithParallelism(1), stubby.WithQueueDepth(4))
	started, release := registerBlocking(t, sess)
	defer close(release)
	ctx := context.Background()

	// Unknown job IDs: not found.
	if _, err := client.Job("job-999").Status(ctx); !errors.Is(err, stubby.ErrKindNotFound) {
		t.Fatalf("unknown job = %v, want ErrKindNotFound", err)
	}
	// Garbage documents: invalid.
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage submit status = %d, want 400", resp.StatusCode)
	}
	// Result before completion: conflict.
	job, err := client.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "blocking"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := job.Result(ctx); !errors.Is(err, stubby.ErrKindConflict) {
		t.Fatalf("early result = %v, want ErrKindConflict", err)
	}
	// Unknown planner: typed through the wire.
	_, err = client.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "nope"})
	if !errors.Is(err, stubby.ErrKindUnknownPlanner) {
		t.Fatalf("unknown planner = %v, want ErrKindUnknownPlanner", err)
	}
}
