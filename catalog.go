package stubby

import (
	"errors"
	"time"

	"github.com/stubby-mr/stubby/internal/catalog"
	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/wf"
)

// ReuseCatalog is a durable catalog of materialized sub-plan results (the
// ReStore idea): every dataset a Run materializes is published under its
// producing sub-DAG's rooted fingerprint, and later optimizations — of the
// same workflow or a different one sharing a sub-DAG — can replace the
// matched sub-DAG with a scan of the stored result when the What-if
// estimate says scanning beats recomputing. See internal/catalog for the
// on-disk format and durability guarantees.
type ReuseCatalog = catalog.Store

// ReuseCatalogStats snapshots a ReuseCatalog's counters; see
// Session.ReuseCatalogStats and ReuseReportEvent.
type ReuseCatalogStats = catalog.Stats

// ReuseCatalogOption configures NewReuseCatalog's open-time behavior.
type ReuseCatalogOption = catalog.Option

// WithCatalogTTL evicts catalog entries older than ttl when the catalog is
// (re)opened: expired entries are dropped by the compaction pass and
// counted in ReuseCatalogStats.Expired, never surfaced as errors. Entries
// written before timestamps existed have unknown age and are
// conservatively treated as expired.
func WithCatalogTTL(ttl time.Duration) ReuseCatalogOption {
	return catalog.WithTTL(ttl)
}

// WithCatalogLocationCheck evicts, at (re)open, catalog entries whose
// stored dataset location no longer exists: check(dataset) returning false
// drops the entry, counted in ReuseCatalogStats.Vanished. A reuse hit
// against a vanished dataset would optimize the plan around a scan of
// nothing, so eviction at open is strictly safer.
func WithCatalogLocationCheck(check func(dataset string) bool) ReuseCatalogOption {
	return catalog.WithLocationCheck(check)
}

// NewReuseCatalog opens (creating if needed) a reuse catalog rooted at
// dir. Reopening recovers crash-safely — torn record tails are truncated,
// stale duplicates are compacted away (along with entries evicted by
// WithCatalogTTL / WithCatalogLocationCheck), and every surviving entry
// stays CRC-verified on read. One live writer per directory is enforced
// with a lock file; close the catalog when done.
func NewReuseCatalog(dir string, opts ...ReuseCatalogOption) (*ReuseCatalog, error) {
	return catalog.Open(dir, opts...)
}

// WithReuseCatalog attaches a sub-plan reuse catalog to the session:
// Run publishes every materialized intermediate dataset under its
// producing sub-DAG's fingerprint, and Optimize/Submit add a pre-pass
// that replaces catalog-matched sub-DAGs with scans of the stored
// results — but only when the What-if estimate says the scan is strictly
// cheaper, so reuse can never worsen a plan. Result.ReusedSubplans
// reports how many sub-DAGs each optimization replaced. The caller
// retains ownership: Close the catalog after the session is done with it.
//
// Reuse preserves results exactly: a sub-DAG is matched only when its
// rooted fingerprint — job programs, configurations, profiles, and the
// full content identity of every base input — is identical to the run
// that produced the stored result.
func WithReuseCatalog(c *ReuseCatalog) SessionOption {
	return func(s *Session) error {
		if c == nil {
			return errors.New("stubby: WithReuseCatalog(nil)")
		}
		s.reuseCatalog = c
		return nil
	}
}

// ReuseCatalog returns the catalog attached via WithReuseCatalog, or nil.
func (s *Session) ReuseCatalog() *ReuseCatalog { return s.reuseCatalog }

// ReuseCatalogStats snapshots the attached catalog's counters. ok is false
// when the session has no reuse catalog.
func (s *Session) ReuseCatalogStats() (stats ReuseCatalogStats, ok bool) {
	if s.reuseCatalog == nil {
		return ReuseCatalogStats{}, false
	}
	return s.reuseCatalog.Stats(), true
}

// publishRunResults records every intermediate dataset a completed Run
// materialized into the session's reuse catalog, keyed by the rooted
// fingerprint of its producing sub-DAG. Empty results are skipped (a scan
// of nothing never beats anything), as are datasets the run did not leave
// on the DFS. Catalog append errors are absorbed into the catalog's Errors
// counter — a full disk must not fail a run that already succeeded.
func (s *Session) publishRunResults(dfs *DFS, w *Workflow) {
	h := wf.NewHasher()
	for _, d := range w.Datasets {
		if d.Base || w.Producer(d.ID) == nil {
			continue
		}
		fp, ok := h.Subplan(w, d.ID)
		if !ok {
			continue
		}
		stored, ok := dfs.Get(d.ID)
		if !ok || stored.Records() == 0 || stored.Bytes() == 0 {
			continue
		}
		layout, err := planio.EncodeLayout(stored.Layout)
		if err != nil {
			continue
		}
		total := stored.Bytes()
		var maxPart int64
		for _, p := range stored.Parts {
			if p.Bytes > maxPart {
				maxPart = p.Bytes
			}
		}
		_ = s.reuseCatalog.Put(catalog.Entry{
			Fingerprint:  fp.String(),
			Dataset:      d.ID,
			Workflow:     w.Name,
			Jobs:         len(wf.ProducingJobs(w, d.ID)),
			Records:      float64(stored.Records()),
			Bytes:        float64(total),
			Partitions:   len(stored.Parts),
			MaxPartShare: float64(maxPart) / float64(total),
			KeyFields:    d.KeyFields,
			ValueFields:  d.ValueFields,
			Layout:       layout,
		})
	}
}
