package stubby_test

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"github.com/stubby-mr/stubby"
)

// ExampleClient_retry shows the opt-in retry policy: a client constructed
// with WithRetryPolicy rides out transient overload (HTTP 429, honoring
// the server's Retry-After) with exponential backoff and deterministic
// seeded jitter, while errors retrying cannot fix — invalid input,
// unknown jobs — still return immediately. Against a journaled stubbyd,
// retried submissions are idempotent: a repeat of an in-flight request
// attaches to the existing job instead of optimizing twice.
func ExampleClient_retry() {
	// A server that sheds the first two requests with 429 before letting
	// the third through — the overload shape a busy stubbyd produces.
	var attempt atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempt.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"kind":"overloaded","op":"submit","message":"queue full"}}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok","queue":{"workers":8,"depth":64,"queued":0,"busy":3}}`)
	}))
	defer hs.Close()

	client, err := stubby.NewClient(hs.URL, stubby.WithRetryPolicy(stubby.RetryPolicy{
		MaxAttempts: 5,                     // total tries, first included
		BaseDelay:   2 * time.Millisecond,  // pre-jitter delay before retry 1
		MaxDelay:    50 * time.Millisecond, // ceiling for backoff and Retry-After
		Seed:        7,                     // deterministic jitter sequence
	}))
	if err != nil {
		log.Fatal(err)
	}

	stats, err := client.Stats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	m := client.Metrics()
	fmt.Printf("status: %s after %d requests (%d retries)\n", stats.Status, m.Requests, m.Retries)
	// Output:
	// status: ok after 3 requests (2 retries)
}
