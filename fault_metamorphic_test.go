package stubby_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"

	"github.com/stubby-mr/stubby"
	"github.com/stubby-mr/stubby/internal/gen"
	"github.com/stubby-mr/stubby/internal/mrsim"
)

// The zero-perturbation metamorphic suite pins the fault model's identity
// contract: an attached FaultModel with every rate zero and no node classes
// must be indistinguishable from no model at all — bit-identical makespans
// and task traces from the engine, and byte-identical plans from the
// optimizer (the robustness tie-break never fires for a non-perturbing
// model). Any drift between the fault-free scheduling arithmetic and the
// FaultyPool path shows up here before it can corrupt nominal results.

// zeroFaultModel is the metamorphic identity: all rates zero, no classes.
// Speculative is deliberately left on — with no stragglers the threshold
// can never trip, and leaving it set proves the gate, not just the flag.
func zeroFaultModel(seed int64) *stubby.FaultModel {
	return &stubby.FaultModel{Seed: seed, Speculative: true}
}

// runEngine executes the identity plan with the given fault model (nil for
// the reference run), recording the per-task trace.
func runEngine(t *testing.T, cluster *stubby.Cluster, dfs *stubby.DFS,
	w *stubby.Workflow, fm *mrsim.FaultModel) *mrsim.RunReport {
	t.Helper()
	eng := mrsim.NewEngine(cluster, dfs.Clone())
	eng.Fault = fm
	eng.RecordTaskEvents = true
	rep, err := eng.RunWorkflow(w)
	if err != nil {
		t.Fatalf("engine run (fault=%v): %v", fm != nil, err)
	}
	return rep
}

// assertIdenticalRuns requires two run reports to agree bit for bit:
// makespan, per-job task counts and timings, and the full task trace.
func assertIdenticalRuns(t *testing.T, want, got *mrsim.RunReport) {
	t.Helper()
	if math.Float64bits(want.Makespan) != math.Float64bits(got.Makespan) {
		t.Errorf("makespan diverged: nil-model %.17g vs zero-model %.17g",
			want.Makespan, got.Makespan)
	}
	if len(want.Jobs) != len(got.Jobs) {
		t.Fatalf("job count diverged: %d vs %d", len(want.Jobs), len(got.Jobs))
	}
	for i, wj := range want.Jobs {
		gj := got.Jobs[i]
		if wj.NumMapTasks != gj.NumMapTasks || wj.NumReduceTasks != gj.NumReduceTasks {
			t.Errorf("job %s task counts diverged: %d/%d maps, %d/%d reduces",
				wj.JobID, wj.NumMapTasks, gj.NumMapTasks, wj.NumReduceTasks, gj.NumReduceTasks)
		}
		if math.Float64bits(wj.End) != math.Float64bits(gj.End) ||
			math.Float64bits(wj.MapsDone) != math.Float64bits(gj.MapsDone) {
			t.Errorf("job %s timings diverged: end %.17g vs %.17g, mapsDone %.17g vs %.17g",
				wj.JobID, wj.End, gj.End, wj.MapsDone, gj.MapsDone)
		}
		if gj.TaskFailures != 0 || gj.TaskRetries != 0 || gj.SpeculativeTasks != 0 {
			t.Errorf("job %s: zero-rate model produced fault activity: failures=%d retries=%d speculated=%d",
				gj.JobID, gj.TaskFailures, gj.TaskRetries, gj.SpeculativeTasks)
		}
	}
	if wb, gb := want.TraceBytes(), got.TraceBytes(); !bytes.Equal(wb, gb) {
		t.Errorf("task traces diverged:\n--- nil model\n%.2000s\n--- zero model\n%.2000s", wb, gb)
	}
}

// TestZeroPerturbationPaperWorkloads runs every paper workload's identity
// plan through the engine with no fault model and with the zero-rate model,
// then optimizes with and without zero-rate robustness scoring attached:
// both pairs must be bit-identical. The plan goldens in testdata/plans stay
// the authority for the nominal plans themselves (TestPlanSnapshots).
func TestZeroPerturbationPaperWorkloads(t *testing.T) {
	for _, abbr := range stubby.Workloads() {
		abbr := abbr
		t.Run(abbr, func(t *testing.T) {
			wl := profiledWorkload(t, abbr, differentialSize, 1)
			ref := runEngine(t, wl.Cluster, wl.DFS, wl.Workflow, nil)
			zero := runEngine(t, wl.Cluster, wl.DFS, wl.Workflow, zeroFaultModel(7))
			assertIdenticalRuns(t, ref, zero)

			optimize := func(rob bool) *stubby.Result {
				opts := []stubby.SessionOption{
					stubby.WithCluster(wl.Cluster),
					stubby.WithSeed(1),
					stubby.WithIncrementalEstimation(!disableIncremental()),
					stubby.WithOptimizerOptions(stubby.Options{RRSEvals: differentialRRSEvals}),
				}
				if rob {
					opts = append(opts, stubby.WithRobustness(zeroFaultModel(7), 8))
				}
				sess, err := stubby.NewSession(opts...)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sess.Optimize(context.Background(), wl.Workflow)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			plain := optimize(false)
			scored := optimize(true)
			assertSamePlan(t, plain, scored)
			if plain.Robustness != nil {
				t.Error("robustness report appeared without WithRobustness")
			}
			if rob := scored.Robustness; rob != nil {
				// A non-perturbing model yields a degenerate distribution:
				// every sample replays the same schedule. (Mean is a float
				// sum over identical samples, so it may differ in the last
				// ulp; the percentiles are selected, not accumulated.)
				if rob.Min != rob.Max || rob.P50 != rob.Min || rob.P99 != rob.Min {
					t.Errorf("zero-rate model produced a spread: min=%g max=%g p50=%g p99=%g",
						rob.Min, rob.Max, rob.P50, rob.P99)
				}
				if math.Abs(rob.Mean-rob.Min) > 1e-9*rob.Min {
					t.Errorf("zero-rate mean drifted from the common sample: mean=%g sample=%g",
						rob.Mean, rob.Min)
				}
			}
		})
	}
}

// TestZeroPerturbationGeneratedCases replays the generator corpus through
// the same identity check: for each corpus seed, the identity plan's
// engine run with the zero-rate model must be bit-identical to the
// nil-model run, including sink outputs.
func TestZeroPerturbationGeneratedCases(t *testing.T) {
	for seed := int64(1); seed <= gen.CorpusSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := gen.Generate(seed, gen.Options{})
			ref := runEngine(t, c.Cluster, c.DFS, c.Workflow, nil)
			zero := runEngine(t, c.Cluster, c.DFS, c.Workflow, zeroFaultModel(seed))
			assertIdenticalRuns(t, ref, zero)

			subject := c.Subject()
			want, err := subject.Reference()
			if err != nil {
				t.Fatal(err)
			}
			subject.Fault = zeroFaultModel(seed)
			got, _, err := subject.Run(c.Workflow)
			if err != nil {
				t.Fatal(err)
			}
			for id, pairs := range want {
				if d := mrsim.DiffPairs(pairs, got[id], 0); d != "" {
					t.Errorf("seed %d: sink %s diverged under the zero-rate model: %s", seed, id, d)
				}
			}
		})
	}
}
