package stubby_test

import (
	"fmt"
	"testing"

	"github.com/stubby-mr/stubby/internal/gen"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/profile"
)

// The chaos-mode oracle suite injects failures, stragglers, heterogeneous
// node speeds, and speculative re-execution into the execution engine and
// re-runs the semantic-equivalence oracle: for generated workflows, both
// the identity plan and the Stubby-optimized plan must still produce
// tuple-for-tuple identical sink outputs. The fault model is only allowed
// to move simulated time — retried attempts, canceled speculative backups,
// and slow nodes must never duplicate, drop, or reorder a record. Each
// failure message embeds the (workflow seed, fault seed) pair needed to
// reproduce it.

// chaosSeeds is how many generator seeds the suite sweeps (ISSUE floor: 20).
const chaosSeeds = 20

// chaosRRSEvals caps the per-case search budget; equivalence must hold at
// any budget and the small one keeps the 20x3 matrix tractable under -race.
const chaosRRSEvals = 40

// chaosProfiles are the three fault regimes the matrix sweeps.
var chaosProfiles = []string{"standard", "failures", "stragglers"}

func TestChaosOracleGeneratedWorkflows(t *testing.T) {
	// Aggregate fault activity across the whole matrix: the suite is only
	// meaningful if the injected faults actually fire.
	var totalFailures, totalSpeculated int
	for i := 0; i < chaosSeeds; i++ {
		seed := int64(i + 1)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := gen.Generate(seed, gen.Options{})
			if err := profile.NewProfiler(c.Cluster, 0.5, seed).Annotate(c.Workflow, c.DFS); err != nil {
				t.Fatalf("workflow seed %d: profiling: %v", seed, err)
			}
			opt := optimizer.New(c.Cluster, optimizer.Options{
				Seed:               seed,
				RRSEvals:           chaosRRSEvals,
				DisableIncremental: disableIncremental(),
			})
			res, err := opt.Optimize(c.Workflow)
			if err != nil {
				t.Fatalf("workflow seed %d: optimize: %v", seed, err)
			}

			subject := c.Subject()
			// The fault-free identity run defines the semantics every
			// perturbed run is judged against.
			ref, err := subject.Reference()
			if err != nil {
				t.Fatal(err)
			}
			for pi, prof := range chaosProfiles {
				prof := prof
				faultSeed := mrsim.PerturbSeed(seed, pi)
				t.Run(prof, func(t *testing.T) {
					model, err := mrsim.FaultProfile(prof, faultSeed)
					if err != nil {
						t.Fatal(err)
					}
					subject.Fault = model
					defer func() { subject.Fault = nil }()

					// Identity plan under faults: outputs must match the
					// fault-free reference exactly.
					outs, rep, err := subject.Run(c.Workflow)
					if err != nil {
						t.Fatalf("workflow seed %d, fault seed %d (%s): identity run failed: %v",
							seed, faultSeed, prof, err)
					}
					for id, pairs := range ref {
						if d := mrsim.DiffPairs(pairs, outs[id], 0); d != "" {
							t.Errorf("workflow seed %d, fault seed %d (%s): identity sink %s diverged: %s",
								seed, faultSeed, prof, id, d)
						}
					}
					for _, j := range rep.Jobs {
						totalFailures += j.TaskFailures
						totalSpeculated += j.SpeculativeTasks
					}

					// Optimized plan under the same faults: the oracle's
					// full check (validate, execute, compare every sink).
					if err := subject.CheckPlan(ref, "stubby/"+prof, res.Plan); err != nil {
						t.Errorf("workflow seed %d, fault seed %d: %v", seed, faultSeed, err)
					}
				})
			}
		})
	}
	if totalFailures == 0 {
		t.Error("chaos matrix injected no task failures anywhere; the fault model is not firing")
	}
	if totalSpeculated == 0 {
		t.Error("chaos matrix launched no speculative backups anywhere; speculation is not firing")
	}
}

// TestChaosFaultDeterminismAcrossRuns re-executes one (plan, fault seed)
// pair and requires byte-identical task traces and makespans — the replay
// contract the robustness evaluator depends on.
func TestChaosFaultDeterminismAcrossRuns(t *testing.T) {
	c := gen.Generate(3, gen.Options{})
	model, err := mrsim.FaultProfile("standard", 99)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *mrsim.RunReport {
		eng := mrsim.NewEngine(c.Cluster, c.DFS.Clone())
		eng.Fault = model
		eng.RecordTaskEvents = true
		rep, err := eng.RunWorkflow(c.Workflow)
		if err != nil {
			t.Fatalf("workflow seed 3, fault seed 99: %v", err)
		}
		return rep
	}
	first := run()
	for i := 0; i < 3; i++ {
		again := run()
		if first.Makespan != again.Makespan {
			t.Fatalf("run %d: makespan diverged: %.17g vs %.17g", i, first.Makespan, again.Makespan)
		}
		if string(first.TraceBytes()) != string(again.TraceBytes()) {
			t.Fatalf("run %d: task trace diverged for the same (plan, fault seed)", i)
		}
	}
}
