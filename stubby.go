// Package stubby is a transformation-based, cost-based optimizer for
// MapReduce workflows, reproducing Lim, Herodotou, and Babu, "Stubby: A
// Transformation-based Optimizer for MapReduce Workflows" (PVLDB 5(11),
// 2012), together with the substrate the paper depends on: an executable
// MapReduce runtime simulator with a calibrated cost model, a
// Starfish-style profiler and What-if cost estimator, Recursive Random
// Search for configuration tuning, the comparator optimizers of the
// paper's evaluation (Baseline, Starfish, YSmart, MRShare), and the eight
// evaluation workflows of Table 1.
//
// # Quick start
//
//	wl, _ := stubby.BuildWorkload("BR", stubby.WorkloadOptions{})
//	sess, _ := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithSeed(1))
//	ctx := context.Background()
//	_ = sess.Profile(ctx, wl.Workflow, wl.DFS)
//	res, _ := sess.Optimize(ctx, wl.Workflow)
//	before, _ := sess.Run(ctx, wl.DFS.Clone(), wl.Workflow)
//	after, _ := sess.Run(ctx, wl.DFS.Clone(), res.Plan)
//	fmt.Printf("speedup: %.2fx\n", before.Makespan/after.Makespan)
//
// Session is the primary entry point: a reusable, concurrent-safe facade
// holding the cluster, planner registry, and default options, with
// context-aware (cancellable) and observable methods, plus concurrent
// fan-out over independent workflows via OptimizeAll. The package-level
// Optimize/Run/Profile/EstimateCost functions predate Session and survive
// as thin deprecated wrappers.
//
// # Service API
//
// Session.Submit is the asynchronous face of the same optimizer: it admits
// an OptimizeRequest to a bounded queue and returns an OptimizeHandle with
// State/Progress/Wait/Cancel and a typed Event stream (Events), shedding
// overload with ErrKindOverloaded instead of queueing unbounded work.
// Server exposes that lifecycle over HTTP as versioned JSON documents (the
// stubbyd command), and Client consumes it remotely with the same
// semantics — including the *Error taxonomy, which errors.Is/As resolve
// identically in-process and over the wire. Plans cross the wire
// structure-only (annotations, no function bodies), the paper's Figure 2
// deployment where the optimizer service never sees user code.
//
// The exported identifiers below are aliases into the implementation
// packages, so the whole system is scriptable through this one import.
package stubby

import (
	"context"
	"io"

	"github.com/stubby-mr/stubby/internal/baselines"
	"github.com/stubby-mr/stubby/internal/keyval"
	"github.com/stubby-mr/stubby/internal/lang"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/rrs"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
	"github.com/stubby-mr/stubby/internal/wf"
	"github.com/stubby-mr/stubby/internal/whatif"
	"github.com/stubby-mr/stubby/internal/workloads"
)

// Plan representation (the annotated workflow of Section 2).
type (
	// Workflow is the plan DAG of jobs and datasets plus annotations.
	Workflow = wf.Workflow
	// Job is one MapReduce job vertex.
	Job = wf.Job
	// Dataset is one dataset vertex.
	Dataset = wf.Dataset
	// MapBranch is a map-side pipeline of a job.
	MapBranch = wf.MapBranch
	// ReduceGroup is a reduce-side pipeline of a job.
	ReduceGroup = wf.ReduceGroup
	// Stage is one map or reduce function in a pipeline.
	Stage = wf.Stage
	// Config is a job configuration.
	Config = wf.Config
	// Layout is a dataset physical design.
	Layout = wf.Layout
	// Filter is a filter annotation.
	Filter = wf.Filter
	// JobProfile is a profile annotation.
	JobProfile = wf.JobProfile
	// Emit is the output callback of map and reduce functions.
	Emit = wf.Emit
	// MapFn is the map function signature.
	MapFn = wf.MapFn
	// ReduceFn is the reduce/combine function signature.
	ReduceFn = wf.ReduceFn

	// Tuple is a record key or value.
	Tuple = keyval.Tuple
	// Pair is one key-value record.
	Pair = keyval.Pair
	// Interval is a half-open field interval.
	Interval = keyval.Interval
	// PartitionSpec describes a job's partition function.
	PartitionSpec = keyval.PartitionSpec

	// Cluster describes the simulated cluster and cost calibration.
	Cluster = mrsim.Cluster
	// DFS is the simulated distributed file system.
	DFS = mrsim.DFS
	// RunReport is the result of executing a workflow.
	RunReport = mrsim.RunReport
	// JobReport is one job's execution record.
	JobReport = mrsim.JobReport

	// Options tunes the Stubby optimizer.
	Options = optimizer.Options
	// Result is the optimizer's outcome.
	Result = optimizer.Result
	// Groups selects transformation groups.
	Groups = optimizer.Groups
	// Transformation is a user-defined structural transformation
	// registered through Options.Custom (EXODUS-style extensibility).
	Transformation = optimizer.Transformation
	// Proposal is one plan rewrite offered by a custom Transformation.
	Proposal = optimizer.Proposal

	// Estimate is a What-if cost prediction.
	Estimate = whatif.Estimate
	// Robustness is a plan's Monte-Carlo makespan distribution under a
	// fault model (see Session.Robustness and WithRobustness).
	Robustness = whatif.Robustness
	// RobustnessOptions configures Monte-Carlo robustness evaluation.
	RobustnessOptions = whatif.RobustnessOptions

	// FaultModel perturbs the simulated cluster with task failures,
	// straggler slowdowns, heterogeneous node classes, and speculative
	// re-execution, all deterministic under its seed.
	FaultModel = mrsim.FaultModel
	// NodeClass is one homogeneous node group of a heterogeneous cluster.
	NodeClass = mrsim.NodeClass

	// Planner is the common interface of all compared optimizers.
	Planner = baselines.Planner

	// Workload is one of the paper's evaluation workflows.
	Workload = workloads.Workload
	// WorkloadOptions controls workload construction.
	WorkloadOptions = workloads.Options

	// RRSOptions tunes Recursive Random Search directly.
	RRSOptions = rrs.Options

	// PlanRegistry rebinds black-box stage functions when importing plans.
	PlanRegistry = planio.Registry
)

// Transformation group selectors.
const (
	GroupVertical   = optimizer.GroupVertical
	GroupHorizontal = optimizer.GroupHorizontal
	GroupConfigOnly = optimizer.GroupConfigOnly
	GroupAll        = optimizer.GroupAll
)

// Partition function types.
const (
	HashPartitionType  = keyval.HashPartition
	RangePartitionType = keyval.RangePartition
)

// T builds a tuple from scalar values.
func T(fields ...any) Tuple { return keyval.T(fields...) }

// SortPairs sorts records by the key projection onto fields (nil = whole
// key), breaking ties deterministically.
func SortPairs(pairs []Pair, fields []int) { keyval.SortPairs(pairs, fields) }

// MapStage builds a per-record pipeline stage.
func MapStage(name string, fn MapFn, cpuPerRecord float64) Stage {
	return wf.MapStage(name, fn, cpuPerRecord)
}

// ReduceStage builds a grouped pipeline stage.
func ReduceStage(name string, fn ReduceFn, groupFields []int, cpuPerRecord float64) Stage {
	return wf.ReduceStage(name, fn, groupFields, cpuPerRecord)
}

// DefaultCluster returns the evaluation cluster: 50 nodes x (3 map, 2
// reduce) slots, matching the paper's testbed shape.
func DefaultCluster() *Cluster { return mrsim.DefaultCluster() }

// DefaultConfig returns stock-Hadoop-like job defaults.
func DefaultConfig() Config { return wf.DefaultConfig() }

// NewDFS returns an empty simulated file system.
func NewDFS() *DFS { return mrsim.NewDFS() }

// IngestSpec tells Ingest how to lay out a base dataset.
type IngestSpec = mrsim.IngestSpec

// Run executes the workflow on the cluster over the DFS, materializing all
// outputs and returning simulated timings.
//
// Deprecated: use Session.Run, which supports cancellation and progress
// observation. This wrapper delegates to a throwaway session.
func Run(c *Cluster, dfs *DFS, w *Workflow) (*RunReport, error) {
	s, err := NewSession(WithCluster(c))
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, "run", w.Name, err)
	}
	defer s.Close(context.Background())
	return s.Run(context.Background(), dfs, w)
}

// Profile attaches profile annotations to every job of w by executing it
// over a deterministic sample (fraction in (0,1]) of the base data, and
// fills dataset size/layout annotations from the DFS.
//
// Deprecated: use Session.Profile with WithProfileFraction and WithSeed.
// This wrapper delegates to a throwaway session.
func Profile(c *Cluster, w *Workflow, dfs *DFS, fraction float64, seed int64) error {
	s, err := NewSession(WithCluster(c), WithProfileFraction(fraction), WithSeed(seed))
	if err != nil {
		return stubbyerr.WithKind(stubbyerr.KindInvalid, "profile", w.Name, err)
	}
	defer s.Close(context.Background())
	return s.Profile(context.Background(), w, dfs)
}

// Optimize runs the Stubby optimizer and returns the optimized plan with
// its search trace. The input plan is left unmodified.
//
// Deprecated: use Session.Optimize, which supports cancellation, progress
// observation, named planners, and concurrent fan-out (OptimizeAll). This
// wrapper delegates to a throwaway session.
func Optimize(c *Cluster, w *Workflow, opt Options) (*Result, error) {
	s, err := NewSession(WithCluster(c), WithOptimizerOptions(opt))
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, "optimize", w.Name, err)
	}
	defer s.Close(context.Background())
	return s.Optimize(context.Background(), w)
}

// EstimateCost runs the What-if engine on an annotated plan.
//
// Deprecated: use Session.Estimate. This wrapper delegates to a throwaway
// session.
func EstimateCost(c *Cluster, w *Workflow) (*Estimate, error) {
	s, err := NewSession(WithCluster(c))
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, "estimate", w.Name, err)
	}
	defer s.Close(context.Background())
	return s.Estimate(context.Background(), w)
}

// FaultProfile returns a named standard fault model ("standard",
// "failures", "stragglers") rooted at the given seed — the profiles the
// CLIs and the benchmark's robustness rows use.
func FaultProfile(name string, seed int64) (*FaultModel, error) {
	return mrsim.FaultProfile(name, seed)
}

// BuildWorkload constructs one of the paper's eight evaluation workflows
// ("IR", "SN", "LA", "WG", "BA", "BR", "PJ", "US") with generated data.
func BuildWorkload(abbr string, opt WorkloadOptions) (*Workload, error) {
	return workloads.Build(abbr, opt)
}

// Workloads lists the evaluation workflow abbreviations in Table 1 order.
func Workloads() []string { return workloads.Abbrs() }

// Comparator planners from the paper's evaluation (Section 7.3).

// NewBaseline returns the production Baseline planner (Pig rules).
func NewBaseline(c *Cluster) Planner { return baselines.Baseline{Cluster: c} }

// NewStarfish returns the cost-based configuration-only planner.
func NewStarfish(c *Cluster, seed int64) Planner { return baselines.Starfish{Cluster: c, Seed: seed} }

// NewYSmart returns the rule-based packing planner.
func NewYSmart(c *Cluster) Planner { return baselines.YSmart{Cluster: c} }

// NewMRShare returns the cost-based horizontal-packing planner.
func NewMRShare(c *Cluster, seed int64) Planner { return baselines.MRShare{Cluster: c, Seed: seed} }

// NewStubbyPlanner adapts the Stubby optimizer (full or restricted to one
// transformation group) to the Planner interface.
func NewStubbyPlanner(c *Cluster, groups Groups, seed int64, label string) Planner {
	return baselines.StubbyPlanner{Cluster: c, Groups: groups, Seed: seed, Label: label}
}

// Plan import/export (the paper's Section 6 feature for moving annotated
// workflows between workflow generators and Stubby).

// NewPlanRegistry returns an empty registry for rebinding stage functions
// on plan import.
func NewPlanRegistry() *PlanRegistry { return planio.NewRegistry() }

// ExportPlan writes the annotated plan as a versioned JSON document.
// Function bodies are black boxes and are referenced by stage name only.
func ExportPlan(w io.Writer, plan *Workflow) error { return planio.EncodeTo(w, plan) }

// ImportPlan reads a plan document and rebinds every stage function through
// the registry, yielding an executable plan.
func ImportPlan(r io.Reader, reg *PlanRegistry) (*Workflow, error) {
	return planio.DecodeFrom(r, reg)
}

// ImportPlanStructure reads a plan document without binding functions. The
// result carries all annotations and can be costed and optimized — Stubby
// never invokes the functions — but executing it panics.
func ImportPlanStructure(r io.Reader) (*Workflow, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return planio.DecodeStructure(data)
}

// Compose merges independently developed workflows into one plan, stitching
// producer-consumer relationships by shared dataset IDs (the Oozie/EMR
// composition style of Section 1). Use Workflow.Namespace first when
// components reuse job or dataset IDs.
func Compose(name string, parts ...*Workflow) (*Workflow, error) {
	return wf.Compose(name, parts...)
}

// Query interface (the role Pig Latin plays in Figure 2): compile dataflow
// queries to annotated workflows; schema, filter, and dataset annotations
// are derived from the query automatically (Section 6).

// QueryScript is a parsed query.
type QueryScript = lang.Script

// ParseQuery parses query source without compiling it.
func ParseQuery(src string) (*QueryScript, error) { return lang.Parse(src) }

// CompileQuery parses and compiles a dataflow query against the given base
// dataset descriptors into an annotated, unoptimized MapReduce workflow.
// See the internal/lang package documentation for the language reference.
func CompileQuery(src string, bases []*Dataset, name string) (*Workflow, error) {
	return lang.CompileString(src, bases, lang.Options{Name: name})
}
