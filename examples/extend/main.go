// Extend: add a custom transformation to Stubby's plan space, exercising
// the EXODUS-style extensibility the paper claims for the optimizer
// ("Stubby allows new transformations to be added to extend the
// optimizer's functionality easily", Section 1).
//
// The scenario is the User-defined Logical Splits workload (Section 7.1):
// a producer job feeds two consumers that each analyze a disjoint key
// range. Stubby's built-in partition function transformation derives range
// split points from profile key samples; here we pretend that machinery is
// unavailable (Options.DisablePartition, as in the MRShare comparator) and
// instead register a custom transformation that contributes split points
// from operator domain knowledge — "orders arrive in blocks of 100". The
// custom proposal competes on estimated cost like any built-in and, when
// adopted, enables partition pruning at the consumers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/stubby-mr/stubby"
)

// domainSplitPoints proposes range partitioning with fixed, operator-known
// split points for every reduce group whose output feeds filtered
// consumers. It never invents information: the proposal is checked against
// the group's partition constraints by the transformation machinery, and
// the optimizer adopts it only if the What-if estimate improves.
type domainSplitPoints struct {
	// Field is the key field the domain knowledge applies to.
	Field string
	// Points are the known block boundaries.
	Points []stubby.Tuple
}

func (d domainSplitPoints) Name() string { return "domain-split-points" }

func (d domainSplitPoints) Apply(plan *stubby.Workflow, unitJobs []string) []stubby.Proposal {
	var out []stubby.Proposal
	for _, id := range unitJobs {
		j := plan.Job(id)
		if j == nil {
			continue
		}
		for gi := range j.ReduceGroups {
			g := &j.ReduceGroups[gi]
			// Only groups keyed on the known field, currently
			// hash-partitioned, with at least one filtered consumer.
			if len(g.KeyIn) == 0 || g.KeyIn[0] != d.Field || g.Part.SplitPoints != nil {
				continue
			}
			filtered := false
			for _, jc := range plan.Consumers(g.Output) {
				for _, b := range jc.MapBranches {
					if b.Input == g.Output && b.Filter != nil && b.Filter.Field == d.Field {
						filtered = true
					}
				}
			}
			if !filtered {
				continue
			}
			p := plan.Clone()
			pg := p.Job(id).Group(g.Tag)
			pg.Part.Type = stubby.RangePartitionType
			pg.Part.KeyFields = []int{0}
			pg.Part.SortFields = nil
			pg.Part.SplitPoints = clonePoints(d.Points)
			out = append(out, stubby.Proposal{
				Plan: p,
				Desc: fmt.Sprintf("domain-split-points(%s#%d)", id, g.Tag),
			})
		}
	}
	return out
}

func clonePoints(points []stubby.Tuple) []stubby.Tuple {
	out := make([]stubby.Tuple, len(points))
	for i, p := range points {
		out[i] = append(stubby.Tuple(nil), p...)
	}
	return out
}

func main() {
	// --- the US-style workload: producer + two range-filtered consumers --
	rng := rand.New(rand.NewSource(3))
	var rows []stubby.Pair
	for i := 0; i < 60000; i++ {
		rows = append(rows, stubby.Pair{
			Key:   stubby.T(int64(rng.Intn(1000))), // order in [0, 1000)
			Value: stubby.T(float64(rng.Intn(500))),
		})
	}
	dfs := stubby.NewDFS()
	if err := dfs.Ingest("events", rows, stubby.IngestSpec{
		NumPartitions: 24,
		KeyFields:     []string{"ord"},
		Layout:        stubby.Layout{PartFields: []string{"ord"}},
	}); err != nil {
		log.Fatal(err)
	}

	bases := []*stubby.Dataset{{
		ID: "events", Base: true,
		KeyFields:   []string{"ord"},
		ValueFields: []string{"amount"},
	}}
	// The producer is a full sort of the events by order id — a job that
	// must use range partitioning (the compiler pins it with a partition
	// constraint) but has no split points, so without further help it runs
	// as a single reduce partition. The two consumers each analyze a
	// disjoint order range of the sorted output.
	w, err := stubby.CompileQuery(`
		e = LOAD 'events';
		pre = ORDER e BY ord;
		SPLIT pre INTO young IF ord < 100, rest IF ord >= 100;
		gy = GROUP young BY ord;
		ay = FOREACH gy GENERATE group, COUNT(*) AS n, SUM(amount) AS total;
		gr = GROUP rest BY ord;
		ar = FOREACH gr GENERATE group, COUNT(*) AS n, MAX(amount) AS top;
		STORE ay INTO 'young_stats';
		STORE ar INTO 'rest_stats';
	`, bases, "splits")
	if err != nil {
		log.Fatal(err)
	}

	cluster := stubby.DefaultCluster()
	cluster.VirtualScale = 40000
	if err := stubby.Profile(cluster, w, dfs, 0.5, 1); err != nil {
		log.Fatal(err)
	}

	// Domain knowledge: orders arrive in blocks of 100.
	var points []stubby.Tuple
	for b := int64(100); b < 1000; b += 100 {
		points = append(points, stubby.T(b))
	}
	custom := domainSplitPoints{Field: "ord", Points: points}

	optimize := func(opt stubby.Options) float64 {
		res, err := stubby.Optimize(cluster, w, opt)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := stubby.Run(cluster, dfs.Clone(), res.Plan)
		if err != nil {
			log.Fatal(err)
		}
		return rep.Makespan
	}

	withoutExt := optimize(stubby.Options{Seed: 1, DisablePartition: true})
	withExt := optimize(stubby.Options{Seed: 1, DisablePartition: true,
		Custom: []stubby.Transformation{custom}})

	fmt.Printf("optimizer without the extension: %8.1fs simulated\n", withoutExt)
	fmt.Printf("optimizer with domain-split-points: %6.1fs simulated (%.2fx)\n",
		withExt, withoutExt/withExt)
	fmt.Println("the custom proposal wins only where the What-if estimate improves —")
	fmt.Println("the same cost-based adoption rule the built-in transformations face")
}
