// Query: generate a MapReduce workflow from a dataflow query (the role Pig
// Latin plays in the paper's Figure 2) and let Stubby optimize it.
//
// The query is a small business report over a lineitem-like table: two
// filtered group-aggregates over the same source plus a top-5 ranking —
// the shape of the paper's Business Report Generation workload. The
// compiler derives the schema, filter, and dataset annotations from the
// query (Section 6), which is exactly the information Stubby's vertical
// packing, horizontal packing, and partition/configuration transformations
// need.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/stubby-mr/stubby"
)

const report = `
	li     = LOAD 'lineitem';

	-- two disjoint slices of the order range, analyzed differently
	SPLIT li INTO recent IF ord >= 6000, old IF ord < 6000;

	g1     = GROUP recent BY part;
	parts  = FOREACH g1 GENERATE group, COUNT(*) AS n, SUM(price) AS revenue;

	g2     = GROUP old BY supp;
	supps  = FOREACH g2 GENERATE group, COUNT(*) AS n, MAX(price) AS top_price;

	-- rank recent parts by revenue
	byrev  = ORDER parts BY revenue DESC;
	top5   = LIMIT byrev 5;

	STORE parts INTO 'part_report';
	STORE supps INTO 'supp_report';
	STORE top5  INTO 'top_parts';
`

func main() {
	// --- generate the lineitem table ------------------------------------
	rng := rand.New(rand.NewSource(11))
	var rows []stubby.Pair
	for i := 0; i < 80000; i++ {
		rows = append(rows, stubby.Pair{
			Key: stubby.T(int64(rng.Intn(10000))), // ord
			Value: stubby.T(
				int64(rng.Intn(400)),        // part
				int64(rng.Intn(50)),         // supp
				float64(rng.Intn(900))+0.99, // price
			),
		})
	}
	dfs := stubby.NewDFS()
	if err := dfs.Ingest("lineitem", rows, stubby.IngestSpec{
		NumPartitions: 24,
		KeyFields:     []string{"ord"},
		Layout:        stubby.Layout{PartFields: []string{"ord"}},
	}); err != nil {
		log.Fatal(err)
	}

	// --- compile the query to an annotated workflow ---------------------
	bases := []*stubby.Dataset{{
		ID: "lineitem", Base: true,
		KeyFields:   []string{"ord"},
		ValueFields: []string{"part", "supp", "price"},
	}}
	w, err := stubby.CompileQuery(report, bases, "report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled plan (unoptimized, as a query front-end emits it):")
	fmt.Print(w.Summary())

	// --- profile, optimize, execute -------------------------------------
	cluster := stubby.DefaultCluster()
	cluster.VirtualScale = 40000

	if err := stubby.Profile(cluster, w, dfs, 0.5, 1); err != nil {
		log.Fatal(err)
	}
	res, err := stubby.Optimize(cluster, w, stubby.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimized plan:")
	fmt.Print(res.Plan.Summary())

	before, err := stubby.Run(cluster, dfs.Clone(), w)
	if err != nil {
		log.Fatal(err)
	}
	outDFS := dfs.Clone()
	after, err := stubby.Run(cluster, outDFS, res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated runtime: %.1fs -> %.1fs (%.2fx speedup)\n",
		before.Makespan, after.Makespan, before.Makespan/after.Makespan)

	// --- show the ranked result -----------------------------------------
	top, _ := outDFS.Get("top_parts")
	fmt.Println("top parts by recent revenue:")
	pairs := top.AllPairs()
	stubby.SortPairs(pairs, nil)
	for _, p := range pairs {
		// top_parts records: key (rank), value (part, n, revenue)
		fmt.Printf("  #%d part=%v revenue=%.2f\n", p.Key[0], p.Value[0], p.Value[2])
	}
}
