// TPC-H: the Business Analytics Query workflow (TPC-H Q17, Section 7.1)
// compared across every optimizer of the paper's evaluation: the Pig-style
// Baseline, Starfish (configuration only), YSmart (rule-based packing),
// MRShare (cost-based horizontal packing), and full Stubby.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/stubby-mr/stubby"
)

func main() {
	wl, err := stubby.BuildWorkload("BA", stubby.WorkloadOptions{SizeFactor: 0.25, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s): %.0f GB of simulated lineitem/part data, co-partitioned on partID\n\n",
		wl.Abbr, wl.Title, wl.PaperGB)
	if err := stubby.Profile(wl.Cluster, wl.Workflow, wl.DFS, 0.5, 3); err != nil {
		log.Fatal(err)
	}
	planners := []stubby.Planner{
		stubby.NewBaseline(wl.Cluster),
		stubby.NewStarfish(wl.Cluster, 3),
		stubby.NewYSmart(wl.Cluster),
		stubby.NewMRShare(wl.Cluster, 3),
		stubby.NewStubbyPlanner(wl.Cluster, stubby.GroupAll, 3, "Stubby"),
	}
	var baseline float64
	for _, p := range planners {
		t0 := time.Now()
		plan, err := p.Plan(wl.Workflow)
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		opt := time.Since(t0)
		rep, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), plan)
		if err != nil {
			log.Fatalf("%s plan failed: %v", p.Name(), err)
		}
		if baseline == 0 {
			baseline = rep.Makespan
		}
		fmt.Printf("%-10s %d jobs  %8.1fs simulated  %5.2fx vs Baseline  (optimizer ran %v)\n",
			p.Name(), len(plan.Jobs), rep.Makespan, baseline/rep.Makespan, opt.Round(time.Millisecond))
	}
}
