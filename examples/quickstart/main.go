// Quickstart: build a two-job MapReduce workflow with the public API,
// profile it, optimize it with Stubby, and execute both plans on the
// simulated cluster.
//
// The workflow groups order line items by (order, zip) and sums prices
// (J5-style), then finds the maximum zip-total per order (J7-style) — the
// J5/J7 pair of the paper's running example (Figure 1/Figure 4). Stubby
// discovers that the second job's grouping key {order} flows unchanged
// through the first job's reduce, rewrites the first job's partition
// function to hash(order)/sort(order, zip), and packs both jobs into one,
// eliminating the intermediate dataset and its shuffle.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"github.com/stubby-mr/stubby"
)

func main() {
	// --- generate a base dataset: key (order), value (zip, price) -----
	rng := rand.New(rand.NewSource(7))
	var pairs []stubby.Pair
	for i := 0; i < 40000; i++ {
		pairs = append(pairs, stubby.Pair{
			Key:   stubby.T(int64(rng.Intn(2000))),
			Value: stubby.T(int64(rng.Intn(100)), float64(rng.Intn(500))),
		})
	}
	dfs := stubby.NewDFS()
	if err := dfs.Ingest("orders", pairs, stubby.IngestSpec{
		NumPartitions: 24,
		KeyFields:     []string{"order"},
		Layout:        stubby.Layout{PartFields: []string{"order"}, SortFields: []string{"order"}},
	}); err != nil {
		log.Fatal(err)
	}

	// --- define the workflow ------------------------------------------
	sumByZip := stubby.ReduceStage("R_sum", func(k stubby.Tuple, vs []stubby.Tuple, emit stubby.Emit) {
		var s float64
		for _, v := range vs {
			s += v[0].(float64)
		}
		emit(k, stubby.T(s))
	}, nil, 1e-6)
	maxPerOrder := stubby.ReduceStage("R_max", func(k stubby.Tuple, vs []stubby.Tuple, emit stubby.Emit) {
		var m float64
		for _, v := range vs {
			if v[0].(float64) > m {
				m = v[0].(float64)
			}
		}
		emit(k, stubby.T(m))
	}, nil, 1e-6)

	w := &stubby.Workflow{
		Name: "quickstart",
		Jobs: []*stubby.Job{
			{
				ID: "J_sum", Config: stubby.DefaultConfig(), Origin: []string{"J_sum"},
				MapBranches: []stubby.MapBranch{{
					Tag: 0, Input: "orders",
					Stages: []stubby.Stage{stubby.MapStage("M_regroup",
						func(k, v stubby.Tuple, emit stubby.Emit) {
							emit(stubby.T(k[0], v[0]), stubby.T(v[1]))
						}, 1e-6)},
					KeyIn: []string{"order"}, ValIn: []string{"zip", "price"},
					KeyOut: []string{"order", "zip"}, ValOut: []string{"price"},
				}},
				ReduceGroups: []stubby.ReduceGroup{{
					Tag: 0, Output: "zip_totals",
					Stages: []stubby.Stage{sumByZip},
					KeyIn:  []string{"order", "zip"}, ValIn: []string{"price"},
					KeyOut: []string{"order", "zip"}, ValOut: []string{"total"},
				}},
			},
			{
				ID: "J_max", Config: stubby.DefaultConfig(), Origin: []string{"J_max"},
				MapBranches: []stubby.MapBranch{{
					Tag: 0, Input: "zip_totals",
					Stages: []stubby.Stage{stubby.MapStage("M_rekey",
						func(k, v stubby.Tuple, emit stubby.Emit) {
							emit(stubby.T(k[0]), v)
						}, 1e-6)},
					KeyIn: []string{"order", "zip"}, ValIn: []string{"total"},
					KeyOut: []string{"order"}, ValOut: []string{"total"},
				}},
				ReduceGroups: []stubby.ReduceGroup{{
					Tag: 0, Output: "order_max",
					Stages: []stubby.Stage{maxPerOrder},
					KeyIn:  []string{"order"}, ValIn: []string{"total"},
					KeyOut: []string{"order"}, ValOut: []string{"max"},
				}},
			},
		},
		Datasets: []*stubby.Dataset{
			{ID: "orders", Base: true, KeyFields: []string{"order"}, ValueFields: []string{"zip", "price"}},
			{ID: "zip_totals", KeyFields: []string{"order", "zip"}, ValueFields: []string{"total"}},
			{ID: "order_max", KeyFields: []string{"order"}, ValueFields: []string{"max"}},
		},
	}

	// --- profile, optimize, execute ------------------------------------
	cluster := stubby.DefaultCluster()
	cluster.VirtualScale = 50000 // each record stands for 50k records

	// Start from a production-style configuration so the measured gain
	// reflects the packing decision rather than untuned defaults.
	for _, j := range w.Jobs {
		j.Config.NumReduceTasks = cluster.TotalReduceSlots() * 9 / 10
	}

	// A Session holds the cluster, planner registry, and defaults; its
	// methods take a context so long searches and runs are cancellable.
	ctx := context.Background()
	sess, err := stubby.NewSession(
		stubby.WithCluster(cluster),
		stubby.WithSeed(1),
		stubby.WithProfileFraction(0.5),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Profile(ctx, w, dfs); err != nil {
		log.Fatal(err)
	}
	res, err := sess.Optimize(ctx, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("original plan:")
	fmt.Print(w.Summary())
	fmt.Println("optimized plan:")
	fmt.Print(res.Plan.Summary())

	before, err := sess.Run(ctx, dfs.Clone(), w)
	if err != nil {
		log.Fatal(err)
	}
	after, err := sess.Run(ctx, dfs.Clone(), res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated runtime: %.1fs -> %.1fs (%.2fx speedup)\n",
		before.Makespan, after.Makespan, before.Makespan/after.Makespan)
}
