// Loganalysis: the Log Analysis workflow (Pavlo et al.'s complex join
// task, Section 7.1), highlighting two information-driven optimizations:
// partition pruning against the uservisits date filter (the base dataset is
// range partitioned on date, and the join's filter annotation lets the
// runtime skip partitions outside the requested quarter), and inter-job
// vertical packing of the map-only re-key job into the per-user aggregate.
package main

import (
	"fmt"
	"log"

	"github.com/stubby-mr/stubby"
)

func main() {
	wl, err := stubby.BuildWorkload("LA", stubby.WorkloadOptions{SizeFactor: 0.25, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s): %.0f GB simulated\n\n", wl.Abbr, wl.Title, wl.PaperGB)
	if err := stubby.Profile(wl.Cluster, wl.Workflow, wl.DFS, 0.5, 5); err != nil {
		log.Fatal(err)
	}

	fmt.Println("original plan:")
	fmt.Print(wl.Workflow.Summary())

	res, err := stubby.Optimize(wl.Cluster, wl.Workflow, stubby.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimized plan:")
	fmt.Print(res.Plan.Summary())

	// Reference point: the production Baseline (Pig rules + rule-of-thumb
	// configuration), as in the paper's evaluation.
	basePlan, err := stubby.NewBaseline(wl.Cluster).Plan(wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}
	before, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), basePlan)
	if err != nil {
		log.Fatal(err)
	}
	after, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), res.Plan)
	if err != nil {
		log.Fatal(err)
	}

	// Partition pruning at work: the date filter on uservisits lets the
	// join skip partitions outside the requested date range.
	var prunedBefore, prunedAfter int
	for _, j := range before.Jobs {
		prunedBefore += j.PrunedPartitions
	}
	for _, j := range after.Jobs {
		prunedAfter += j.PrunedPartitions
	}
	fmt.Printf("\npartitions pruned: %d (baseline) / %d (optimized)\n", prunedBefore, prunedAfter)
	fmt.Printf("simulated runtime: %.1fs (baseline) -> %.1fs (%.2fx speedup)\n",
		before.Makespan, after.Makespan, before.Makespan/after.Makespan)

	// The top-revenue user survives optimization byte-for-byte.
	dfs := wl.DFS.Clone()
	if _, err := stubby.Run(wl.Cluster, dfs, res.Plan); err != nil {
		log.Fatal(err)
	}
	if stored, ok := dfs.Get("topuser"); ok {
		for _, p := range stored.AllPairs() {
			fmt.Printf("top user: id=%v, total revenue=%.2f\n", p.Value[1], p.Value[0])
		}
	}
}
