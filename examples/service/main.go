// Service example: run Stubby as a job service and optimize over the
// wire. The program stands up a stubbyd-style HTTP server in-process,
// profiles the paper's BR workload locally, submits it through
// stubby.Client, streams the typed event feed, and prints the optimized
// plan — the exact flow of `stubbyd -addr :8080` plus
// `stubby -workload BR -remote http://localhost:8080`, in one process.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"github.com/stubby-mr/stubby"
)

func main() {
	ctx := context.Background()

	// --- the service side: a session behind an HTTP front end ---------
	serverSess, err := stubby.NewSession(
		stubby.WithSeed(1),
		stubby.WithQueueDepth(16),
		stubby.WithEstimateCache(stubby.NewEstimateCache(0)),
	)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := stubby.NewServer(serverSess)
	httpSrv := &http.Server{Handler: srv}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("stubbyd serving on %s\n", base)

	// --- the submitter side: profile locally, optimize remotely -------
	wl, err := stubby.BuildWorkload("BR", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	localSess, err := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := localSess.Profile(ctx, wl.Workflow, wl.DFS); err != nil {
		log.Fatal(err)
	}

	client, err := stubby.NewClient(base)
	if err != nil {
		log.Fatal(err)
	}
	job, err := client.Submit(ctx, stubby.OptimizeRequest{
		Workflow: wl.Workflow,
		Planner:  "stubby",
		Seed:     1,
		Cluster:  wl.Cluster,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s as %s\n", wl.Abbr, job.ID())

	events, err := job.Events(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for ev := range events {
		switch e := ev.(type) {
		case stubby.StateChangedEvent:
			fmt.Printf("  state: %s\n", e.State)
		case stubby.UnitStartedEvent:
			fmt.Printf("  unit %d (%s): %v\n", e.Unit, e.Phase, e.Jobs)
		case stubby.BestCostImprovedEvent:
			fmt.Printf("  unit %d: best <- %s (%.1f)\n", e.Unit, e.Desc, e.Cost)
		}
	}

	res, err := job.Result(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote plan: %d jobs, estimated makespan %.1f\n",
		len(res.Plan.Jobs), res.EstimatedCost)
	fmt.Print(res.Plan.Summary())

	// --- graceful drain, as stubbyd does on SIGTERM --------------------
	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Print(err)
	}
	_ = httpSrv.Shutdown(drainCtx)
	fmt.Println("drained")
}
