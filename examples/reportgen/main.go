// Reportgen: the paper's running example (Figure 1 / Section 7.1's
// Business Report Generation workflow). A seven-job report-generation
// workflow — scan, two filtered group-aggregates, two rollups, two
// distinct-count jobs — is collapsed by Stubby's vertical and horizontal
// packing into a far shorter plan, demonstrating the paper's headline
// claim that the seven-job workflow becomes an equivalent two-to-three-job
// workflow with a large speedup.
package main

import (
	"fmt"
	"log"

	"github.com/stubby-mr/stubby"
)

func main() {
	wl, err := stubby.BuildWorkload("BR", stubby.WorkloadOptions{SizeFactor: 0.25, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s): %.0f GB of simulated data\n", wl.Abbr, wl.Title, wl.PaperGB)

	if err := stubby.Profile(wl.Cluster, wl.Workflow, wl.DFS, 0.5, 7); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noriginal plan:")
	fmt.Print(wl.Workflow.Summary())

	res, err := stubby.Optimize(wl.Cluster, wl.Workflow, stubby.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimized plan:")
	fmt.Print(res.Plan.Summary())
	fmt.Printf("optimization took %v over %d optimization units\n\n",
		res.Duration.Round(1e6), len(res.Units))

	// Show the search: which transformations each unit considered.
	for i, u := range res.Units {
		fmt.Printf("unit %d (%s phase): producers=%v consumers=%v, %d subplans, chose %q\n",
			i, u.Phase, u.Producers, u.Consumers, len(u.Subplans),
			u.Subplans[u.ChosenIdx].Description)
	}

	basePlan, err := stubby.NewBaseline(wl.Cluster).Plan(wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}
	before, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), basePlan)
	if err != nil {
		log.Fatal(err)
	}
	after, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d jobs -> %d jobs; simulated runtime %.1fs (baseline) -> %.1fs (%.2fx speedup)\n",
		len(wl.Workflow.Jobs), len(res.Plan.Jobs),
		before.Makespan, after.Makespan, before.Makespan/after.Makespan)
}
