package stubby

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/service"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
	"github.com/stubby-mr/stubby/internal/wf"
)

// deadlineHeader carries a submission's remaining time budget (integer
// milliseconds) from client to server; the server turns it into an
// absolute execution deadline on the job (and journals it, so a recovered
// job keeps its deadline).
const deadlineHeader = "X-Stubby-Deadline-MS"

// Server exposes a Session's Submit lifecycle over HTTP — the handler
// behind the stubbyd command, embeddable in any mux. The API is versioned
// JSON over five routes:
//
//	POST /v1/jobs              submit an optimize-request document → 202 {id, state}
//	GET  /v1/jobs/{id}         status + progress snapshot
//	GET  /v1/jobs/{id}/result  optimize-result document (409 until done)
//	POST /v1/jobs/{id}/cancel  request cancellation
//	GET  /v1/jobs/{id}/events  NDJSON event stream (?from=N resumes at line N)
//	GET  /healthz              liveness + queue shape (200 even while draining)
//	GET  /readyz               readiness (503 the moment Drain begins)
//	GET  /statsz               queue/estimate-cache/plan-store/journal counters
//
// Errors travel as {"error": {kind, op, workflow, job, message}} with the
// kind-appropriate HTTP status (429 overloaded, 503 draining, 404 unknown
// job, 409 not finished, ...); Client reconstructs them into *Error, so
// errors.Is/As work identically over the wire.
type Server struct {
	sess        *Session
	mux         *http.ServeMux
	maxBody     int64
	retain      int
	retryPerJob time.Duration
	journal     *Journal     // durable job journal (WithJournal), nil without one
	coordinator *Coordinator // cluster dispatch (WithCoordinator), nil without one
	draining    atomic.Bool

	mu       sync.RWMutex
	jobs     map[string]*OptimizeHandle
	order    []string          // submission order, for terminal-handle pruning
	inflight map[string]string // request fingerprint → live job ID (journaled servers)
}

// ServerOption configures a Server under construction.
type ServerOption func(*Server)

// WithMaxRequestBytes bounds the accepted request-document size (default
// 256 MiB — annotated plans carry profiles and key samples).
func WithMaxRequestBytes(n int64) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithJobRetention bounds how many finished (done/failed/canceled) jobs
// the server keeps queryable (default 1024). When a submission would
// exceed the bound, the oldest finished jobs — with their event logs and
// results — are forgotten; queued and running jobs are never evicted.
func WithJobRetention(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.retain = n
		}
	}
}

// DefaultRetryAfterPerJob is the per-outstanding-job pause Retry-After
// hints are derived from when WithRetryAfterPerJob is not given.
const DefaultRetryAfterPerJob = time.Second

// WithRetryAfterPerJob sets how much Retry-After time each outstanding job
// (queued or running) contributes when the server sheds a submission or
// rejects during drain: a loaded queue tells clients to back off longer, an
// empty one invites a quick retry. The derived hint is clamped to [1, 60]
// whole seconds; d <= 0 restores DefaultRetryAfterPerJob.
func WithRetryAfterPerJob(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.retryPerJob = d
		}
	}
}

// NewServer builds the HTTP front end of sess. Job state is in-memory,
// like the queue: a restarted server forgets finished jobs, and a
// long-lived one retains only the WithJobRetention most recent finished
// jobs.
func NewServer(sess *Session, opts ...ServerOption) *Server {
	s := &Server{
		sess:        sess,
		mux:         http.NewServeMux(),
		maxBody:     256 << 20,
		retain:      1024,
		retryPerJob: DefaultRetryAfterPerJob,
		jobs:        make(map[string]*OptimizeHandle),
		inflight:    make(map[string]string),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	if s.journal != nil {
		s.recoverJournaled()
	}
	return s
}

// adopt registers a freshly submitted (or recovered) handle for lookup,
// indexes its fingerprint as in-flight, and — on journaled servers —
// starts the watcher that journals its lifecycle transitions.
func (s *Server) adopt(h *OptimizeHandle, key string) {
	s.mu.Lock()
	s.jobs[h.ID()] = h
	s.order = append(s.order, h.ID())
	if s.journal != nil && key != "" {
		s.inflight[key] = h.ID()
	}
	s.pruneLocked()
	s.mu.Unlock()
	if s.journal != nil {
		go s.watch(h, key)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain gracefully shuts the service down (stubbyd calls it on SIGTERM):
// new submissions are rejected with ErrKindUnavailable, and Drain waits
// for every admitted job to finish. If ctx ends first, all unfinished
// jobs are canceled and Drain keeps waiting for the (now prompt) unwind
// on a background context.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if err := s.sess.Close(ctx); err == nil {
		return nil
	}
	for _, h := range s.handles() {
		h.Cancel()
	}
	return s.sess.Close(context.Background())
}

func (s *Server) handles() []*OptimizeHandle {
	s.mu.RLock()
	defer s.mu.RUnlock()
	hs := make([]*OptimizeHandle, 0, len(s.jobs))
	for _, h := range s.jobs {
		hs = append(hs, h)
	}
	return hs
}

func (s *Server) lookup(r *http.Request) (*OptimizeHandle, error) {
	id := r.PathValue("id")
	s.mu.RLock()
	h, ok := s.jobs[id]
	s.mu.RUnlock()
	if !ok {
		return nil, stubbyerr.New(stubbyerr.KindNotFound, "lookup", "", "", "unknown job %q", id)
	}
	return h, nil
}

// kindStatus maps error kinds onto HTTP statuses.
func kindStatus(k ErrorKind) int {
	switch k {
	case stubbyerr.KindInvalid, stubbyerr.KindUnknownPlanner:
		return http.StatusBadRequest
	case stubbyerr.KindOverloaded:
		return http.StatusTooManyRequests
	case stubbyerr.KindUnavailable:
		return http.StatusServiceUnavailable
	case stubbyerr.KindNotFound:
		return http.StatusNotFound
	case stubbyerr.KindConflict, stubbyerr.KindCanceled:
		return http.StatusConflict
	case stubbyerr.KindDeadline:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSecs derives the Retry-After hint from the queue's current
// occupancy: every outstanding job (queued or running) contributes
// retryPerJob of expected wait, so a loaded server tells clients to back
// off proportionally instead of hammering it at a fixed cadence. Clamped
// to [1, 60] whole seconds (the header carries integer seconds).
func (s *Server) retryAfterSecs() int {
	q := s.sess.jobQueue()
	wait := time.Duration(q.Queued()+q.Busy()) * s.retryPerJob
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	doc := planio.NewErrorDoc(err)
	w.Header().Set("Content-Type", "application/json")
	kind := stubbyerr.ParseKind(doc.Kind)
	// Shed (429) and drain (503) rejections are retryable by construction;
	// Retry-After tells well-behaved clients when — proportionally to the
	// work outstanding — and Client maps it into its backoff schedule.
	if kind == stubbyerr.KindOverloaded || kind == stubbyerr.KindUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
	}
	w.WriteHeader(kindStatus(kind))
	_ = json.NewEncoder(w).Encode(planio.ErrorEnvelope{Error: doc})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, stubbyerr.New(stubbyerr.KindUnavailable, "submit", "", "",
			"server is draining"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		s.writeError(w, stubbyerr.WithKind(stubbyerr.KindInvalid, "submit", "", err))
		return
	}
	if int64(len(body)) > s.maxBody {
		s.writeError(w, stubbyerr.New(stubbyerr.KindInvalid, "submit", "", "",
			"request body exceeds %d bytes", s.maxBody))
		return
	}
	req, err := planio.DecodeRequest(body)
	if err != nil {
		s.writeError(w, stubbyerr.WithKind(stubbyerr.KindInvalid, "submit", "", err))
		return
	}
	oreq := OptimizeRequest{
		Workflow:           req.Plan,
		Planner:            req.Planner,
		Seed:               req.Seed,
		Cluster:            req.Cluster,
		DisableIncremental: req.DisableIncremental,
	}
	// A client that set a context deadline propagates the remaining budget
	// over the wire; the job's execution context expires with it.
	if ms := r.Header.Get(deadlineHeader); ms != "" {
		if v, perr := strconv.ParseInt(ms, 10, 64); perr == nil && v > 0 {
			oreq.deadline = time.Now().Add(time.Duration(v) * time.Millisecond)
		}
	}
	var key string
	if s.journal != nil {
		// Idempotent admission: a fingerprint already in flight means this
		// submission is a retry (or a concurrent duplicate) of live work —
		// attach to the existing job instead of running it twice.
		key = s.sess.requestKey(oreq)
		s.mu.RLock()
		prior := s.jobs[s.inflight[key]]
		s.mu.RUnlock()
		if prior != nil && !prior.State().Terminal() {
			writeJSON(w, http.StatusAccepted,
				planio.SubmitResponse{ID: prior.ID(), State: prior.State().String()})
			return
		}
	}
	h, err := s.sess.Submit(r.Context(), oreq)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.journal != nil {
		// Journal before acknowledging: a submission the client saw accepted
		// is guaranteed to be re-enqueued if the process dies.
		var deadlineMS int64
		if !oreq.deadline.IsZero() {
			deadlineMS = oreq.deadline.UnixMilli()
		}
		_ = s.journal.j.AppendSubmit(h.ID(), body, deadlineMS)
	}
	s.adopt(h, key)
	writeJSON(w, http.StatusAccepted, planio.SubmitResponse{ID: h.ID(), State: h.State().String()})
}

// pruneLocked evicts the oldest finished handles beyond the retention
// bound. Callers hold s.mu.
func (s *Server) pruneLocked() {
	terminal := 0
	for _, id := range s.order {
		if h := s.jobs[id]; h != nil && h.State().Terminal() {
			terminal++
		}
	}
	drop := terminal - s.retain
	if drop <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if h := s.jobs[id]; drop > 0 && h != nil && h.State().Terminal() {
			delete(s.jobs, id)
			drop--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) statusDoc(h *OptimizeHandle) *planio.StatusDoc {
	p := h.Progress()
	doc := &planio.StatusDoc{
		ID:           h.ID(),
		Workflow:     h.WorkflowName(),
		State:        p.State.String(),
		Units:        p.Units,
		Subplans:     p.Subplans,
		Improvements: p.Improvements,
		BestCost:     p.BestCost,
	}
	if p.State == StateFailed || p.State == StateCanceled {
		if _, err := h.result(); err != nil {
			doc.Error = planio.NewErrorDoc(err)
		}
	}
	return doc
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	h, err := s.lookup(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.statusDoc(h))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	h, err := s.lookup(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	h.Cancel()
	writeJSON(w, http.StatusOK, s.statusDoc(h))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	h, err := s.lookup(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	switch h.State() {
	case StateQueued, StateRunning:
		s.writeError(w, stubbyerr.New(stubbyerr.KindConflict, "result", h.WorkflowName(), "",
			"job %s has not finished (state %s)", h.ID(), h.State()))
		return
	}
	res, err := h.result()
	if err != nil {
		s.writeError(w, err)
		return
	}
	data, err := planio.EncodeResult(&planio.Result{
		Plan:           res.Plan,
		EstimatedCost:  res.EstimatedCost,
		DurationMS:     float64(res.Duration.Milliseconds()),
		WhatIfCalls:    res.WhatIfCalls,
		WhatIfComputed: res.WhatIfComputed,
		FlowCards:      res.FlowCards,
		Fingerprint:    wf.FingerprintWorkflow(res.Plan).String(),
		Robustness:     robustnessDoc(res.Robustness),
		ReusedSubplans: res.ReusedSubplans,
	})
	if err != nil {
		s.writeError(w, stubbyerr.From("result", h.WorkflowName(), err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	h, err := s.lookup(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// ?from=N resumes the stream at line N: the NDJSON line index is the
	// event's sequence number in the job's append-only log, so a client
	// that counted its received lines reconnects to exactly the missed
	// suffix. No cursor (or from=0) replays from the beginning.
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil || n < 0 {
			s.writeError(w, stubbyerr.New(stubbyerr.KindInvalid, "events", h.WorkflowName(), h.ID(),
				"bad resume cursor %q", v))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for ev := range h.EventsFrom(r.Context(), from) {
		if err := enc.Encode(eventToDoc(ev)); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleHealth is liveness: the process is up and can answer HTTP. It is
// 200 even while draining — a draining server is alive and should not be
// restarted by a liveness probe. Route traffic with /readyz instead.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	q := s.sess.jobQueue()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"queueDepth": q.Depth(),
		"workers":    q.Workers(),
	})
}

// handleReady is readiness: 200 while the server accepts submissions,
// 503 (Retry-After stamped) the moment Drain begins — load balancers stop
// routing new work immediately while in-flight jobs finish.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	q := s.sess.jobQueue()
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":     "draining",
			"queueDepth": q.Depth(),
			"workers":    q.Workers(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"queueDepth": q.Depth(),
		"workers":    q.Workers(),
	})
}

// handleStatsz serves the counters of every subsystem the serving session
// carries: queue occupancy, estimate-cache activity, and plan-store
// activity. Every counter read is an atomic snapshot, so polling /statsz
// never contends with the optimizer's hot paths.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	q := s.sess.jobQueue()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	doc := &planio.StatszDoc{
		Status: status,
		Queue: planio.QueueStatsDoc{
			Workers: q.Workers(),
			Depth:   q.Depth(),
			Queued:  q.Queued(),
			Busy:    q.Busy(),
		},
	}
	if stats, ok := s.sess.EstimateCacheStats(); ok {
		doc.EstCache = cacheStatsDoc(stats)
	}
	if stats, ok := s.sess.PlanStoreStats(); ok {
		doc.PlanStore = storeStatsDoc(stats)
	}
	if stats, ok := s.sess.ReuseCatalogStats(); ok {
		doc.ReuseCatalog = reuseStatsDoc(stats)
	}
	if stats, ok := s.JournalStats(); ok {
		doc.Journal = journalStatsDoc(stats)
	}
	if s.coordinator != nil {
		cs := s.coordinator.Stats()
		doc.Cluster = &cs
	}
	writeJSON(w, http.StatusOK, doc)
}

// journalStatsDoc converts journal stats to their wire form.
func journalStatsDoc(st JournalStats) *planio.JournalStatsDoc {
	return &planio.JournalStatsDoc{Submits: st.Submits, Transitions: st.Transitions,
		Recovered: st.Recovered, Compacted: st.Compacted, Compactions: st.Compactions,
		TornBytes: st.TornBytes, BytesWritten: st.BytesWritten, Errors: st.Errors}
}

// journalStatsFromDoc is the client-side inverse of journalStatsDoc.
func journalStatsFromDoc(d *planio.JournalStatsDoc) JournalStats {
	if d == nil {
		return JournalStats{}
	}
	return JournalStats{Submits: d.Submits, Transitions: d.Transitions,
		Recovered: d.Recovered, Compacted: d.Compacted, Compactions: d.Compactions,
		TornBytes: d.TornBytes, BytesWritten: d.BytesWritten, Errors: d.Errors}
}

// cacheStatsDoc converts estimate-cache stats to their wire form.
func cacheStatsDoc(st EstimateCacheStats) *planio.CacheStatsDoc {
	return &planio.CacheStatsDoc{Hits: st.Hits, Misses: st.Misses,
		Evictions: st.Evictions, Entries: st.Entries, Capacity: st.Capacity}
}

// storeStatsDoc converts plan-store stats to their wire form.
func storeStatsDoc(st PlanStoreStats) *planio.StoreStatsDoc {
	return &planio.StoreStatsDoc{Hits: st.Hits, MemHits: st.MemHits,
		DiskHits: st.DiskHits, Misses: st.Misses, Computes: st.Computes,
		Puts: st.Puts, Evictions: st.Evictions, BytesWritten: st.BytesWritten,
		BytesRead: st.BytesRead, Errors: st.Errors, Entries: st.Entries,
		Segments: st.Segments, Claims: st.Claims, ClaimWaits: st.ClaimWaits,
		ClaimHits: st.ClaimHits}
}

// storeStatsFromDoc is the client-side inverse of storeStatsDoc.
func storeStatsFromDoc(d *planio.StoreStatsDoc) PlanStoreStats {
	if d == nil {
		return PlanStoreStats{}
	}
	return PlanStoreStats{Hits: d.Hits, MemHits: d.MemHits,
		DiskHits: d.DiskHits, Misses: d.Misses, Computes: d.Computes,
		Puts: d.Puts, Evictions: d.Evictions, BytesWritten: d.BytesWritten,
		BytesRead: d.BytesRead, Errors: d.Errors, Entries: d.Entries,
		Segments: d.Segments, Claims: d.Claims, ClaimWaits: d.ClaimWaits,
		ClaimHits: d.ClaimHits}
}

// reuseStatsDoc converts reuse-catalog stats to their wire form.
func reuseStatsDoc(st ReuseCatalogStats) *planio.ReuseStatsDoc {
	return &planio.ReuseStatsDoc{Entries: st.Entries, Puts: st.Puts,
		Hits: st.Hits, Misses: st.Misses, Compacted: st.Compacted,
		TornBytes: st.TornBytes, BytesWritten: st.BytesWritten, Errors: st.Errors,
		Expired: st.Expired, Vanished: st.Vanished}
}

// reuseStatsFromDoc is the client-side inverse of reuseStatsDoc.
func reuseStatsFromDoc(d *planio.ReuseStatsDoc) ReuseCatalogStats {
	if d == nil {
		return ReuseCatalogStats{}
	}
	return ReuseCatalogStats{Entries: d.Entries, Puts: d.Puts,
		Hits: d.Hits, Misses: d.Misses, Compacted: d.Compacted,
		TornBytes: d.TornBytes, BytesWritten: d.BytesWritten, Errors: d.Errors,
		Expired: d.Expired, Vanished: d.Vanished}
}

// robustnessDoc converts a robustness report to its wire form (nil-safe).
func robustnessDoc(r *Robustness) *planio.RobustnessDoc {
	if r == nil {
		return nil
	}
	return &planio.RobustnessDoc{Samples: r.Samples, Mean: r.Mean, P50: r.P50,
		P95: r.P95, P99: r.P99, Min: r.Min, Max: r.Max, FailedOut: r.FailedOut}
}

// robustnessFromDoc converts a wire robustness report back (nil-safe). The
// per-sample makespans never travel the wire — only summary statistics do.
func robustnessFromDoc(d *planio.RobustnessDoc) *Robustness {
	if d == nil {
		return nil
	}
	return &Robustness{Samples: d.Samples, Mean: d.Mean, P50: d.P50,
		P95: d.P95, P99: d.P99, Min: d.Min, Max: d.Max, FailedOut: d.FailedOut}
}

// eventToDoc converts a typed event to its wire form.
func eventToDoc(ev Event) *planio.EventDoc {
	switch e := ev.(type) {
	case UnitStartedEvent:
		return &planio.EventDoc{Type: planio.EventUnitStarted, Workflow: e.Workflow,
			Phase: e.Phase, Unit: e.Unit, Jobs: e.Jobs}
	case SubplanEnumeratedEvent:
		return &planio.EventDoc{Type: planio.EventSubplanEnumerated, Workflow: e.Workflow,
			Unit: e.Unit, Desc: e.Desc, Cost: e.Cost}
	case BestCostImprovedEvent:
		return &planio.EventDoc{Type: planio.EventBestCostImproved, Workflow: e.Workflow,
			Unit: e.Unit, Desc: e.Desc, Cost: e.Cost}
	case JobFinishedEvent:
		return &planio.EventDoc{Type: planio.EventJobFinished, Workflow: e.Workflow,
			Job: e.Job, Start: e.Start, End: e.End}
	case CacheReportEvent:
		return &planio.EventDoc{Type: planio.EventCacheReport, Workflow: e.Workflow,
			Cache: &planio.CacheStatsDoc{Hits: e.Stats.Hits, Misses: e.Stats.Misses,
				Evictions: e.Stats.Evictions, Entries: e.Stats.Entries, Capacity: e.Stats.Capacity}}
	case PlanStoreEvent:
		return &planio.EventDoc{Type: planio.EventStoreReport, Workflow: e.Workflow,
			Hit: e.Hit, Store: storeStatsDoc(e.Stats)}
	case RobustnessEvent:
		return &planio.EventDoc{Type: planio.EventRobustness, Workflow: e.Workflow,
			Robustness: robustnessDoc(e.Report)}
	case ReuseReportEvent:
		return &planio.EventDoc{Type: planio.EventReuseReport, Workflow: e.Workflow,
			Reused: e.Reused, Reuse: reuseStatsDoc(e.Stats)}
	case StateChangedEvent:
		return &planio.EventDoc{Type: planio.EventStateChanged, Workflow: e.Workflow,
			JobID: e.JobID, State: e.State.String(), Error: planio.NewErrorDoc(e.Err)}
	default:
		return &planio.EventDoc{Type: fmt.Sprintf("unknown(%T)", ev), Workflow: ev.WorkflowName()}
	}
}

// eventFromDoc converts a wire event back to its typed form; ok is false
// for event types this build does not know (skipped by stream readers).
func eventFromDoc(d *planio.EventDoc) (Event, bool) {
	switch d.Type {
	case planio.EventUnitStarted:
		return UnitStartedEvent{Workflow: d.Workflow, Phase: d.Phase, Unit: d.Unit, Jobs: d.Jobs}, true
	case planio.EventSubplanEnumerated:
		return SubplanEnumeratedEvent{Workflow: d.Workflow, Unit: d.Unit, Desc: d.Desc, Cost: d.Cost}, true
	case planio.EventBestCostImproved:
		return BestCostImprovedEvent{Workflow: d.Workflow, Unit: d.Unit, Desc: d.Desc, Cost: d.Cost}, true
	case planio.EventJobFinished:
		return JobFinishedEvent{Workflow: d.Workflow, Job: d.Job, Start: d.Start, End: d.End}, true
	case planio.EventCacheReport:
		var stats EstimateCacheStats
		if d.Cache != nil {
			stats = EstimateCacheStats{Hits: d.Cache.Hits, Misses: d.Cache.Misses,
				Evictions: d.Cache.Evictions, Entries: d.Cache.Entries, Capacity: d.Cache.Capacity}
		}
		return CacheReportEvent{Workflow: d.Workflow, Stats: stats}, true
	case planio.EventStoreReport:
		return PlanStoreEvent{Workflow: d.Workflow, Hit: d.Hit,
			Stats: storeStatsFromDoc(d.Store)}, true
	case planio.EventRobustness:
		return RobustnessEvent{Workflow: d.Workflow,
			Report: robustnessFromDoc(d.Robustness)}, true
	case planio.EventReuseReport:
		return ReuseReportEvent{Workflow: d.Workflow, Reused: d.Reused,
			Stats: reuseStatsFromDoc(d.Reuse)}, true
	case planio.EventStateChanged:
		st, err := parseJobState(d.State)
		if err != nil {
			return nil, false
		}
		return StateChangedEvent{Workflow: d.Workflow, JobID: d.JobID, State: st, Err: d.Error.Err()}, true
	default:
		return nil, false
	}
}

// parseJobState maps a wire spelling back to a JobState.
func parseJobState(v string) (JobState, error) {
	st, err := service.ParseState(v)
	if err != nil {
		return 0, stubbyerr.WithKind(stubbyerr.KindInvalid, "parse", "", err)
	}
	return st, nil
}
