// Command stubbyd serves Stubby as a long-lived optimization service (the
// deployment of the paper's Figure 2): workflow generators submit
// annotated plans as versioned JSON documents over HTTP, poll or stream
// progress, and fetch optimized plans back. Plans travel structure-only —
// the server costs and rewrites them without ever seeing user code.
//
// Usage:
//
//	stubbyd -addr :8080
//	stubbyd -addr :8080 -workers 8 -queue 64 -seed 1 -drain-timeout 30s
//
// API (see stubby.Server):
//
//	POST /v1/jobs              submit an optimize-request document
//	GET  /v1/jobs/{id}         status + progress
//	GET  /v1/jobs/{id}/result  optimize-result document
//	POST /v1/jobs/{id}/cancel  cancel
//	GET  /v1/jobs/{id}/events  NDJSON event stream (?from=N resumes)
//	GET  /healthz              liveness + queue shape
//	GET  /readyz               readiness (503 while draining)
//	GET  /statsz               queue/cache/plan-store/journal counters
//
// With -store DIR, optimized plans are persisted to a content-addressed
// store under DIR and repeat submissions — across restarts and across
// replicas sharing the directory — are answered without re-optimizing.
//
// With -journal DIR (default: journal/ under the -store directory, when
// one is set), every accepted job is journaled durably and a restart — even
// after a hard kill — re-enqueues the jobs that were in flight, under
// their original IDs, completing them idempotently through the plan store.
//
// With -reuse-catalog DIR, optimizations consult a durable catalog of
// previously materialized sub-plan results (populated by runs that had the
// same catalog attached): catalog-matched sub-DAGs are replaced with scans
// of the stored results whenever the What-if estimate says scanning beats
// recomputing. The catalog takes one exclusive writer per directory.
//
// Submissions beyond the admission queue's depth are shed with HTTP 429
// and error kind "overloaded". On SIGTERM/SIGINT the server drains
// gracefully: new submissions get 503, running jobs finish (up to
// -drain-timeout, then they are canceled), and the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/stubby-mr/stubby"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "optimization worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", stubby.DefaultQueueDepth, "admission queue depth; beyond it submissions are shed with 429")
		seed     = flag.Int64("seed", 1, "default search seed (requests may override)")
		planner  = flag.String("optimizer", "stubby", "default planner for requests that name none")
		useCache = flag.Bool("cache", true, "share one estimate cache across all jobs")
		rrsEvals = flag.Int("rrs-evals", 0, "configuration-search budget override (0 = default)")
		storeDir = flag.String("store", "", "persistent plan-store directory (empty = no store); replicas may share one directory")
		reuseDir = flag.String("reuse-catalog", "", "sub-plan reuse catalog directory (empty = no reuse): optimizations replace catalog-matched sub-DAGs with scans of stored results")
		jdir     = flag.String("journal", "", "durable job-journal directory (empty = 'journal' under -store when set, else no journal)")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits before canceling running jobs")

		robSamples = flag.Int("robustness-samples", 0, "Monte-Carlo samples for fault-aware robustness scoring of every optimized plan (0 disables)")
		faultName  = flag.String("fault-profile", "standard", "fault profile for -robustness-samples (standard, failures, stragglers)")
		faultSeed  = flag.Int64("fault-seed", 42, "base perturbation seed for -robustness-samples")
	)
	flag.Parse()

	opts := []stubby.SessionOption{
		stubby.WithSeed(*seed),
		stubby.WithQueueDepth(*queue),
		stubby.WithPlanner(*planner),
	}
	if *workers > 0 {
		opts = append(opts, stubby.WithParallelism(*workers))
	}
	if *useCache {
		opts = append(opts, stubby.WithEstimateCache(stubby.NewEstimateCache(0)))
	}
	if *rrsEvals > 0 {
		opts = append(opts, stubby.WithOptimizerOptions(stubby.Options{RRSEvals: *rrsEvals}))
	}
	if *robSamples > 0 {
		model, err := stubby.FaultProfile(*faultName, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stubbyd:", err)
			os.Exit(1)
		}
		opts = append(opts, stubby.WithRobustness(model, *robSamples))
	}
	var store *stubby.PlanStore
	if *storeDir != "" {
		var err error
		if store, err = stubby.NewPlanStore(*storeDir); err != nil {
			fmt.Fprintln(os.Stderr, "stubbyd:", err)
			os.Exit(1)
		}
		opts = append(opts, stubby.WithPlanStore(store))
	}
	var reuseCat *stubby.ReuseCatalog
	if *reuseDir != "" {
		var err error
		if reuseCat, err = stubby.NewReuseCatalog(*reuseDir); err != nil {
			fmt.Fprintln(os.Stderr, "stubbyd:", err)
			os.Exit(1)
		}
		opts = append(opts, stubby.WithReuseCatalog(reuseCat))
	}
	sess, err := stubby.NewSession(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stubbyd:", err)
		os.Exit(1)
	}
	journalDir := *jdir
	if journalDir == "" && *storeDir != "" {
		journalDir = filepath.Join(*storeDir, "journal")
	}
	var srvOpts []stubby.ServerOption
	var journal *stubby.Journal
	if journalDir != "" {
		if journal, err = stubby.OpenJournal(journalDir); err != nil {
			fmt.Fprintln(os.Stderr, "stubbyd:", err)
			os.Exit(1)
		}
		srvOpts = append(srvOpts, stubby.WithJournal(journal))
	}
	srv := stubby.NewServer(sess, srvOpts...)
	httpSrv := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stubbyd:", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("stubbyd: serving on %s (workers=%d queue=%d planner=%s)",
		ln.Addr(), *workers, *queue, *planner)
	if journal != nil {
		st := journal.Stats()
		log.Printf("stubbyd: journal %s: %d jobs recovered", journalDir, st.Recovered)
	}

	select {
	case err := <-errc:
		log.Fatalf("stubbyd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("stubbyd: draining (timeout %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("stubbyd: drain: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("stubbyd: shutdown: %v", err)
	}
	if store != nil {
		st := store.Stats()
		log.Printf("stubbyd: plan store: %d hits / %d misses (%.0f%% hit rate), %d computes, %d entries",
			st.Hits, st.Misses, 100*st.HitRate(), st.Computes, st.Entries)
		if err := store.Close(); err != nil {
			log.Printf("stubbyd: plan store close: %v", err)
		}
	}
	if journal != nil {
		st := journal.Stats()
		log.Printf("stubbyd: journal: %d submits, %d transitions, %d recovered, %d bytes",
			st.Submits, st.Transitions, st.Recovered, st.BytesWritten)
		if err := journal.Close(); err != nil {
			log.Printf("stubbyd: journal close: %v", err)
		}
	}
	if reuseCat != nil {
		st := reuseCat.Stats()
		log.Printf("stubbyd: reuse catalog: %d entries, %d hits / %d misses (%.0f%% hit rate)",
			st.Entries, st.Hits, st.Misses, 100*st.HitRate())
		if err := reuseCat.Close(); err != nil {
			log.Printf("stubbyd: reuse catalog close: %v", err)
		}
	}
	log.Print("stubbyd: stopped")
}
