// Command stubbyd serves Stubby as a long-lived optimization service (the
// deployment of the paper's Figure 2): workflow generators submit
// annotated plans as versioned JSON documents over HTTP, poll or stream
// progress, and fetch optimized plans back. Plans travel structure-only —
// the server costs and rewrites them without ever seeing user code.
//
// Usage:
//
//	stubbyd -addr :8080
//	stubbyd -addr :8080 -workers 8 -queue 64 -seed 1 -drain-timeout 30s
//
// API (see stubby.Server):
//
//	POST /v1/jobs              submit an optimize-request document
//	GET  /v1/jobs/{id}         status + progress
//	GET  /v1/jobs/{id}/result  optimize-result document
//	POST /v1/jobs/{id}/cancel  cancel
//	GET  /v1/jobs/{id}/events  NDJSON event stream (?from=N resumes)
//	GET  /healthz              liveness + queue shape
//	GET  /readyz               readiness (503 while draining)
//	GET  /statsz               queue/cache/plan-store/journal counters
//
// With -store DIR, optimized plans are persisted to a content-addressed
// store under DIR and repeat submissions — across restarts and across
// replicas sharing the directory — are answered without re-optimizing.
//
// With -journal DIR (default: journal/ under the -store directory, when
// one is set), every accepted job is journaled durably and a restart — even
// after a hard kill — re-enqueues the jobs that were in flight, under
// their original IDs, completing them idempotently through the plan store.
//
// With -reuse-catalog DIR, optimizations consult a durable catalog of
// previously materialized sub-plan results (populated by runs that had the
// same catalog attached): catalog-matched sub-DAGs are replaced with scans
// of the stored results whenever the What-if estimate says scanning beats
// recomputing. The catalog takes one exclusive writer per directory.
//
// Submissions beyond the admission queue's depth are shed with HTTP 429
// and error kind "overloaded". On SIGTERM/SIGINT the server drains
// gracefully: new submissions get 503, running jobs finish (up to
// -drain-timeout, then they are canceled), and the process exits.
//
// # Distributed operation
//
// A -coordinator process accepts the same /v1/jobs API but dispatches each
// job to a registered worker; -worker -join URL processes register with
// the coordinator, heartbeat to hold their lease, and serve the dispatched
// jobs with their ordinary job API. A worker that stops heartbeating for
// -lease-ttl has its in-flight jobs re-dispatched; a coordinator with no
// live workers optimizes locally (failover). Point every node's -store at
// one shared directory so identical submissions cost one optimization
// cluster-wide (cross-replica single-flight) and re-dispatched jobs
// converge to byte-identical plans:
//
//	stubbyd -coordinator -addr :8080 -store /shared/plans
//	stubbyd -worker -join http://coord:8080 -addr :8081 -store /shared/plans
//	stubbyd -worker -join http://coord:8080 -addr :8082 -store /shared/plans
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/stubby-mr/stubby"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "optimization worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", stubby.DefaultQueueDepth, "admission queue depth; beyond it submissions are shed with 429")
		seed     = flag.Int64("seed", 1, "default search seed (requests may override)")
		planner  = flag.String("optimizer", "stubby", "default planner for requests that name none")
		useCache = flag.Bool("cache", true, "share one estimate cache across all jobs")
		rrsEvals = flag.Int("rrs-evals", 0, "configuration-search budget override (0 = default)")
		storeDir = flag.String("store", "", "persistent plan-store directory (empty = no store); replicas may share one directory")
		reuseDir = flag.String("reuse-catalog", "", "sub-plan reuse catalog directory (empty = no reuse): optimizations replace catalog-matched sub-DAGs with scans of stored results")
		reuseTTL = flag.Duration("catalog-ttl", 0, "evict reuse-catalog entries older than this at startup (0 = keep forever)")
		jdir     = flag.String("journal", "", "durable job-journal directory (empty = 'journal' under -store when set, else no journal)")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits before canceling running jobs")

		robSamples = flag.Int("robustness-samples", 0, "Monte-Carlo samples for fault-aware robustness scoring of every optimized plan (0 disables)")
		faultName  = flag.String("fault-profile", "standard", "fault profile for -robustness-samples (standard, failures, stragglers)")
		faultSeed  = flag.Int64("fault-seed", 42, "base perturbation seed for -robustness-samples")

		coordinator = flag.Bool("coordinator", false, "run as cluster coordinator: dispatch jobs to -worker nodes that joined")
		workerMode  = flag.Bool("worker", false, "run as cluster worker: register with -join and serve dispatched jobs")
		join        = flag.String("join", "", "coordinator base URL a -worker joins (e.g. http://coord:8080)")
		advertise   = flag.String("advertise", "", "base URL this worker advertises to the coordinator (default derived from the listen address)")
		leaseTTL    = flag.Duration("lease-ttl", 3*time.Second, "coordinator: how long a silent worker keeps its lease; workers heartbeat at a third of it")
	)
	flag.Parse()

	if *coordinator && *workerMode {
		fmt.Fprintln(os.Stderr, "stubbyd: -coordinator and -worker are mutually exclusive")
		os.Exit(2)
	}
	if *workerMode && *join == "" {
		fmt.Fprintln(os.Stderr, "stubbyd: -worker requires -join URL")
		os.Exit(2)
	}

	opts := []stubby.SessionOption{
		stubby.WithSeed(*seed),
		stubby.WithQueueDepth(*queue),
		stubby.WithPlanner(*planner),
	}
	if *workers > 0 {
		opts = append(opts, stubby.WithParallelism(*workers))
	}
	if *useCache {
		opts = append(opts, stubby.WithEstimateCache(stubby.NewEstimateCache(0)))
	}
	if *rrsEvals > 0 {
		opts = append(opts, stubby.WithOptimizerOptions(stubby.Options{RRSEvals: *rrsEvals}))
	}
	if *robSamples > 0 {
		model, err := stubby.FaultProfile(*faultName, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stubbyd:", err)
			os.Exit(1)
		}
		opts = append(opts, stubby.WithRobustness(model, *robSamples))
	}
	var store *stubby.PlanStore
	if *storeDir != "" {
		var err error
		if store, err = stubby.NewPlanStore(*storeDir); err != nil {
			fmt.Fprintln(os.Stderr, "stubbyd:", err)
			os.Exit(1)
		}
		opts = append(opts, stubby.WithPlanStore(store))
	}
	var reuseCat *stubby.ReuseCatalog
	if *reuseDir != "" {
		var catOpts []stubby.ReuseCatalogOption
		if *reuseTTL > 0 {
			catOpts = append(catOpts, stubby.WithCatalogTTL(*reuseTTL))
		}
		var err error
		if reuseCat, err = stubby.NewReuseCatalog(*reuseDir, catOpts...); err != nil {
			fmt.Fprintln(os.Stderr, "stubbyd:", err)
			os.Exit(1)
		}
		opts = append(opts, stubby.WithReuseCatalog(reuseCat))
	}
	sess, err := stubby.NewSession(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stubbyd:", err)
		os.Exit(1)
	}
	journalDir := *jdir
	if journalDir == "" && *storeDir != "" {
		journalDir = filepath.Join(*storeDir, "journal")
	}
	var srvOpts []stubby.ServerOption
	var journal *stubby.Journal
	if journalDir != "" {
		if journal, err = stubby.OpenJournal(journalDir); err != nil {
			fmt.Fprintln(os.Stderr, "stubbyd:", err)
			os.Exit(1)
		}
		srvOpts = append(srvOpts, stubby.WithJournal(journal))
	}
	var coord *stubby.Coordinator
	if *coordinator {
		coord = stubby.NewCoordinator(stubby.WithClusterLeaseTTL(*leaseTTL))
		srvOpts = append(srvOpts, stubby.WithCoordinator(coord))
	}
	srv := stubby.NewServer(sess, srvOpts...)
	httpSrv := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stubbyd:", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("stubbyd: serving on %s (workers=%d queue=%d planner=%s)",
		ln.Addr(), *workers, *queue, *planner)
	if coord != nil {
		log.Printf("stubbyd: coordinator: lease-ttl=%v", *leaseTTL)
	}
	if *workerMode {
		adv := *advertise
		if adv == "" {
			adv = advertiseURL(ln.Addr().String())
		}
		var agentOpts []stubby.WorkerAgentOption
		if store != nil {
			agentOpts = append(agentOpts, stubby.WithWorkerStats(func() (uint64, uint64) {
				st := store.Stats()
				return st.ClaimHits, st.Computes
			}))
		}
		agent := stubby.NewWorkerAgent(*join, adv, agentOpts...)
		go func() { _ = agent.Run(ctx) }()
		log.Printf("stubbyd: worker: joining %s as %s", *join, adv)
	}
	if journal != nil {
		st := journal.Stats()
		log.Printf("stubbyd: journal %s: %d jobs recovered", journalDir, st.Recovered)
	}

	select {
	case err := <-errc:
		log.Fatalf("stubbyd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("stubbyd: draining (timeout %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("stubbyd: drain: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("stubbyd: shutdown: %v", err)
	}
	if store != nil {
		st := store.Stats()
		log.Printf("stubbyd: plan store: %d hits / %d misses (%.0f%% hit rate), %d computes, %d entries",
			st.Hits, st.Misses, 100*st.HitRate(), st.Computes, st.Entries)
		if err := store.Close(); err != nil {
			log.Printf("stubbyd: plan store close: %v", err)
		}
	}
	if journal != nil {
		st := journal.Stats()
		log.Printf("stubbyd: journal: %d submits, %d transitions, %d recovered, %d bytes",
			st.Submits, st.Transitions, st.Recovered, st.BytesWritten)
		if err := journal.Close(); err != nil {
			log.Printf("stubbyd: journal close: %v", err)
		}
	}
	if coord != nil {
		if st, ok := srv.ClusterStats(); ok {
			log.Printf("stubbyd: cluster: %d/%d workers live, %d dispatches, %d re-dispatches, %d failovers, %d single-flight hits",
				st.LiveWorkers, st.Workers, st.Dispatches, st.Redispatches, st.Failovers, st.SingleFlightHits)
		}
	}
	if reuseCat != nil {
		st := reuseCat.Stats()
		log.Printf("stubbyd: reuse catalog: %d entries, %d hits / %d misses (%.0f%% hit rate)",
			st.Entries, st.Hits, st.Misses, 100*st.HitRate())
		if err := reuseCat.Close(); err != nil {
			log.Printf("stubbyd: reuse catalog close: %v", err)
		}
	}
	log.Print("stubbyd: stopped")
}

// advertiseURL derives a dialable base URL from the listener's address: a
// wildcard host ("::", "0.0.0.0") is rewritten to loopback — the
// single-machine default; multi-host deployments set -advertise.
func advertiseURL(listen string) string {
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return "http://" + listen
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
