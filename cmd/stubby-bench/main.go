// Command stubby-bench regenerates the tables and figures of the paper's
// evaluation (Section 7) on the simulated substrate.
//
// Usage:
//
//	stubby-bench -all
//	stubby-bench -table 1
//	stubby-bench -fig 5 | 11 | 12 | 13 | 14
//	stubby-bench -fig 11 -size 0.5 -seed 7
//	stubby-bench -ablation ordering | search | units | profile | all
//	stubby-bench -whatif
//	stubby-bench -bench-optimizer -bench-out BENCH_optimizer.json
//	stubby-bench -bench-service -bench-service-out BENCH_service.json
//	stubby-bench -fig 12 -cpuprofile cpu.prof -memprofile mem.prof
//	stubby-bench -list-optimizers
//	stubby-bench -gen -seed 42            # reproduce one generated case
//	stubby-bench -gen -seed 1 -gen-count 20 -gen-desc
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"github.com/stubby-mr/stubby/internal/baselines"
	"github.com/stubby-mr/stubby/internal/bench"
	"github.com/stubby-mr/stubby/internal/workloads"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to regenerate (5, 11, 12, 13, 14)")
		table      = flag.Int("table", 0, "table to regenerate (1)")
		all        = flag.Bool("all", false, "regenerate everything")
		ablation   = flag.String("ablation", "", "ablation to run: ordering, search, units, profile, all")
		whatif     = flag.Bool("whatif", false, "report what-if call counts per workload, estimate cache off vs on")
		benchOpt   = flag.Bool("bench-optimizer", false, "benchmark the optimizer hot path: incremental vs monolithic what-if estimation")
		benchOut   = flag.String("bench-out", "BENCH_optimizer.json", "where -bench-optimizer writes its JSON report")
		benchGuard = flag.String("bench-guard", "", "CI smoke for -bench-optimizer: baseline JSON to guard against — robustness rows must be emitted and nil-model wall time must not regress >5%")
		benchSvc   = flag.Bool("bench-service", false, "benchmark the job service end to end: submit→result throughput and latency through a live stubbyd HTTP server at queue depths 1/8/64")
		benchSvcN  = flag.Int("bench-service-jobs", 32, "submissions per queue depth for -bench-service")
		benchSvcW  = flag.Int("bench-service-workers", 4, "worker-pool size for -bench-service")
		benchSvcO  = flag.String("bench-service-out", "BENCH_service.json", "where -bench-service writes its JSON report")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
		listOpts   = flag.Bool("list-optimizers", false, "list registered optimizers and exit")
		genMode    = flag.Bool("gen", false, "generate random workflow(s) from -seed and verify every registered planner against the semantic-equivalence oracle")
		genCount   = flag.Int("gen-count", 1, "how many consecutive seeds -gen checks")
		genDesc    = flag.Bool("gen-desc", false, "with -gen, print each generated case's full descriptor")
		size       = flag.Float64("size", 0.25, "workload size factor (records scale)")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *listOpts {
		fmt.Println("Optimizers:")
		for _, spec := range baselines.DefaultRegistry().Specs() {
			fmt.Printf("  %-11s %s\n", spec.Name, spec.Description)
		}
		return
	}
	h := bench.New(bench.Config{SizeFactor: *size, Seed: *seed})
	ran := false
	// Profile teardown must also run on the error paths below: os.Exit
	// skips defers, so fail() and the usage exit flush explicitly (a CPU
	// profile missing its trailing records is unreadable, and the heap
	// profile of a failing run is often exactly the one wanted).
	var profOnce sync.Once
	stopProfiles := func() {}
	exit := func(code int) {
		profOnce.Do(stopProfiles)
		os.Exit(code)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "stubby-bench:", err)
		exit(1)
	}
	if *cpuProfile != "" || *memProfile != "" {
		var cpuOut *os.File
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				fail(err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fail(err)
			}
			cpuOut = f
		}
		memPath := *memProfile
		stopProfiles = func() {
			if cpuOut != nil {
				pprof.StopCPUProfile()
				cpuOut.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "stubby-bench:", err)
					return
				}
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "stubby-bench:", err)
				}
				f.Close()
			}
		}
		defer profOnce.Do(stopProfiles)
	}
	if *all || *table == 1 {
		ran = true
		if err := printTable1(h); err != nil {
			fail(err)
		}
	}
	if *all || *fig == 5 {
		ran = true
		if err := printFig5(h); err != nil {
			fail(err)
		}
	}
	if *all || *fig == 11 {
		ran = true
		if err := printFigSpeedups(h, 11); err != nil {
			fail(err)
		}
	}
	if *all || *fig == 12 {
		ran = true
		if err := printFigSpeedups(h, 12); err != nil {
			fail(err)
		}
	}
	if *all || *fig == 13 {
		ran = true
		if err := printFig13(h); err != nil {
			fail(err)
		}
	}
	if *all || *fig == 14 {
		ran = true
		if err := printFig14(h); err != nil {
			fail(err)
		}
	}
	if *ablation != "" {
		ran = true
		if err := printAblations(h, *ablation); err != nil {
			fail(err)
		}
	}
	if *all || *whatif {
		ran = true
		if err := printWhatIf(h); err != nil {
			fail(err)
		}
	}
	if *all || *benchOpt {
		ran = true
		if err := runOptimizerBench(h, *benchOut, *benchGuard, *size, *seed); err != nil {
			fail(err)
		}
	}
	if *benchSvc {
		ran = true
		if err := runServiceBench(h, *benchSvcO, *benchSvcN, *benchSvcW); err != nil {
			fail(err)
		}
	}
	if *genMode {
		ran = true
		ok, err := runGenCheck(h, *seed, *genCount, *genDesc)
		if err != nil {
			fail(err)
		}
		if !ok {
			exit(1)
		}
	}
	if !ran {
		flag.Usage()
		exit(2)
	}
}

// ablationWorkloads is the subset used by the structural ablations: one
// vertically-dominated workflow (IR), the horizontally-dominated one (BR),
// and the largest mixed one (BA).
var ablationWorkloads = []string{"IR", "BR", "BA"}

func printAblations(h *bench.Harness, which string) error {
	if which == "ordering" || which == "all" {
		runs, err := h.AblationOrdering(ablationWorkloads)
		if err != nil {
			return err
		}
		fmt.Println("Ablation: phase ordering (Section 4 argues Vertical before Horizontal)")
		printAblationTable(runs)
	}
	if which == "search" || which == "all" {
		runs, err := h.AblationSearch(ablationWorkloads)
		if err != nil {
			return err
		}
		fmt.Println("Ablation: configuration search strategy (Section 4.2 chooses RRS)")
		printAblationTable(runs)
	}
	if which == "units" || which == "all" {
		runs, err := h.AblationUnitScope(ablationWorkloads)
		if err != nil {
			return err
		}
		fmt.Println("Ablation: dynamic optimization units vs one global unit (Section 4.1)")
		printAblationTable(runs)
	}
	if which == "profile" || which == "all" {
		rows, err := h.AblationProfileFraction("IR", []float64{0.05, 0.1, 0.25, 0.5, 1.0})
		if err != nil {
			return err
		}
		fmt.Println("Ablation: profile sampling fraction (IR), estimate accuracy and plan quality")
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{
				fmt.Sprintf("%.2f", r.Fraction),
				fmt.Sprintf("%.1f s", r.Estimated),
				fmt.Sprintf("%.1f s", r.Actual),
				fmt.Sprintf("%.1f%%", r.RelError*100),
				fmt.Sprintf("%.2fx", r.Speedup),
			})
		}
		fmt.Println(bench.FormatTable(
			[]string{"Fraction", "Estimated", "Actual", "Rel. error", "Speedup vs unopt"}, cells))
	}
	return nil
}

func printAblationTable(runs map[string][]bench.AblationRun) {
	var cells [][]string
	for _, abbr := range ablationWorkloads {
		for _, r := range runs[abbr] {
			cells = append(cells, []string{
				r.Workload, r.Variant,
				fmt.Sprintf("%d", r.Jobs),
				fmt.Sprintf("%.1f s", r.Makespan),
				fmt.Sprintf("%.2fx", r.Speedup),
				fmt.Sprintf("%.0f ms", r.OptimizeMS),
			})
		}
	}
	fmt.Println(bench.FormatTable(
		[]string{"Workflow", "Variant", "Jobs", "Makespan", "vs default", "Opt time"}, cells))
}

func printWhatIf(h *bench.Harness) error {
	rows, err := h.WhatIfCounts()
	if err != nil {
		return err
	}
	fmt.Println("What-if call counts per workload: estimate cache off vs on, then a cached repeat")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Workload,
			fmt.Sprintf("%d", r.UncachedCalls),
			fmt.Sprintf("%d", r.UncachedComputed),
			fmt.Sprintf("%d", r.CachedRequests),
			fmt.Sprintf("%d", r.CachedComputed),
			fmt.Sprintf("%.1f%%", r.HitRatePct),
			fmt.Sprintf("%d", r.RepeatComputed),
			fmt.Sprintf("%v", r.PlansIdentical),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Workflow", "Uncached req", "Uncached comp", "Cached req", "Cached comp",
			"Absorbed", "Repeat", "Identical plans"}, cells))
	return nil
}

// runOptimizerBench measures the incremental estimator against the
// monolithic path over the paper workloads plus the deep synthetic
// pipelines, prints the table, and writes the JSON perf trajectory.
func runOptimizerBench(h *bench.Harness, out, guard string, size float64, seed int64) error {
	abbrs := append(append([]string{}, workloads.Abbrs()...), bench.DeepPipelineAbbrs()...)
	rows, err := h.OptimizerBench(abbrs)
	if err != nil {
		return err
	}
	fmt.Println("Optimizer hot path: incremental vs monolithic what-if estimation (plans are byte-identical)")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Workload,
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%.0f ms", r.MonolithicMS),
			fmt.Sprintf("%.0f ms", r.IncrementalMS),
			fmt.Sprintf("%.2fx", r.WallSpeedup),
			fmt.Sprintf("%d", r.MonolithicFlowCards),
			fmt.Sprintf("%d", r.IncrementalFlowCards),
			fmt.Sprintf("%.2fx", r.FlowCardRatio),
			fmt.Sprintf("%v", r.PlansIdentical),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Workflow", "Jobs", "Monolithic", "Incremental", "Speedup",
			"Cards (mono)", "Cards (inc)", "Card ratio", "Identical"}, cells))
	report := bench.OptimizerBenchReport(rows, size, seed)
	fmt.Printf("multi-job (>=%d jobs): wall %.2fx, flow cards %.2fx\n",
		bench.MultiJobThreshold, report.MultiJob.WallSpeedup, report.MultiJob.FlowCardRatio)

	robRows, err := h.RobustnessBench(abbrs)
	if err != nil {
		return err
	}
	report.Robustness = robRows
	fmt.Printf("Plan robustness under the standard fault profile (%d perturbation samples, seed %d)\n",
		bench.RobustnessBenchSamples, bench.RobustnessBenchSeed)
	cells = nil
	for _, r := range robRows {
		cells = append(cells, []string{
			r.Workload,
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%.1f s", r.NominalSec),
			fmt.Sprintf("%.1f s", r.MeanSec),
			fmt.Sprintf("%.1f s", r.P95Sec),
			fmt.Sprintf("%.1f s", r.P99Sec),
			fmt.Sprintf("%d", r.FailedOut),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Workflow", "Jobs", "Nominal", "Mean", "p95", "p99", "Failed out"}, cells))

	reuseRows, err := h.ReuseBench(nil)
	if err != nil {
		return err
	}
	report.Reuse = reuseRows
	fmt.Printf("Cross-workflow sub-plan reuse on overlapping families (%d members per seed, member 0 publishes)\n",
		bench.ReuseBenchMembers)
	cells = nil
	for _, r := range reuseRows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.FamilySeed),
			fmt.Sprintf("%d", r.Member),
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%d", r.PlanJobs),
			fmt.Sprintf("%d", r.ReusedSubplans),
			fmt.Sprintf("%d/%d", r.CatalogHits, r.CatalogHits+r.CatalogMisses),
			fmt.Sprintf("%.2f", r.HitRatio),
			fmt.Sprintf("%.2fx", r.CostRatio),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Family", "Member", "Jobs", "Plan jobs", "Reused", "Hits", "Hit ratio", "Cost"}, cells))

	if out != "" {
		if err := bench.WriteOptimizerBenchJSON(out, report); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if guard != "" {
		baseline, err := bench.ReadOptimizerBenchJSON(guard)
		if err != nil {
			return err
		}
		if err := bench.GuardOptimizerBench(report, baseline); err != nil {
			return err
		}
		fmt.Printf("bench guard passed against %s: %d robustness rows, nil-model wall within %.0f%%\n",
			guard, len(report.Robustness), (bench.GuardWallSlack-1)*100)
	}
	return nil
}

// runServiceBench measures submit→result throughput and latency through a
// live in-process stubbyd HTTP server at each queue depth, prints the
// table, and writes the JSON perf trajectory.
func runServiceBench(h *bench.Harness, out string, jobs, workers int) error {
	rows, err := h.ServiceBench(bench.ServiceBenchDepths, jobs, workers)
	if err != nil {
		return err
	}
	fmt.Println("Job service end to end: submit→result over HTTP (IR workload, reduced search budget)")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Depth),
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%d", r.Overloads),
			fmt.Sprintf("%.0f ms", r.WallMS),
			fmt.Sprintf("%.1f/s", r.Throughput),
			fmt.Sprintf("%.1f ms", r.P50MS),
			fmt.Sprintf("%.1f ms", r.P99MS),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Depth", "Workers", "Jobs", "Overloads", "Wall", "Throughput", "p50", "p99"}, cells))

	cache, err := h.ServiceCacheBench(3, workers)
	if err != nil {
		return err
	}
	fmt.Println("Persistent plan store: cold (first sight of each paper workload) vs warm (repeated arrival mix)")
	cells = nil
	for _, r := range cache {
		cells = append(cells, []string{
			r.Phase,
			fmt.Sprintf("%d", r.Submissions),
			fmt.Sprintf("%d", r.StoreHits),
			fmt.Sprintf("%.0f%%", 100*r.HitRatio),
			fmt.Sprintf("%d", r.Optimizations),
			fmt.Sprintf("%.1f ms", r.P50MS),
			fmt.Sprintf("%.1f ms", r.P99MS),
			fmt.Sprintf("%.0f ms", r.WallMS),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Phase", "Submissions", "Store hits", "Hit ratio", "Optimizations", "p50", "p99", "Wall"}, cells))

	chaos, err := h.ServiceChaosBench(jobs, workers)
	if err != nil {
		return err
	}
	fmt.Println("Failure handling: retry-policy clients through the deterministic fault proxy (journaled server)")
	cells = nil
	for _, r := range chaos {
		cells = append(cells, []string{
			r.Profile,
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%d/%d/%d", r.Injected503, r.Resets, r.Truncations),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Resumes),
			fmt.Sprintf("%d", r.Optimizations),
			fmt.Sprintf("%.1f ms", r.P50MS),
			fmt.Sprintf("%.1f ms", r.P99MS),
			fmt.Sprintf("%.0f ms", r.WallMS),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Profile", "Jobs", "503/rst/trunc", "Retries", "Resumes", "Optimizations", "p50", "p99", "Wall"}, cells))

	cluster, err := h.ServiceClusterBench(jobs, workers)
	if err != nil {
		return err
	}
	fmt.Println("Distributed service: coordinator + worker replicas over one shared plan store (repeated-workflow mix)")
	cells = nil
	for _, r := range cluster {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Replicas),
			fmt.Sprintf("%d", r.Depth),
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%d", r.Dispatches),
			fmt.Sprintf("%d", r.StoreHits),
			fmt.Sprintf("%.0f%%", 100*r.HitRatio),
			fmt.Sprintf("%d/%d", r.Computes, r.Distinct),
			fmt.Sprintf("%.1f/s", r.Throughput),
			fmt.Sprintf("%.1f ms", r.P50MS),
			fmt.Sprintf("%.1f ms", r.P99MS),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Replicas", "Depth", "Jobs", "Dispatches", "Store hits", "Hit ratio", "Computes/distinct", "Throughput", "p50", "p99"}, cells))

	if out != "" {
		if err := bench.ServiceBenchJSON(out, h, rows, cache, chaos, cluster, jobs); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

// runGenCheck is the reproduction entry point for the generated-workflow
// equivalence suites: it regenerates the case(s) for the given seed(s),
// runs every registered planner, and prints the oracle's verdicts —
// including, on failure, the reproducing seed and the offending plan's
// DOT exactly as the test suites report them.
func runGenCheck(h *bench.Harness, seed int64, count int, withDesc bool) (bool, error) {
	if count < 1 {
		count = 1
	}
	rows, failures, descriptors, err := h.GenCheck(seed, count)
	if err != nil {
		return false, err
	}
	if withDesc {
		for _, d := range descriptors {
			fmt.Println(d)
		}
	}
	fmt.Printf("Generated-workflow equivalence: seeds %d..%d, every registered planner\n", seed, seed+int64(count)-1)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Seed),
			r.Planner,
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%d", r.PlanJobs),
			fmt.Sprintf("%.1f s", r.EstCost),
			fmt.Sprintf("%v", r.Equivalent),
			fmt.Sprintf("%.0f ms", r.OptimizeMS),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Seed", "Planner", "Jobs in", "Jobs out", "Est. cost", "Equivalent", "Opt time"}, cells))
	for _, f := range failures {
		fmt.Println("FAILURE:", f)
	}
	if len(failures) > 0 {
		fmt.Printf("%d failures\n", len(failures))
		return false, nil
	}
	fmt.Println("all plans semantically equivalent to their unoptimized workflows")
	return true, nil
}

func printTable1(h *bench.Harness) error {
	rows, err := h.Table1()
	if err != nil {
		return err
	}
	fmt.Println("Table 1: MapReduce workflows and corresponding data sizes")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Abbr, r.Title,
			fmt.Sprintf("%.0f GB", r.PaperGB),
			fmt.Sprintf("%.0f GB", r.VirtualGB),
			fmt.Sprintf("%d", r.Records),
			fmt.Sprintf("%d", r.Jobs),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Abbr", "Workflow", "Paper size", "Simulated size", "Records", "Jobs"}, cells))
	return nil
}

func printFig5(h *bench.Harness) error {
	rows, err := h.Figure5()
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: performance degradation and improvement caused by packing")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Transformation, r.Case,
			fmt.Sprintf("%.1f s", r.Unpacked),
			fmt.Sprintf("%.1f s", r.Packed),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Transformation", "Case", "No packing", "With packing", "Speedup"}, cells))
	return nil
}

func printFigSpeedups(h *bench.Harness, fig int) error {
	var runs map[string][]bench.PlannerRun
	var err error
	var title string
	if fig == 11 {
		title = "Figure 11: speedup over Baseline by Stubby, Vertical, and Horizontal"
		runs, err = h.Figure11()
	} else {
		title = "Figure 12: speedup over Baseline by Stubby, Starfish, YSmart, and MRShare"
		runs, err = h.Figure12()
	}
	if err != nil {
		return err
	}
	fmt.Println(title)
	header := []string{"Workflow"}
	if len(runs[workloads.Abbrs()[0]]) > 0 {
		for _, r := range runs[workloads.Abbrs()[0]] {
			header = append(header, r.Planner)
		}
	}
	var cells [][]string
	for _, abbr := range workloads.Abbrs() {
		row := []string{abbr}
		for _, r := range runs[abbr] {
			row = append(row, fmt.Sprintf("%.2fx (%dj)", r.Speedup, r.Jobs))
		}
		cells = append(cells, row)
	}
	fmt.Println(bench.FormatTable(header, cells))
	return nil
}

func printFig13(h *bench.Harness) error {
	rows, err := h.Figure13()
	if err != nil {
		return err
	}
	fmt.Println("Figure 13: optimization overhead")
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Workload,
			fmt.Sprintf("%.0f ms", r.OptimizeMS),
			fmt.Sprintf("%.0f s", r.WorkflowSec),
			fmt.Sprintf("%.3f%%", r.OverheadPct),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"Workflow", "Optimization time", "Workflow runtime (sim)", "Overhead"}, cells))
	return nil
}

func printFig14(h *bench.Harness) error {
	points, err := h.Figure14()
	if err != nil {
		return err
	}
	fmt.Println("Figure 14: actual vs estimated normalized cost, first unit of IR")
	var cells [][]string
	for _, p := range points {
		cells = append(cells, []string{
			fmt.Sprintf("%.3f", p.EstimatedNorm),
			fmt.Sprintf("%.3f", p.ActualNorm),
			p.Description,
		})
	}
	fmt.Println(bench.FormatTable([]string{"Estimated", "Actual", "Subplan"}, cells))
	return nil
}
