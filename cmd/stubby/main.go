// Command stubby optimizes and runs the paper's evaluation workflows on
// the simulated MapReduce substrate, showing plans before and after
// optimization.
//
// Usage:
//
//	stubby -list
//	stubby -workload BR
//	stubby -workload BR -optimizer stubby -run
//	stubby -workload LA -optimizer ysmart -dot
//	stubby -workload IR -compare
//	stubby -workload BR -export br.plan.json
//	stubby -import br.plan.json -optimizer stubby
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/stubby-mr/stubby"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available workloads")
		workload = flag.String("workload", "", "workload abbreviation (IR, SN, LA, WG, BA, BR, PJ, US)")
		planner  = flag.String("optimizer", "stubby", "optimizer: stubby, vertical, horizontal, baseline, starfish, ysmart, mrshare, none")
		run      = flag.Bool("run", false, "execute the plans and report simulated runtimes")
		compare  = flag.Bool("compare", false, "run every optimizer on the workload")
		dot      = flag.Bool("dot", false, "print the optimized plan in Graphviz DOT format")
		size     = flag.Float64("size", 0.25, "workload size factor")
		seed     = flag.Int64("seed", 1, "random seed")
		fraction = flag.Float64("profile", 0.5, "profiling sample fraction")
		export   = flag.String("export", "", "write the annotated plan to this JSON file and exit")
		imprt    = flag.String("import", "", "read an annotated plan from this JSON file (structure-only) instead of building a workload")
	)
	flag.Parse()

	if *imprt != "" {
		importAndOptimize(*imprt, strings.ToLower(*planner), *seed, *dot)
		return
	}

	if *list {
		fmt.Println("Workloads (Table 1):")
		for _, abbr := range stubby.Workloads() {
			fmt.Printf("  %s\n", abbr)
		}
		return
	}
	if *workload == "" {
		flag.Usage()
		os.Exit(2)
	}
	wl, err := stubby.BuildWorkload(*workload, stubby.WorkloadOptions{SizeFactor: *size, Seed: *seed})
	if err != nil {
		fail(err)
	}
	if err := stubby.Profile(wl.Cluster, wl.Workflow, wl.DFS, *fraction, *seed); err != nil {
		fail(err)
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fail(err)
		}
		if err := stubby.ExportPlan(f, wl.Workflow); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote annotated %s plan to %s\n", wl.Abbr, *export)
		return
	}
	fmt.Printf("== %s: %s (%.0f GB simulated)\n", wl.Abbr, wl.Title, wl.PaperGB)
	fmt.Println("-- original plan")
	fmt.Print(wl.Workflow.Summary())

	if *compare {
		comparePlanners(wl, *seed)
		return
	}

	plan := wl.Workflow
	switch strings.ToLower(*planner) {
	case "none":
	default:
		p, err := makePlanner(wl, strings.ToLower(*planner), *seed)
		if err != nil {
			fail(err)
		}
		t0 := time.Now()
		plan, err = p.Plan(wl.Workflow)
		if err != nil {
			fail(err)
		}
		fmt.Printf("-- %s plan (optimized in %v)\n", p.Name(), time.Since(t0).Round(time.Millisecond))
		fmt.Print(plan.Summary())
	}
	if *dot {
		fmt.Println(plan.DOT())
	}
	if *run {
		before, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), wl.Workflow)
		if err != nil {
			fail(err)
		}
		after, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), plan)
		if err != nil {
			fail(err)
		}
		fmt.Printf("-- simulated runtimes: original %.1fs, optimized %.1fs (%.2fx speedup)\n",
			before.Makespan, after.Makespan, before.Makespan/after.Makespan)
	}
}

func makePlanner(wl *stubby.Workload, name string, seed int64) (stubby.Planner, error) {
	c := wl.Cluster
	switch name {
	case "stubby":
		return stubby.NewStubbyPlanner(c, stubby.GroupAll, seed, "Stubby"), nil
	case "vertical":
		return stubby.NewStubbyPlanner(c, stubby.GroupVertical, seed, "Vertical"), nil
	case "horizontal":
		return stubby.NewStubbyPlanner(c, stubby.GroupHorizontal, seed, "Horizontal"), nil
	case "baseline":
		return stubby.NewBaseline(c), nil
	case "starfish":
		return stubby.NewStarfish(c, seed), nil
	case "ysmart":
		return stubby.NewYSmart(c), nil
	case "mrshare":
		return stubby.NewMRShare(c, seed), nil
	default:
		return nil, fmt.Errorf("unknown optimizer %q", name)
	}
}

func comparePlanners(wl *stubby.Workload, seed int64) {
	names := []string{"baseline", "starfish", "ysmart", "mrshare", "vertical", "horizontal", "stubby"}
	var baseTime float64
	for _, name := range names {
		p, err := makePlanner(wl, name, seed)
		if err != nil {
			fail(err)
		}
		t0 := time.Now()
		plan, err := p.Plan(wl.Workflow)
		if err != nil {
			fail(err)
		}
		optTime := time.Since(t0)
		rep, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), plan)
		if err != nil {
			fail(err)
		}
		if name == "baseline" {
			baseTime = rep.Makespan
		}
		fmt.Printf("  %-11s %d jobs  %8.1fs simulated  %6.2fx vs baseline  (optimized in %v)\n",
			p.Name(), len(plan.Jobs), rep.Makespan, baseTime/rep.Makespan, optTime.Round(time.Millisecond))
	}
}

// importAndOptimize loads a structure-only plan (annotations but no function
// bodies — the paper's Figure 2 deployment, where Stubby receives plans from
// remote workflow generators) and optimizes it. Imported plans cannot be
// executed, so -run is unavailable in this mode.
func importAndOptimize(path, planner string, seed int64, dot bool) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	plan, err := stubby.ImportPlanStructure(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("== imported plan %s\n-- original plan\n", plan.Name)
	fmt.Print(plan.Summary())
	if planner != "none" {
		groups := stubby.GroupAll
		switch planner {
		case "vertical":
			groups = stubby.GroupVertical
		case "horizontal":
			groups = stubby.GroupHorizontal
		case "stubby":
		default:
			fail(fmt.Errorf("imported plans support -optimizer stubby, vertical, horizontal, or none; got %q", planner))
		}
		res, err := stubby.Optimize(stubby.DefaultCluster(), plan, stubby.Options{Seed: seed, Groups: groups})
		if err != nil {
			fail(err)
		}
		fmt.Printf("-- optimized plan (estimated makespan %.1fs)\n", res.EstimatedCost)
		fmt.Print(res.Plan.Summary())
		if dot {
			fmt.Println(res.Plan.DOT())
		}
		return
	}
	if dot {
		fmt.Println(plan.DOT())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stubby:", err)
	os.Exit(1)
}
