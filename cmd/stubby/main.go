// Command stubby optimizes and runs the paper's evaluation workflows on
// the simulated MapReduce substrate, showing plans before and after
// optimization.
//
// Usage:
//
//	stubby -list
//	stubby -list-optimizers
//	stubby -workload BR
//	stubby -workload BR -optimizer stubby -run
//	stubby -workload LA -optimizer ysmart -dot
//	stubby -workload IR -compare
//	stubby -workload BR -reuse-catalog ./catalog -run
//	stubby -workload BR -export br.plan.json
//	stubby -import br.plan.json -optimizer stubby
//	stubby -workload BR -remote http://localhost:8080 -v
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/stubby-mr/stubby"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available workloads")
		listOpts = flag.Bool("list-optimizers", false, "list registered optimizers")
		workload = flag.String("workload", "", "workload abbreviation (IR, SN, LA, WG, BA, BR, PJ, US)")
		planner  = flag.String("optimizer", "stubby", "optimizer name (see -list-optimizers) or none")
		run      = flag.Bool("run", false, "execute the plans and report simulated runtimes")
		compare  = flag.Bool("compare", false, "run every optimizer on the workload")
		dot      = flag.Bool("dot", false, "print the optimized plan in Graphviz DOT format")
		verbose  = flag.Bool("v", false, "report optimizer progress while searching")
		size     = flag.Float64("size", 0.25, "workload size factor")
		seed     = flag.Int64("seed", 1, "random seed")
		fraction = flag.Float64("profile", 0.5, "profiling sample fraction")
		useCache = flag.Bool("cache", true, "memoize what-if estimates under workflow fingerprints")
		reuseDir = flag.String("reuse-catalog", "", "sub-plan reuse catalog directory: -run publishes materialized intermediates, optimizations reuse catalog-matched sub-DAG results")
		incr     = flag.Bool("incremental", true, "delta-estimate configuration-search probes (bit-transparent; disable to benchmark the monolithic estimator)")
		robSamples = flag.Int("robustness", 0, "Monte-Carlo samples for fault-aware robustness scoring (0 disables)")
		faultName  = flag.String("fault-profile", "standard", "fault profile for -robustness (standard, failures, stragglers)")
		faultSeed  = flag.Int64("fault-seed", 42, "base perturbation seed for -robustness")
		export     = flag.String("export", "", "write the annotated plan to this JSON file and exit")
		imprt    = flag.String("import", "", "read an annotated plan from this JSON file (structure-only) instead of building a workload")
		remote   = flag.String("remote", "", "optimize through the stubbyd server at this base URL (e.g. http://localhost:8080) instead of in-process")
	)
	flag.Parse()
	ctx := context.Background()
	// Registry lookups are case-insensitive; normalize so the "none"
	// sentinel is too.
	plannerName := strings.ToLower(*planner)

	if *listOpts {
		fmt.Println("Optimizers:")
		for _, spec := range stubby.PlannerSpecs() {
			fmt.Printf("  %-11s %s\n", spec.Name, spec.Description)
		}
		return
	}
	if *list {
		fmt.Println("Workloads (Table 1):")
		for _, abbr := range stubby.Workloads() {
			fmt.Printf("  %s\n", abbr)
		}
		return
	}

	if *imprt != "" {
		importAndOptimize(ctx, *imprt, plannerName, *seed, *dot)
		return
	}

	if *workload == "" {
		flag.Usage()
		os.Exit(2)
	}
	wl, err := stubby.BuildWorkload(*workload, stubby.WorkloadOptions{SizeFactor: *size, Seed: *seed})
	if err != nil {
		fail(err)
	}
	opts := []stubby.SessionOption{
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(*seed),
		stubby.WithProfileFraction(*fraction),
		stubby.WithIncrementalEstimation(*incr),
	}
	var cache *stubby.EstimateCache
	if *useCache {
		cache = stubby.NewEstimateCache(0)
		opts = append(opts, stubby.WithEstimateCache(cache))
	}
	var reuseCat *stubby.ReuseCatalog
	if *reuseDir != "" {
		reuseCat, err = stubby.NewReuseCatalog(*reuseDir)
		if err != nil {
			fail(err)
		}
		defer func() {
			st := reuseCat.Stats()
			fmt.Printf("-- reuse catalog: %d entries, %d hits / %d misses\n", st.Entries, st.Hits, st.Misses)
			if err := reuseCat.Close(); err != nil {
				fail(err)
			}
		}()
		opts = append(opts, stubby.WithReuseCatalog(reuseCat))
	}
	if *verbose {
		opts = append(opts, stubby.WithObserver(progressObserver{}))
	}
	if *robSamples > 0 {
		model, err := stubby.FaultProfile(*faultName, *faultSeed)
		if err != nil {
			fail(err)
		}
		opts = append(opts, stubby.WithRobustness(model, *robSamples))
	}
	if plannerName != "none" {
		// Validated at construction; Profile/Run ignore the planner name.
		opts = append(opts, stubby.WithPlanner(plannerName))
	}
	sess, err := stubby.NewSession(opts...)
	if err != nil {
		fail(err)
	}
	if err := sess.Profile(ctx, wl.Workflow, wl.DFS); err != nil {
		fail(err)
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fail(err)
		}
		if err := stubby.ExportPlan(f, wl.Workflow); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote annotated %s plan to %s\n", wl.Abbr, *export)
		return
	}
	fmt.Printf("== %s: %s (%.0f GB simulated)\n", wl.Abbr, wl.Title, wl.PaperGB)
	fmt.Println("-- original plan")
	fmt.Print(wl.Workflow.Summary())

	if *remote != "" {
		// Profile locally (profiling needs the data and the functions),
		// then route the optimization through the remote service. The
		// returned plan is structure-only, so -run is unavailable.
		if *run || *compare {
			fail(fmt.Errorf("-run and -compare need executable plans and are unavailable with -remote"))
		}
		optimizeRemote(ctx, *remote, wl, plannerName, *seed, *verbose, *dot)
		return
	}

	if *compare {
		comparePlanners(ctx, sess, opts, wl)
		return
	}

	plan := wl.Workflow
	if plannerName != "none" {
		// Optimize through the session (not Planner.Plan directly) so the
		// -v observer sees per-unit progress for Stubby variants.
		p, err := sess.Planner(plannerName)
		if err != nil {
			fail(err)
		}
		res, err := sess.Optimize(ctx, wl.Workflow)
		if err != nil {
			fail(err)
		}
		plan = res.Plan
		fmt.Printf("-- %s plan (optimized in %v)\n", p.Name(), res.Duration.Round(time.Millisecond))
		fmt.Print(plan.Summary())
		printWhatIf(res, cache)
	}
	if *dot {
		fmt.Println(plan.DOT())
	}
	if *run {
		before, err := sess.Run(ctx, wl.DFS.Clone(), wl.Workflow)
		if err != nil {
			fail(err)
		}
		after, err := sess.Run(ctx, wl.DFS.Clone(), plan)
		if err != nil {
			fail(err)
		}
		fmt.Printf("-- simulated runtimes: original %.1fs, optimized %.1fs (%.2fx speedup)\n",
			before.Makespan, after.Makespan, before.Makespan/after.Makespan)
	}
}

// progressObserver streams optimizer and engine progress to stderr (-v).
type progressObserver struct{ stubby.NopObserver }

func (progressObserver) UnitStarted(workflow, phase string, unit int, jobs []string) {
	fmt.Fprintf(os.Stderr, "[%s] unit %d (%s): %v\n", workflow, unit, phase, jobs)
}

func (progressObserver) BestCostImproved(workflow string, unit int, desc string, cost float64) {
	fmt.Fprintf(os.Stderr, "[%s] unit %d: best <- %s (%.1f)\n", workflow, unit, desc, cost)
}

// printWhatIf reports what-if activity for one optimization and, when a
// cache is attached, its cumulative effectiveness.
func printWhatIf(res *stubby.Result, cache *stubby.EstimateCache) {
	if res.WhatIfCalls == 0 {
		return
	}
	fmt.Printf("-- what-if calls: %d requested, %d full computations, %d flow cards\n",
		res.WhatIfCalls, res.WhatIfComputed, res.FlowCards)
	if res.ReusedSubplans > 0 {
		fmt.Printf("-- sub-plan reuse: replaced %d sub-DAG(s) with stored-result scans\n", res.ReusedSubplans)
	}
	if r := res.Robustness; r != nil {
		fmt.Printf("-- robustness (%d perturbation samples): mean %.1fs, p95 %.1fs, p99 %.1fs\n",
			r.Samples, r.Mean, r.P95, r.P99)
		if r.FailedOut > 0 {
			fmt.Printf("-- robustness: %d samples exhausted the retry bound\n", r.FailedOut)
		}
	}
	if cache != nil {
		st := cache.Stats()
		fmt.Printf("-- estimate cache: %d/%d hits (%.1f%%), %d entries, %d evictions\n",
			st.Hits, st.Lookups(), 100*st.HitRate(), st.Entries, st.Evictions)
	}
}

func comparePlanners(ctx context.Context, sess *stubby.Session, opts []stubby.SessionOption, wl *stubby.Workload) {
	// Baseline goes first: it anchors the speedup column.
	names := []string{"baseline"}
	for _, n := range sess.Planners() {
		if n != "baseline" {
			names = append(names, n)
		}
	}
	var baseTime float64
	for _, name := range names {
		// One session per planner, optimized through Session.Optimize so
		// -v progress and ctx cancellation apply to every search.
		psess, err := stubby.NewSession(append(append([]stubby.SessionOption{}, opts...), stubby.WithPlanner(name))...)
		if err != nil {
			fail(err)
		}
		p, err := psess.Planner(name)
		if err != nil {
			fail(err)
		}
		res, err := psess.Optimize(ctx, wl.Workflow)
		if err != nil {
			fail(err)
		}
		rep, err := sess.Run(ctx, wl.DFS.Clone(), res.Plan)
		if err != nil {
			fail(err)
		}
		if name == "baseline" {
			baseTime = rep.Makespan
		}
		fmt.Printf("  %-11s %d jobs  %8.1fs simulated  %6.2fx vs baseline  (optimized in %v)\n",
			p.Name(), len(res.Plan.Jobs), rep.Makespan, baseTime/rep.Makespan, res.Duration.Round(time.Millisecond))
	}
	// All per-planner sessions were built from opts, so they share any
	// estimate cache configured there; report its aggregate effect.
	if st, ok := sess.EstimateCacheStats(); ok {
		fmt.Printf("  estimate cache: %d/%d hits (%.1f%%), %d entries, %d evictions\n",
			st.Hits, st.Lookups(), 100*st.HitRate(), st.Entries, st.Evictions)
	}
}

// optimizeRemote submits the profiled workload to a stubbyd server and
// streams progress: the wire-format counterpart of the in-process path.
// The request carries the workload's cluster so the remote What-if engine
// costs against the same machine model the local session would.
func optimizeRemote(ctx context.Context, base string, wl *stubby.Workload, planner string, seed int64, verbose, dot bool) {
	if planner == "none" {
		fail(fmt.Errorf("-remote submits an optimization; pick an optimizer (see -list-optimizers)"))
	}
	client, err := stubby.NewClient(base)
	if err != nil {
		fail(err)
	}
	req := stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: planner, Seed: seed, Cluster: wl.Cluster}
	job, err := client.Submit(ctx, req)
	if err != nil {
		fail(err)
	}
	fmt.Printf("-- submitted to %s as %s\n", base, job.ID())
	if verbose {
		events, err := job.Events(ctx)
		if err != nil {
			fail(err)
		}
		for ev := range events {
			switch e := ev.(type) {
			case stubby.StateChangedEvent:
				fmt.Fprintf(os.Stderr, "[%s] state %s\n", e.Workflow, e.State)
			case stubby.UnitStartedEvent:
				fmt.Fprintf(os.Stderr, "[%s] unit %d (%s): %v\n", e.Workflow, e.Unit, e.Phase, e.Jobs)
			case stubby.BestCostImprovedEvent:
				fmt.Fprintf(os.Stderr, "[%s] unit %d: best <- %s (%.1f)\n", e.Workflow, e.Unit, e.Desc, e.Cost)
			}
		}
	}
	res, err := job.Wait(ctx)
	if err != nil {
		fail(err)
	}
	fmt.Printf("-- remote plan (estimated makespan %.1f, optimized in %v)\n",
		res.EstimatedCost, res.Duration.Round(time.Millisecond))
	fmt.Print(res.Plan.Summary())
	printWhatIf(res, nil)
	if dot {
		fmt.Println(res.Plan.DOT())
	}
}

// importAndOptimize loads a structure-only plan (annotations but no function
// bodies — the paper's Figure 2 deployment, where Stubby receives plans from
// remote workflow generators) and optimizes it. Planners never invoke stage
// functions, so any registered optimizer applies; imported plans cannot be
// executed, so -run is unavailable in this mode.
func importAndOptimize(ctx context.Context, path, planner string, seed int64, dot bool) {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	plan, err := stubby.ImportPlanStructure(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("== imported plan %s\n-- original plan\n", plan.Name)
	fmt.Print(plan.Summary())
	if planner == "none" {
		if dot {
			fmt.Println(plan.DOT())
		}
		return
	}
	sess, err := stubby.NewSession(stubby.WithSeed(seed), stubby.WithPlanner(planner))
	if err != nil {
		fail(err)
	}
	res, err := sess.Optimize(ctx, plan)
	if err != nil {
		fail(err)
	}
	fmt.Printf("-- optimized plan (estimated makespan %.1f)\n", res.EstimatedCost)
	fmt.Print(res.Plan.Summary())
	if dot {
		fmt.Println(res.Plan.DOT())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stubby:", err)
	os.Exit(1)
}
