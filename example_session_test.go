package stubby_test

import (
	"context"
	"fmt"
	"log"

	"github.com/stubby-mr/stubby"
)

// ExampleNewSession shows the session-based quick start: build a workload,
// profile it, optimize it, and execute both plans.
func ExampleNewSession() {
	wl, err := stubby.BuildWorkload("IR", stubby.WorkloadOptions{SizeFactor: 0.15, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(2),
		stubby.WithProfileFraction(0.5),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := sess.Profile(ctx, wl.Workflow, wl.DFS); err != nil {
		log.Fatal(err)
	}
	res, err := sess.Optimize(ctx, wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}
	before, err := sess.Run(ctx, wl.DFS.Clone(), wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}
	after, err := sess.Run(ctx, wl.DFS.Clone(), res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IR packs %d jobs into %d; optimized plan is faster: %v\n",
		len(wl.Workflow.Jobs), len(res.Plan.Jobs), after.Makespan < before.Makespan)
}

// progressLog implements a minimal progress reporter: embed NopObserver and
// override only the events of interest. Real observers feed dashboards or
// logs; this one just counts.
type progressLog struct {
	stubby.NopObserver
	units int
}

func (p *progressLog) UnitStarted(workflow, phase string, unit int, jobs []string) {
	p.units++
}

// ExampleWithObserver attaches a progress observer to a session; the
// optimizer reports every optimization unit it opens, every subplan it
// costs, and every incumbent improvement.
func ExampleWithObserver() {
	wl, err := stubby.BuildWorkload("IR", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	obs := &progressLog{}
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithObserver(obs),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := sess.Profile(ctx, wl.Workflow, wl.DFS); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Optimize(ctx, wl.Workflow); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer reported progress: %v\n", obs.units > 0)
	// Output: optimizer reported progress: true
}

// ExamplePlanners lists the registered planner names — the registry behind
// WithPlanner, Session.Planner, and the CLI's -list-optimizers flag.
func ExamplePlanners() {
	for _, name := range stubby.Planners() {
		fmt.Println(name)
	}
	// Output:
	// stubby
	// vertical
	// horizontal
	// baseline
	// starfish
	// ysmart
	// mrshare
}

// ExampleSession_Planner constructs a named comparator planner from the
// session registry and applies it.
func ExampleSession_Planner() {
	wl, err := stubby.BuildWorkload("PJ", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Profile(context.Background(), wl.Workflow, wl.DFS); err != nil {
		log.Fatal(err)
	}
	p, err := sess.Planner("ysmart")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := p.Plan(wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s produced a valid plan: %v\n", p.Name(), plan.Validate() == nil)
	// Output: YSmart produced a valid plan: true
}

// ExampleSession_OptimizeAll fans out over independent workflows on the
// session's bounded worker pool.
func ExampleSession_OptimizeAll() {
	var flows []*stubby.Workflow
	for _, abbr := range []string{"IR", "PJ"} {
		wl, err := stubby.BuildWorkload(abbr, stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		sess, err := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithSeed(3))
		if err != nil {
			log.Fatal(err)
		}
		if err := sess.Profile(context.Background(), wl.Workflow, wl.DFS); err != nil {
			log.Fatal(err)
		}
		flows = append(flows, wl.Workflow)
	}
	sess, err := stubby.NewSession(stubby.WithSeed(3), stubby.WithParallelism(2))
	if err != nil {
		log.Fatal(err)
	}
	results, err := sess.OptimizeAll(context.Background(), flows...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized %d workflows concurrently\n", len(results))
	// Output: optimized 2 workflows concurrently
}
