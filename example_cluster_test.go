package stubby_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"github.com/stubby-mr/stubby"
)

// ExampleClient_cluster runs the distributed topology in-process: a
// coordinator server fronting two workers that share one plan-store
// directory (normally `stubbyd -coordinator` plus two
// `stubbyd -worker -join ... -store shared/`). Submissions enter through
// the coordinator's unchanged /v1/jobs API, are dispatched to workers,
// and concurrent submissions of one workflow cost the whole cluster
// exactly one optimization.
func ExampleClient_cluster() {
	wl, err := stubby.BuildWorkload("IR", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	storeDir, err := os.MkdirTemp("", "stubby-cluster")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)

	// The coordinator: a plain server plus WithCoordinator.
	coord := stubby.NewCoordinator()
	csess, err := stubby.NewSession(stubby.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer csess.Close(ctx)
	chs := httptest.NewServer(stubby.NewServer(csess, stubby.WithCoordinator(coord)))
	defer chs.Close()

	// Two workers, each a replica of the shared plan store, each joined
	// to the coordinator by a heartbeating agent.
	stores := make([]*stubby.PlanStore, 2)
	for i := range stores {
		store, err := stubby.NewPlanStore(storeDir)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		stores[i] = store
		wsess, err := stubby.NewSession(stubby.WithSeed(1), stubby.WithPlanStore(store))
		if err != nil {
			log.Fatal(err)
		}
		defer wsess.Close(ctx)
		whs := httptest.NewServer(stubby.NewServer(wsess))
		defer whs.Close()
		actx, cancel := context.WithCancel(ctx)
		defer cancel()
		go stubby.NewWorkerAgent(chs.URL, whs.URL).Run(actx)
	}

	client, err := stubby.NewClient(chs.URL)
	if err != nil {
		log.Fatal(err)
	}
	// Wait for both workers to register before submitting.
	for {
		st, err := client.Stats(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if st.Cluster != nil && st.Cluster.LiveWorkers == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Two submissions of the same workflow: both come back with plans,
	// but the cluster optimized only once — the second is answered from
	// the shared plan store.
	for i := 0; i < 2; i++ {
		res, err := client.Optimize(ctx, stubby.OptimizeRequest{
			Workflow: wl.Workflow,
			Cluster:  wl.Cluster,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submission %d: plan returned: %v\n", i+1, res.Plan != nil)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	computes := stores[0].Stats().Computes + stores[1].Stats().Computes
	fmt.Printf("dispatches: %d, cluster-wide optimizations: %d\n", st.Cluster.Dispatches, computes)
	// Output:
	// submission 1: plan returned: true
	// submission 2: plan returned: true
	// dispatches: 2, cluster-wide optimizations: 1
}
