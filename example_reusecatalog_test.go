package stubby_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/stubby-mr/stubby"
)

// ExampleWithReuseCatalog attaches a sub-plan reuse catalog to a session:
// every dataset a Run materializes is published durably under the rooted
// fingerprint of its producing sub-DAG, and later optimizations — of this
// workflow or any other sharing an identical sub-DAG — replace the matched
// sub-DAG with a scan of the stored result whenever the What-if estimate
// says scanning beats recomputing. The fastest job is the one never run.
func ExampleWithReuseCatalog() {
	wl, err := stubby.BuildWorkload("IR", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "stubby-reuse-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// In a deployment the directory would be a fixed path shared across
	// process restarts (stubbyd -reuse-catalog).
	cat, err := stubby.NewReuseCatalog(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer cat.Close()
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithReuseCatalog(cat),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Profile(ctx, wl.Workflow, wl.DFS); err != nil {
		log.Fatal(err)
	}

	// Running the workflow to completion publishes its materialized
	// intermediate datasets into the catalog.
	if _, err := sess.Run(ctx, wl.DFS.Clone(), wl.Workflow); err != nil {
		log.Fatal(err)
	}

	// A later optimization finds the intermediates already materialized
	// and plans a scan of the stored results instead of recomputing them.
	res, err := sess.Optimize(ctx, wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}
	stats, _ := sess.ReuseCatalogStats()
	fmt.Println("intermediates published:", stats.Entries > 0)
	fmt.Println("sub-DAGs replaced with stored-result scans:", res.ReusedSubplans)
	fmt.Println("plan shrank:", len(res.Plan.Jobs) < len(wl.Workflow.Jobs))
	fmt.Println("catalog hits:", stats.Hits > 0)
	// Output:
	// intermediates published: true
	// sub-DAGs replaced with stored-result scans: 1
	// plan shrank: true
	// catalog hits: true
}
