package stubby

import (
	"github.com/stubby-mr/stubby/internal/stubbyerr"
)

// Error is the structured error of the stubby API. Every public entry
// point — Session methods, Submit handles, the deprecated package-level
// wrappers, and Client calls against a stubbyd server — surfaces failures
// as (or wrapping) an *Error, so one errors.As(*stubby.Error) branch works
// across library and wire:
//
//	var se *stubby.Error
//	if errors.As(err, &se) {
//		log.Printf("kind=%s workflow=%s job=%s", se.Kind, se.Workflow, se.Job)
//	}
//
// Kinds also work directly as errors.Is sentinels:
//
//	if errors.Is(err, stubby.ErrKindOverloaded) { retryLater() }
type Error = stubbyerr.Error

// ErrorKind classifies an Error; see the ErrKind constants.
type ErrorKind = stubbyerr.Kind

// Error kinds. Each is itself an error value usable as an errors.Is
// target.
const (
	// ErrKindInternal is the catch-all for unclassified failures.
	ErrKindInternal = stubbyerr.KindInternal
	// ErrKindInvalid marks malformed inputs: invalid workflows,
	// undecodable wire documents, out-of-range options.
	ErrKindInvalid = stubbyerr.KindInvalid
	// ErrKindUnknownPlanner marks a planner name absent from the registry.
	ErrKindUnknownPlanner = stubbyerr.KindUnknownPlanner
	// ErrKindOverloaded marks a submission shed by a full admission queue;
	// the job was never enqueued and retrying later is safe.
	ErrKindOverloaded = stubbyerr.KindOverloaded
	// ErrKindUnavailable marks a submission rejected by a draining or
	// closed service.
	ErrKindUnavailable = stubbyerr.KindUnavailable
	// ErrKindNotFound marks an unknown job ID.
	ErrKindNotFound = stubbyerr.KindNotFound
	// ErrKindConflict marks a request invalid in the job's current state
	// (e.g. fetching the result of an unfinished job).
	ErrKindConflict = stubbyerr.KindConflict
	// ErrKindCanceled marks work stopped by cancellation.
	ErrKindCanceled = stubbyerr.KindCanceled
	// ErrKindDeadline marks work stopped by a deadline.
	ErrKindDeadline = stubbyerr.KindDeadline
)
