package stubby_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/stubby-mr/stubby"
)

// blockingPlanner is a registrable planner whose search parks until
// released (or until its context is canceled) — the instrument for
// exercising queue admission, overload shedding, and mid-flight
// cancellation deterministically.
type blockingPlanner struct {
	started chan struct{} // buffered; receives one token per started plan
	release chan struct{}
}

func (p blockingPlanner) Name() string { return "blocking" }

func (p blockingPlanner) Plan(w *stubby.Workflow) (*stubby.Workflow, error) {
	return p.PlanContext(context.Background(), w)
}

func (p blockingPlanner) PlanContext(ctx context.Context, w *stubby.Workflow) (*stubby.Workflow, error) {
	select {
	case p.started <- struct{}{}:
	default:
	}
	select {
	case <-p.release:
		return w, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// registerBlocking registers the blocking planner on sess and returns its
// control channels.
func registerBlocking(t *testing.T, sess *stubby.Session) (started, release chan struct{}) {
	t.Helper()
	started = make(chan struct{}, 16)
	release = make(chan struct{})
	err := sess.RegisterPlanner(stubby.PlannerSpec{
		Name:        "blocking",
		Description: "parks until released (test instrument)",
		New: func(c *stubby.Cluster, seed int64) stubby.Planner {
			return blockingPlanner{started: started, release: release}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return started, release
}

// tinyWorkload builds a small unprofiled workload (fallback estimates are
// fine for lifecycle tests; profiled search behavior is covered by
// TestSubmitMatchesOptimize).
func tinyWorkload(t *testing.T, abbr string) *stubby.Workload {
	t.Helper()
	wl, err := stubby.BuildWorkload(abbr, stubby.WorkloadOptions{SizeFactor: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// TestSubmitMatchesOptimize is the core async-API contract: Submit's
// result is the same plan Optimize returns, the handle walks
// Queued→Running→Done, and the event stream replays the full lifecycle
// with search progress to any subscriber, even one attaching after the
// job finished.
func TestSubmitMatchesOptimize(t *testing.T) {
	wl := profiledWorkload(t, "IR", 0.1, 1)
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 40}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(context.Background())
	ctx := context.Background()

	want, err := sess.Optimize(ctx, wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() == "" || h.WorkflowName() != wl.Workflow.Name {
		t.Fatalf("handle id=%q workflow=%q", h.ID(), h.WorkflowName())
	}
	got, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fpOf(t, got.Plan) != fpOf(t, want.Plan) {
		t.Fatalf("Submit plan differs from Optimize plan")
	}
	if got.EstimatedCost != want.EstimatedCost {
		t.Fatalf("Submit cost %v != Optimize cost %v", got.EstimatedCost, want.EstimatedCost)
	}
	if st := h.State(); st != stubby.StateDone {
		t.Fatalf("state after Wait = %v, want done", st)
	}
	if p := h.Progress(); p.Units == 0 || p.Subplans == 0 {
		t.Fatalf("progress snapshot empty: %+v", p)
	}

	// Late subscription replays the entire stream.
	var states []stubby.JobState
	units := 0
	for ev := range h.Events(ctx) {
		switch e := ev.(type) {
		case stubby.StateChangedEvent:
			states = append(states, e.State)
		case stubby.UnitStartedEvent:
			units++
		}
	}
	wantStates := []stubby.JobState{stubby.StateQueued, stubby.StateRunning, stubby.StateDone}
	if len(states) != len(wantStates) {
		t.Fatalf("state events %v, want %v", states, wantStates)
	}
	for i := range wantStates {
		if states[i] != wantStates[i] {
			t.Fatalf("state events %v, want %v", states, wantStates)
		}
	}
	if units == 0 {
		t.Fatal("no UnitStarted events in replay")
	}
}

// TestSubmitOverloadShedsTyped: with one worker parked and the depth-1
// queue holding one job, the next submission must shed immediately with
// ErrKindOverloaded — not hang, not queue.
func TestSubmitOverloadShedsTyped(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithParallelism(1),
		stubby.WithQueueDepth(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	started, release := registerBlocking(t, sess)
	defer sess.Close(context.Background())
	ctx := context.Background()
	req := stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "blocking"}

	running, err := sess.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds job 1; the queue slot is free
	queued, err := sess.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Submit(ctx, req)
	if !errors.Is(err, stubby.ErrKindOverloaded) {
		t.Fatalf("third submit = %v, want ErrKindOverloaded", err)
	}
	var se *stubby.Error
	if !errors.As(err, &se) {
		t.Fatalf("overload error is not *stubby.Error: %v", err)
	}
	if se.Workflow != wl.Workflow.Name {
		t.Fatalf("overload error workflow = %q, want %q", se.Workflow, wl.Workflow.Name)
	}

	close(release)
	for _, h := range []*stubby.OptimizeHandle{running, queued} {
		if _, err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSubmitCancel covers both cancellation windows: a queued job
// transitions immediately and never runs; a running job transitions when
// the search observes its canceled context.
func TestSubmitCancel(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithParallelism(1),
		stubby.WithQueueDepth(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	started, release := registerBlocking(t, sess)
	defer close(release)
	defer sess.Close(context.Background())
	ctx := context.Background()
	req := stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "blocking"}

	running, err := sess.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := sess.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel while queued: immediate, never runs.
	queued.Cancel()
	if st := queued.State(); st != stubby.StateCanceled {
		t.Fatalf("queued job state after cancel = %v, want canceled", st)
	}
	if _, err := queued.Wait(ctx); !errors.Is(err, stubby.ErrKindCanceled) {
		t.Fatalf("queued Wait = %v, want ErrKindCanceled", err)
	}

	// Cancel while running: the blocking search unparks via ctx.
	running.Cancel()
	if _, err := running.Wait(ctx); !errors.Is(err, stubby.ErrKindCanceled) {
		t.Fatalf("running Wait = %v, want ErrKindCanceled", err)
	}
	if st := running.State(); st != stubby.StateCanceled {
		t.Fatalf("running job state = %v, want canceled", st)
	}
	// The canceled-while-queued job must not have started.
	select {
	case <-started:
		t.Fatal("canceled queued job started")
	default:
	}
}

// TestSessionCloseDrains: Close rejects new submissions with
// ErrKindUnavailable and waits for admitted jobs.
func TestSessionCloseDrains(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	sess, err := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h, err := sess.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if st := h.State(); st != stubby.StateDone {
		t.Fatalf("job state after Close = %v, want done", st)
	}
	_, err = sess.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow})
	if !errors.Is(err, stubby.ErrKindUnavailable) {
		t.Fatalf("submit after Close = %v, want ErrKindUnavailable", err)
	}
}

// TestSubmitValidation: nil workflows and unknown planners fail fast with
// their kinds, before touching the queue.
func TestSubmitValidation(t *testing.T) {
	sess, err := stubby.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(context.Background())
	ctx := context.Background()
	if _, err := sess.Submit(ctx, stubby.OptimizeRequest{}); !errors.Is(err, stubby.ErrKindInvalid) {
		t.Fatalf("nil workflow = %v, want ErrKindInvalid", err)
	}
	wl := tinyWorkload(t, "IR")
	_, err = sess.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "nope"})
	if !errors.Is(err, stubby.ErrKindUnknownPlanner) {
		t.Fatalf("unknown planner = %v, want ErrKindUnknownPlanner", err)
	}
}

// TestEstimateContextCancellation: Session.Estimate observes its context
// between What-if jobs and surfaces ErrKindCanceled.
func TestEstimateContextCancellation(t *testing.T) {
	wl := profiledWorkload(t, "PJ", 0.05, 1)
	sess, err := stubby.NewSession(stubby.WithCluster(wl.Cluster))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Estimate(ctx, wl.Workflow); !errors.Is(err, stubby.ErrKindCanceled) {
		t.Fatalf("Estimate under canceled ctx = %v, want ErrKindCanceled", err)
	}
	// The deprecated ctx-less wrapper still estimates.
	est, err := sess.EstimateCost(wl.Workflow)
	if err != nil || est == nil {
		t.Fatalf("EstimateCost = %v, %v", est, err)
	}
	// And the context-aware path agrees with it.
	est2, err := sess.Estimate(context.Background(), wl.Workflow)
	if err != nil || est2.Makespan != est.Makespan {
		t.Fatalf("Estimate = %v, %v; want makespan %v", est2, err, est.Makespan)
	}
}

// TestDeprecatedWrappersCarryTaxonomy: every deprecated package-level
// entry point surfaces *stubby.Error on failure.
func TestDeprecatedWrappersCarryTaxonomy(t *testing.T) {
	// An invalid workflow: a job reading a dataset that does not exist.
	bad := &stubby.Workflow{Name: "bad"}
	bad.Jobs = append(bad.Jobs, &stubby.Job{
		ID: "j1",
		MapBranches: []stubby.MapBranch{{
			Input: "missing",
			Stages: []stubby.Stage{stubby.MapStage("id", func(k, v stubby.Tuple, emit stubby.Emit) {
				emit(k, v)
			}, 0)},
		}},
		ReduceGroups: []stubby.ReduceGroup{{Output: "out"}},
	})

	_, err := stubby.Optimize(stubby.DefaultCluster(), bad, stubby.Options{})
	var se *stubby.Error
	if !errors.As(err, &se) {
		t.Fatalf("Optimize on invalid workflow = %v, want *stubby.Error", err)
	}
	if !errors.Is(err, stubby.ErrKindInvalid) {
		t.Fatalf("Optimize kind = %v, want ErrKindInvalid", se.Kind)
	}
	if se.Workflow != "bad" {
		t.Fatalf("Optimize error workflow = %q, want bad", se.Workflow)
	}

	if err := stubby.Profile(stubby.DefaultCluster(), bad, stubby.NewDFS(), 2.0, 1); !errors.As(err, &se) {
		t.Fatalf("Profile with invalid fraction = %v, want *stubby.Error", err)
	}
	if _, err := stubby.EstimateCost(stubby.DefaultCluster(), bad); err != nil {
		// Fallback estimation tolerates missing annotations; reaching here
		// means the workflow itself broke TopoSort — still must be typed.
		if !errors.As(err, &se) {
			t.Fatalf("EstimateCost = %v, want *stubby.Error", err)
		}
	}
}

// TestObserverEventsAdapter: the deprecated-Observer adapter routes every
// event type to its method.
func TestObserverEventsAdapter(t *testing.T) {
	rec := &recordingObserver{}
	sink := stubby.ObserverEvents(rec)
	sink(stubby.UnitStartedEvent{Workflow: "w", Phase: "vertical", Unit: 1, Jobs: []string{"j"}})
	sink(stubby.SubplanEnumeratedEvent{Workflow: "w", Unit: 1, Desc: "d", Cost: 2})
	sink(stubby.BestCostImprovedEvent{Workflow: "w", Unit: 1, Desc: "d", Cost: 1})
	sink(stubby.JobFinishedEvent{Workflow: "w", Job: "j", Start: 0, End: 1})
	sink(stubby.CacheReportEvent{Workflow: "w"})
	sink(stubby.StateChangedEvent{Workflow: "w", State: stubby.StateDone}) // dropped, no panic
	want := []string{"unit", "subplan", "best", "job", "cache"}
	if len(rec.calls) != len(want) {
		t.Fatalf("adapter calls %v, want %v", rec.calls, want)
	}
	for i := range want {
		if rec.calls[i] != want[i] {
			t.Fatalf("adapter calls %v, want %v", rec.calls, want)
		}
	}
}

type recordingObserver struct {
	stubby.NopObserver
	calls []string
}

func (r *recordingObserver) UnitStarted(string, string, int, []string) {
	r.calls = append(r.calls, "unit")
}
func (r *recordingObserver) SubplanEnumerated(string, int, string, float64) {
	r.calls = append(r.calls, "subplan")
}
func (r *recordingObserver) BestCostImproved(string, int, string, float64) {
	r.calls = append(r.calls, "best")
}
func (r *recordingObserver) JobFinished(string, string, float64, float64) {
	r.calls = append(r.calls, "job")
}
func (r *recordingObserver) EstimateCacheReport(string, stubby.EstimateCacheStats) {
	r.calls = append(r.calls, "cache")
}

// TestSubmitFeedsDeprecatedObserver: a session Observer keeps receiving
// search progress for Submit traffic (the deprecated adapter in action).
func TestSubmitFeedsDeprecatedObserver(t *testing.T) {
	wl := profiledWorkload(t, "IR", 0.1, 1)
	rec := &recordingObserver{}
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithObserver(rec),
		stubby.WithParallelism(1), // serial: the recording observer is not locked
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 20}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(context.Background())
	h, err := sess.Submit(context.Background(), stubby.OptimizeRequest{Workflow: wl.Workflow})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	saw := map[string]bool{}
	for _, c := range rec.calls {
		saw[c] = true
	}
	if !saw["unit"] || !saw["subplan"] {
		t.Fatalf("observer missed submit progress: %v", rec.calls)
	}
}

// optionsObserver implements the optimizer-level observer interface of
// stubby.Options.Observer.
type optionsObserver struct {
	mu    sync.Mutex
	units int
}

func (o *optionsObserver) UnitStarted(phase string, unit int, jobs []string) {
	o.mu.Lock()
	o.units++
	o.mu.Unlock()
}
func (o *optionsObserver) SubplanEnumerated(unit int, desc string, cost float64) {}
func (o *optionsObserver) BestCostImproved(unit int, desc string, cost float64)  {}

// TestSubmitKeepsOptionsObserver: an observer installed directly through
// WithOptimizerOptions keeps receiving search events for submitted jobs
// (the bridge tees instead of replacing).
func TestSubmitKeepsOptionsObserver(t *testing.T) {
	wl := profiledWorkload(t, "IR", 0.1, 1)
	obs := &optionsObserver{}
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 20, Observer: obs}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(context.Background())
	h, err := sess.Submit(context.Background(), stubby.OptimizeRequest{Workflow: wl.Workflow})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	obs.mu.Lock()
	units := obs.units
	obs.mu.Unlock()
	if units == 0 {
		t.Fatal("Options.Observer received no events from Submit")
	}
	if p := h.Progress(); p.Units != units {
		t.Fatalf("bridge and Options.Observer disagree: %d vs %d units", p.Units, units)
	}
}

// waitGoroutinesBelow asserts the goroutine count returns to (near) the
// baseline, retrying while stragglers unwind.
func waitGoroutinesBelow(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+3 { // tolerance for runtime/testing helpers
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
