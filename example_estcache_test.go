package stubby_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"github.com/stubby-mr/stubby"
)

// ExampleWithEstimateCache attaches a shared estimate cache to a session:
// the What-if estimates behind Optimize are memoized under canonical
// workflow fingerprints, so re-optimizing the same (or an overlapping)
// workflow reuses them instead of recomputing. Caching is transparent —
// the chosen plan and cost are byte-identical with and without it.
func ExampleWithEstimateCache() {
	wl, err := stubby.BuildWorkload("IR", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	uncached, err := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := uncached.Profile(ctx, wl.Workflow, wl.DFS); err != nil {
		log.Fatal(err)
	}
	plain, err := uncached.Optimize(ctx, wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}

	// One cache can back any number of sessions; pass it to each via
	// WithEstimateCache and every search amortizes the others' estimates.
	// Capacity bounds memory via LRU eviction (0 picks a default); size it
	// to the working set when full replay matters, as it does here.
	cache := stubby.NewEstimateCache(1 << 16)
	cached, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithEstimateCache(cache),
	)
	if err != nil {
		log.Fatal(err)
	}
	first, err := cached.Optimize(ctx, wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}
	again, err := cached.Optimize(ctx, wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := stubby.ExportPlan(&a, plain.Plan); err != nil {
		log.Fatal(err)
	}
	if err := stubby.ExportPlan(&b, first.Plan); err != nil {
		log.Fatal(err)
	}
	stats, _ := cached.EstimateCacheStats()
	fmt.Println("cached plan identical to uncached:", bytes.Equal(a.Bytes(), b.Bytes()))
	fmt.Println("costs equal:", plain.EstimatedCost == first.EstimatedCost && first.EstimatedCost == again.EstimatedCost)
	fmt.Println("re-optimization computed nothing new:", again.WhatIfComputed == 0)
	fmt.Println("cache saw reuse:", stats.Hits > 0)
	// Output:
	// cached plan identical to uncached: true
	// costs equal: true
	// re-optimization computed nothing new: true
	// cache saw reuse: true
}
