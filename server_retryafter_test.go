package stubby_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/stubby-mr/stubby"
	"github.com/stubby-mr/stubby/internal/planio"
)

// TestServerRetryAfterDerivedFromQueueDepth: the shed response's
// Retry-After header is proportional to the work outstanding — one
// retryPerJob unit per queued or running job — not a hard-coded constant,
// and clamps to [1, 60] whole seconds.
func TestServerRetryAfterDerivedFromQueueDepth(t *testing.T) {
	sess, err := stubby.NewSession(
		stubby.WithSeed(1),
		stubby.WithParallelism(1),
		stubby.WithQueueDepth(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(context.Background())
	started, release := registerBlocking(t, sess)
	defer close(release)

	wl := tinyWorkload(t, "IR")
	submit := func(t *testing.T, url string, seed int64) *http.Response {
		t.Helper()
		// Distinct seeds keep each submission a distinct job.
		body, err := planio.EncodeRequest(&planio.Request{
			Planner: "blocking", Seed: seed, Plan: wl.Workflow,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	srv := stubby.NewServer(sess, stubby.WithRetryAfterPerJob(2*time.Second))
	hs := httptest.NewServer(srv)
	defer hs.Close()

	// Park one job on the single worker, then fill the depth-3 queue.
	resp := submit(t, hs.URL, 1)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-started
	for seed := int64(2); seed <= 4; seed++ {
		resp := submit(t, hs.URL, seed)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d: %d", seed, resp.StatusCode)
		}
	}

	// Shed: 1 busy + 3 queued at 2s per job → Retry-After: 8.
	shed := submit(t, hs.URL, 99)
	shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", shed.StatusCode)
	}
	if got := shed.Header.Get("Retry-After"); got != "8" {
		t.Errorf("Retry-After = %q, want 8 (4 outstanding jobs x 2s)", got)
	}

	// Same session through a steeper per-job hint: 4 x 45s = 180s clamps
	// to the 60s ceiling.
	steep := httptest.NewServer(stubby.NewServer(sess, stubby.WithRetryAfterPerJob(45*time.Second)))
	defer steep.Close()
	shed = submit(t, steep.URL, 100)
	shed.Body.Close()
	if got := shed.Header.Get("Retry-After"); got != "60" {
		t.Errorf("clamped Retry-After = %q, want 60", got)
	}

	// Default hint is one second per outstanding job; a non-positive
	// option value is ignored rather than disabling the header.
	def := httptest.NewServer(stubby.NewServer(sess, stubby.WithRetryAfterPerJob(0)))
	defer def.Close()
	shed = submit(t, def.URL, 101)
	shed.Body.Close()
	if got := shed.Header.Get("Retry-After"); got != "4" {
		t.Errorf("default Retry-After = %q, want 4 (4 outstanding jobs x 1s)", got)
	}
}
