package stubby_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/stubby-mr/stubby/internal/gen"
)

// TestGenCorpusDescriptors locks the generator's output for the corpus
// seeds into reviewable golden files. Any change to the generator — new
// templates, probability shifts, data tweaks — changes descriptors and
// fails here until the refreshed corpus is reviewed and committed:
//
//	go test -run TestGenCorpusDescriptors -update .
//
// Updating is forbidden in CI (like the plan snapshots), so generator
// drift is always an explicit diff. Reproduce any corpus case with
// `stubby-bench -gen -seed=N -gen-desc`.
func TestGenCorpusDescriptors(t *testing.T) {
	if *update && os.Getenv("CI") != "" {
		t.Fatal("-update is forbidden in CI: regenerate the corpus locally and commit the diff")
	}
	// gen.CorpusSeeds golden descriptors, one per seed: the same seeds
	// prime the gen package's fuzz targets, so the corpus is simultaneously
	// the fuzzers' starting population and the generator's drift detector.
	for seed := int64(1); seed <= gen.CorpusSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			got := gen.Generate(seed, gen.Options{}).Descriptor()
			path := filepath.Join("testdata", "gen", fmt.Sprintf("seed-%02d.golden", seed))
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run `go test -run TestGenCorpusDescriptors -update .`): %v", err)
			}
			if string(want) != got {
				t.Errorf("generator drift for seed %d: descriptor differs from %s\n--- got\n%s\n--- want\n%s",
					seed, path, got, want)
			}
		})
	}
}
