package stubby_test

// Chaos and crash-recovery suite for the journaled service: in-process
// restart recovery, cancellation semantics across restarts, event-stream
// resume exactness at every cut point, client retry behavior, and the
// full subprocess crash drill — stubbyd hard-killed and restarted
// mid-batch behind a deterministic fault proxy, with every submission
// converging to the fault-free plan.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/stubby-mr/stubby"
	"github.com/stubby-mr/stubby/internal/faultproxy"
)

// journaledFixture is one "process instance" of a journaled server: a
// session with the blocking test planner, a plan store and journal over
// the given directories, and an HTTP listener. Crash simulation closes
// the listener and journal without draining the session.
type journaledFixture struct {
	sess    *stubby.Session
	srv     *stubby.Server
	hs      *httptest.Server
	client  *stubby.Client
	journal *stubby.Journal
	store   *stubby.PlanStore
	started chan struct{}
	release chan struct{}
}

func newJournaledFixture(t *testing.T, storeDir, journalDir string) *journaledFixture {
	t.Helper()
	store, err := stubby.NewPlanStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := stubby.NewSession(
		stubby.WithSeed(1),
		stubby.WithParallelism(1),
		stubby.WithQueueDepth(8),
		stubby.WithPlanStore(store),
	)
	if err != nil {
		t.Fatal(err)
	}
	started, release := registerBlocking(t, sess)
	journal, err := stubby.OpenJournal(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := stubby.NewServer(sess, stubby.WithJournal(journal))
	hs := httptest.NewServer(srv)
	client, err := stubby.NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	return &journaledFixture{sess: sess, srv: srv, hs: hs, client: client,
		journal: journal, store: store, started: started, release: release}
}

// crash simulates a hard kill: the listener and journal drop with jobs
// still in flight and nothing drains. The session's parked planner
// goroutines are released afterward so the test process does not leak
// them; their late journal appends land on a closed journal and are
// counted as errors, exactly like writes lost to a real kill.
func (f *journaledFixture) crash(t *testing.T) {
	t.Helper()
	f.hs.CloseClientConnections()
	f.hs.Close()
	if err := f.journal.Close(); err != nil {
		t.Fatal(err)
	}
	close(f.release)
}

// waitRemoteState polls the job until it reaches a terminal state.
func waitRemoteState(t *testing.T, c *stubby.Client, id string, want stubby.JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Job(id).Status(context.Background())
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State() == want {
			return
		}
		if st.State().Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %v, want %v", id, st.State(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJournalRestartRecovery: jobs in flight at a hard kill — one
// running, one still queued — are re-enqueued under their original IDs
// when a new server opens the same journal, and complete. A duplicate
// submission of an in-flight request attaches to the existing job
// instead of starting a second one.
func TestJournalRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	storeDir, journalDir := filepath.Join(dir, "store"), filepath.Join(dir, "journal")
	ctx := context.Background()

	f1 := newJournaledFixture(t, storeDir, journalDir)
	wlA, wlB := tinyWorkload(t, "IR"), tinyWorkload(t, "BR")
	reqA := stubby.OptimizeRequest{Workflow: wlA.Workflow, Planner: "blocking", Cluster: wlA.Cluster}
	reqB := stubby.OptimizeRequest{Workflow: wlB.Workflow, Planner: "blocking", Cluster: wlB.Cluster}

	jobA, err := f1.client.Submit(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	<-f1.started // A is running (parked in the planner)
	jobB, err := f1.client.Submit(ctx, reqB)
	if err != nil {
		t.Fatal(err)
	}

	// Idempotent resubmission: the same request attaches to the live job.
	dup, err := f1.client.Submit(ctx, reqA)
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID() != jobA.ID() {
		t.Fatalf("duplicate submission got job %s, want attach to %s", dup.ID(), jobA.ID())
	}

	f1.crash(t)

	f2 := newJournaledFixture(t, storeDir, journalDir)
	defer func() {
		f2.hs.Close()
		f2.journal.Close()
	}()
	close(f2.release) // recovered jobs run through the planner immediately

	if stats, ok := f2.srv.JournalStats(); !ok || stats.Recovered != 2 {
		t.Fatalf("recovered = %+v, ok=%v; want 2 incomplete jobs recovered", stats, ok)
	}
	waitRemoteState(t, f2.client, jobA.ID(), stubby.StateDone)
	waitRemoteState(t, f2.client, jobB.ID(), stubby.StateDone)
}

// TestJournalRestartCanceledStaysCanceled: a job canceled before the
// crash has its terminal record in the journal, so recovery must not
// resurrect it — after restart it is simply gone (ErrKindNotFound),
// while its incomplete sibling is recovered.
func TestJournalRestartCanceledStaysCanceled(t *testing.T) {
	dir := t.TempDir()
	storeDir, journalDir := filepath.Join(dir, "store"), filepath.Join(dir, "journal")
	ctx := context.Background()

	f1 := newJournaledFixture(t, storeDir, journalDir)
	wlA, wlB := tinyWorkload(t, "IR"), tinyWorkload(t, "BR")
	jobA, err := f1.client.Submit(ctx, stubby.OptimizeRequest{Workflow: wlA.Workflow, Planner: "blocking", Cluster: wlA.Cluster})
	if err != nil {
		t.Fatal(err)
	}
	<-f1.started
	jobB, err := f1.client.Submit(ctx, stubby.OptimizeRequest{Workflow: wlB.Workflow, Planner: "blocking", Cluster: wlB.Cluster})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jobB.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	waitRemoteState(t, f1.client, jobB.ID(), stubby.StateCanceled)

	f1.crash(t)

	f2 := newJournaledFixture(t, storeDir, journalDir)
	defer func() {
		f2.hs.Close()
		f2.journal.Close()
	}()
	close(f2.release)

	if stats, ok := f2.srv.JournalStats(); !ok || stats.Recovered != 1 {
		t.Fatalf("recovered = %+v, ok=%v; want only the incomplete job recovered", stats, ok)
	}
	waitRemoteState(t, f2.client, jobA.ID(), stubby.StateDone)
	if _, err := f2.client.Job(jobB.ID()).Status(ctx); !errors.Is(err, stubby.ErrKindNotFound) {
		t.Fatalf("pre-crash-canceled job resurrected: err=%v, want ErrKindNotFound", err)
	}
}

// TestWireCancelRacesCompletion: Cancel issued concurrently with the
// job's completion must land in exactly one consistent terminal state —
// Done with a result, or Canceled with a typed error — on the wire and
// in the journal, never a mix.
func TestWireCancelRacesCompletion(t *testing.T) {
	for i := 0; i < 4; i++ {
		dir := t.TempDir()
		f := newJournaledFixture(t, filepath.Join(dir, "store"), filepath.Join(dir, "journal"))
		ctx := context.Background()
		wl := tinyWorkload(t, "IR")
		job, err := f.client.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "blocking", Cluster: wl.Cluster})
		if err != nil {
			t.Fatal(err)
		}
		<-f.started

		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); close(f.release) }()
		go func() { defer wg.Done(); _, _ = job.Cancel(ctx) }()
		wg.Wait()

		res, err := job.Wait(ctx)
		st, serr := job.Status(ctx)
		if serr != nil {
			t.Fatal(serr)
		}
		switch {
		case err == nil:
			if res == nil || st.State() != stubby.StateDone {
				t.Fatalf("iter %d: Wait succeeded but state=%v res=%v", i, st.State(), res)
			}
		case errors.Is(err, stubby.ErrKindCanceled):
			if st.State() != stubby.StateCanceled {
				t.Fatalf("iter %d: canceled error but state=%v", i, st.State())
			}
		default:
			t.Fatalf("iter %d: unexpected outcome: %v", i, err)
		}
		f.hs.Close()
		f.journal.Close()
	}
}

// TestReadyzFlipsOnDrain: /healthz is liveness (200 even while
// draining); /readyz is readiness and flips to 503 with Retry-After the
// moment Drain begins, so load balancers stop routing before the
// listener closes.
func TestReadyzFlipsOnDrain(t *testing.T) {
	dir := t.TempDir()
	f := newJournaledFixture(t, filepath.Join(dir, "store"), filepath.Join(dir, "journal"))
	defer func() {
		f.hs.Close()
		f.journal.Close()
	}()
	close(f.release)

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(f.hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %s", resp.Status)
	}
	if err := f.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while drained: %s, want 200 (liveness)", resp.Status)
	}
	resp := get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while drained: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz 503 missing Retry-After")
	}
}

// eventLines fetches one event-stream connection's complete NDJSON lines.
func eventLines(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		if line := bytes.TrimSpace(sc.Bytes()); len(line) > 0 {
			lines = append(lines, string(line))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestEventStreamResumeExactness: the ?from=N resume cursor is exact at
// EVERY cut point — for each k, the resumed stream is byte-for-byte the
// full stream's suffix from line k, so a client that reconnects after
// reading k lines replays precisely the missed events: no gaps, no
// duplicates, terminal event included exactly once.
func TestEventStreamResumeExactness(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	_, hs, client := serviceFixture(t)
	ctx := context.Background()
	job, err := client.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Cluster: wl.Cluster})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	base := hs.URL + "/v1/jobs/" + job.ID() + "/events"
	full := eventLines(t, base)
	if len(full) < 3 {
		t.Fatalf("stream too short to cut: %d lines", len(full))
	}
	for k := 0; k <= len(full); k++ {
		got := eventLines(t, fmt.Sprintf("%s?from=%d", base, k))
		want := full[k:]
		if len(got) != len(want) {
			t.Fatalf("from=%d: %d lines, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("from=%d line %d:\n got %s\nwant %s", k, i, got[i], want[i])
			}
		}
	}
	// Past-the-end cursors are not an error: the job is terminal, so the
	// stream closes with nothing to replay.
	if got := eventLines(t, fmt.Sprintf("%s?from=%d", base, len(full)+5)); len(got) != 0 {
		t.Fatalf("past-end cursor replayed %d lines", len(got))
	}
	// Malformed cursors are rejected as invalid.
	resp, err := http.Get(base + "?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("from=-1: %s, want 400", resp.Status)
	}
}

// TestClientEventResumeThroughFaults: a retry-policy client streaming
// events through a proxy that truncates responses mid-body reassembles
// the exact event sequence across reconnects — the end-to-end form of
// the cursor-exactness property.
func TestClientEventResumeThroughFaults(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	_, hs, direct := serviceFixture(t)
	ctx := context.Background()
	job, err := direct.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Cluster: wl.Cluster})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// The reference sequence, fetched fault-free.
	want := collectEvents(t, direct, job.ID())

	// Sweep proxy seeds: the cut points vary per seed, the reassembled
	// stream must not. At least one sweep must actually truncate and
	// resume, or the test exercised nothing.
	var truncations, resumes uint64
	for seed := int64(1); seed <= 6; seed++ {
		proxy, err := faultproxy.New(strings.TrimPrefix(hs.URL, "http://"), seed,
			faultproxy.Profile{TruncateProb: 0.8, CutAfterMaxBytes: 900})
		if err != nil {
			t.Fatal(err)
		}
		flaky, err := stubby.NewClient(proxy.URL(), stubby.WithRetryPolicy(stubby.RetryPolicy{
			MaxAttempts: 10, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: seed,
		}))
		if err != nil {
			t.Fatal(err)
		}
		got := collectEvents(t, flaky, job.ID())
		if len(got) != len(want) {
			t.Fatalf("seed %d: resumed stream has %d events, want %d (proxy stats %+v)",
				seed, len(got), len(want), proxy.Stats())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d event %d: got %#v, want %#v", seed, i, got[i], want[i])
			}
		}
		truncations += proxy.Stats().Truncations
		resumes += flaky.Metrics().Resumes
		proxy.Close()
	}
	if truncations == 0 {
		t.Fatal("proxy injected no truncations; test exercised nothing")
	}
	if resumes == 0 {
		t.Fatal("client reported no stream resumes despite truncation")
	}
}

// collectEvents drains a job's full event stream into comparable strings.
func collectEvents(t *testing.T, c *stubby.Client, id string) []string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ch, err := c.Job(id).Events(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for ev := range ch {
		out = append(out, fmt.Sprintf("%#v", ev))
	}
	return out
}

// fakeEndpoint is a scripted HTTP server for retry-policy unit tests: it
// serves the canned responses in order, then repeats the last one.
func fakeEndpoint(t *testing.T, responses ...func(w http.ResponseWriter)) (*httptest.Server, *int, *http.Header) {
	t.Helper()
	var (
		mu       sync.Mutex
		attempts int
		lastHdr  http.Header
	)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		i := attempts
		attempts++
		lastHdr = r.Header.Clone()
		mu.Unlock()
		if i >= len(responses) {
			i = len(responses) - 1
		}
		responses[i](w)
	}))
	t.Cleanup(hs.Close)
	return hs, &attempts, &lastHdr
}

func respondError(status int, kind string, retryAfter string) func(http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(status)
		fmt.Fprintf(w, `{"error":{"kind":%q,"op":"test","message":"scripted"}}`, kind)
	}
}

func respondStatsOK(w http.ResponseWriter) {
	fmt.Fprint(w, `{"status":"ok","queue":{"workers":2,"depth":8,"queued":0,"busy":0}}`)
}

// TestClientRetryTransient: a retry-policy client rides out transient
// 429/503 responses (honoring Retry-After) and succeeds, with its
// metrics accounting for every attempt.
func TestClientRetryTransient(t *testing.T) {
	hs, attempts, _ := fakeEndpoint(t,
		respondError(http.StatusTooManyRequests, "overloaded", "0"),
		respondError(http.StatusServiceUnavailable, "unavailable", ""),
		func(w http.ResponseWriter) { respondStatsOK(w) },
	)
	c, err := stubby.NewClient(hs.URL, stubby.WithRetryPolicy(stubby.RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 42,
	}))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 {
		t.Fatalf("stats decoded wrong: %+v", st)
	}
	if *attempts != 3 {
		t.Fatalf("server saw %d attempts, want 3", *attempts)
	}
	m := c.Metrics()
	if m.Requests != 3 || m.Retries != 2 {
		t.Fatalf("metrics %+v, want 3 requests / 2 retries", m)
	}
}

// TestClientRetryExhaustion: persistent overload surfaces as the typed
// error after exactly MaxAttempts tries.
func TestClientRetryExhaustion(t *testing.T) {
	hs, attempts, _ := fakeEndpoint(t, respondError(http.StatusTooManyRequests, "overloaded", ""))
	c, err := stubby.NewClient(hs.URL, stubby.WithRetryPolicy(stubby.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, serr := c.Stats(context.Background())
	if !errors.Is(serr, stubby.ErrKindOverloaded) {
		t.Fatalf("err = %v, want ErrKindOverloaded", serr)
	}
	if *attempts != 3 {
		t.Fatalf("server saw %d attempts, want 3", *attempts)
	}
}

// TestClientRetryNonRetryable: errors retrying cannot fix (invalid
// input) are returned after a single attempt, even under a policy.
func TestClientRetryNonRetryable(t *testing.T) {
	hs, attempts, _ := fakeEndpoint(t, respondError(http.StatusBadRequest, "invalid", ""))
	c, err := stubby.NewClient(hs.URL, stubby.WithRetryPolicy(stubby.RetryPolicy{
		MaxAttempts: 5, BaseDelay: time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, serr := c.Stats(context.Background())
	if !errors.Is(serr, stubby.ErrKindInvalid) {
		t.Fatalf("err = %v, want ErrKindInvalid", serr)
	}
	if *attempts != 1 {
		t.Fatalf("server saw %d attempts, want 1 (no retries of invalid input)", *attempts)
	}
}

// TestClientNoPolicySingleAttempt: without WithRetryPolicy the client
// behaves exactly as before this change — one attempt, typed error back.
func TestClientNoPolicySingleAttempt(t *testing.T) {
	hs, attempts, _ := fakeEndpoint(t, respondError(http.StatusTooManyRequests, "overloaded", "1"))
	c, err := stubby.NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := c.Stats(context.Background()); !errors.Is(serr, stubby.ErrKindOverloaded) {
		t.Fatalf("want ErrKindOverloaded")
	}
	if *attempts != 1 {
		t.Fatalf("server saw %d attempts, want 1", *attempts)
	}
}

// TestClientDeadlinePropagation: a context deadline travels to the
// server as the X-Stubby-Deadline-MS header with the remaining budget.
func TestClientDeadlinePropagation(t *testing.T) {
	hs, _, lastHdr := fakeEndpoint(t, func(w http.ResponseWriter) { respondStatsOK(w) })
	c, err := stubby.NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	v := lastHdr.Get("X-Stubby-Deadline-MS")
	if v == "" {
		t.Fatal("deadline header missing")
	}
	var ms int64
	if _, err := fmt.Sscanf(v, "%d", &ms); err != nil || ms <= 0 || ms > 2000 {
		t.Fatalf("deadline header %q out of range", v)
	}
}

// --- subprocess crash drill -------------------------------------------

var servingRE = regexp.MustCompile(`serving on (\S+)`)

// stubbydProc is one stubbyd subprocess with its parsed listen address.
type stubbydProc struct {
	cmd  *exec.Cmd
	addr string
}

func startStubbyd(t *testing.T, bin string, args ...string) *stubbydProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := servingRE.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &stubbydProc{cmd: cmd, addr: addr}
	case <-time.After(20 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("stubbyd did not report its listen address")
		return nil
	}
}

func (p *stubbydProc) kill() {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}

// drillSubmit runs one submission through the flaky client and records
// the resulting plan fingerprint.
type drillResult struct {
	workload string
	fp       string
	err      error
}

// TestCrashDrill is the acceptance drill: N concurrent submissions
// through a deterministic fault proxy (injected 503s, connection resets,
// truncated responses) against a stubbyd that is hard-killed (SIGKILL)
// and restarted mid-batch over the same plan store and journal. Every
// submission must converge to StateDone with a plan byte-identical
// (fingerprint-identical) to the fault-free run's, and the restarted
// server must not re-optimize more than the distinct workload count.
func TestCrashDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash drill skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "stubbyd")
	build := exec.Command("go", "build", "-o", bin, "github.com/stubby-mr/stubby/cmd/stubbyd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building stubbyd: %v\n%s", err, out)
	}

	abbrs := []string{"IR", "BR", "LA"}
	// Fault-free reference run: same flags, clean dirs, direct connection.
	refDir := t.TempDir()
	ref := startStubbyd(t, bin, "-addr", "127.0.0.1:0", "-workers", "2",
		"-seed", "1", "-rrs-evals", "16", "-store", filepath.Join(refDir, "store"))
	defer ref.kill()
	refClient, err := stubby.NewClient("http://" + ref.addr)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	for _, abbr := range abbrs {
		wl := tinyWorkload(t, abbr)
		res, rerr := refClient.Optimize(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Cluster: wl.Cluster})
		if rerr != nil {
			t.Fatalf("reference %s: %v", abbr, rerr)
		}
		want[abbr] = fpOf(t, res.Plan)
	}
	ref.kill()

	// Chaos run: same workloads, flaky proxy, kill + restart mid-batch.
	chaosDir := t.TempDir()
	storeDir := filepath.Join(chaosDir, "store")
	args := []string{"-addr", "127.0.0.1:0", "-workers", "1",
		"-seed", "1", "-rrs-evals", "16", "-store", storeDir}
	p1 := startStubbyd(t, bin, args...)
	proxy, err := faultproxy.New(p1.addr, 1234, faultproxy.Profile{
		LatencyProb: 0.2, LatencyMin: time.Millisecond, LatencyMax: 5 * time.Millisecond,
		Reject503Prob: 0.15, ResetProb: 0.08, TruncateProb: 0.08, CutAfterMaxBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	const perWorkload = 2
	results := make(chan drillResult, len(abbrs)*perWorkload)
	var wg sync.WaitGroup
	for i := 0; i < len(abbrs)*perWorkload; i++ {
		abbr := abbrs[i%len(abbrs)]
		seed := int64(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, cerr := stubby.NewClient(proxy.URL(), stubby.WithRetryPolicy(stubby.RetryPolicy{
				MaxAttempts: 12, BaseDelay: 25 * time.Millisecond,
				MaxDelay: 400 * time.Millisecond, Seed: seed,
			}))
			if cerr != nil {
				results <- drillResult{workload: abbr, err: cerr}
				return
			}
			wl := tinyWorkload(t, abbr)
			res, oerr := client.Optimize(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Cluster: wl.Cluster})
			if oerr != nil {
				results <- drillResult{workload: abbr, err: oerr}
				return
			}
			results <- drillResult{workload: abbr, fp: fpOf(t, res.Plan)}
		}()
	}

	// Hard-kill the server mid-batch and restart it over the same store
	// and journal; the proxy retargets the new listener.
	time.Sleep(300 * time.Millisecond)
	p1.kill()
	p2 := startStubbyd(t, bin, args...)
	defer p2.kill()
	proxy.SetTarget(p2.addr)

	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			t.Fatalf("submission %s failed through chaos: %v (proxy %+v)", r.workload, r.err, proxy.Stats())
		}
		if r.fp != want[r.workload] {
			t.Fatalf("workload %s: chaos plan %s != fault-free plan %s", r.workload, r.fp, want[r.workload])
		}
	}

	// Bound on wasted work: the restarted server's optimizer ran at most
	// once per distinct workload — everything else was plan-store hits,
	// journal recovery included.
	direct, err := stubby.NewClient("http://" + p2.addr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := direct.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanStore == nil {
		t.Fatal("restarted server reports no plan store")
	}
	if st.PlanStore.Computes > uint64(len(abbrs)) {
		t.Fatalf("restarted server ran %d optimizations, want <= %d distinct workloads",
			st.PlanStore.Computes, len(abbrs))
	}
	if st.Journal == nil {
		t.Fatal("restarted server reports no journal in /statsz")
	}
	if st.Journal.Submits == 0 && st.Journal.Recovered == 0 {
		t.Fatalf("journal saw no activity: %+v", st.Journal)
	}
}
