package stubby_test

// cluster_e2e_test.go drills the distributed service end to end with
// in-process nodes: a coordinator Server (WithCoordinator) fronting
// worker Servers that registered through WorkerAgents, all replicas of
// one shared plan-store directory. The drills prove the ISSUE-10
// contract — dispatch transparency (a cluster answer is byte-identical
// to a local one), cluster-wide single-flight (N concurrent submissions
// of one workflow cost exactly one optimization across every replica),
// failover to local optimization when no worker holds a lease, and
// lease-expiry re-dispatch with the dead worker's journal replayed.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/stubby-mr/stubby"
)

// waitForCluster polls cond every 10ms for up to 5s.
func waitForCluster(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// workerNode is one in-process worker: a session (usually holding a
// replica of the shared plan store) served over HTTP, with an agent
// heartbeating its URL to the coordinator. stopAgent silences the
// heartbeats without stopping the server — the in-process stand-in for
// a worker whose process died.
type workerNode struct {
	store     *stubby.PlanStore
	sess      *stubby.Session
	hs        *httptest.Server
	stopAgent context.CancelFunc
}

// startWorker builds a worker over a fresh replica of the plan store in
// storeDir and joins it to the coordinator at coordURL.
func startWorker(t *testing.T, wl *stubby.Workload, storeDir, coordURL string) *workerNode {
	t.Helper()
	store, err := stubby.NewPlanStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	sess := storeSession(t, wl, store)
	t.Cleanup(func() { sess.Close(context.Background()) })
	hs := httptest.NewServer(stubby.NewServer(sess))
	t.Cleanup(hs.Close)
	actx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	agent := stubby.NewWorkerAgent(coordURL, hs.URL, stubby.WithWorkerStats(func() (uint64, uint64) {
		st := store.Stats()
		return st.ClaimHits, st.Computes
	}))
	go agent.Run(actx)
	return &workerNode{store: store, sess: sess, hs: hs, stopAgent: cancel}
}

// startCoordinator builds a coordinator-mode server over wl's cluster
// (the local session is the failover path) and returns it with a client
// pointed at it.
func startCoordinator(t *testing.T, wl *stubby.Workload, opts ...stubby.CoordinatorOption) (*httptest.Server, *stubby.Client, *stubby.Session) {
	t.Helper()
	coord := stubby.NewCoordinator(opts...)
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 12}),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close(context.Background()) })
	hs := httptest.NewServer(stubby.NewServer(sess, stubby.WithCoordinator(coord)))
	t.Cleanup(hs.Close)
	c, err := stubby.NewClient(hs.URL)
	if err != nil {
		t.Fatal(err)
	}
	return hs, c, sess
}

// clusterStats fetches /statsz and requires a cluster section.
func clusterStats(t *testing.T, c *stubby.Client) stubby.ClusterStats {
	t.Helper()
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil {
		t.Fatal("statsz has no cluster section on a coordinator server")
	}
	return *st.Cluster
}

// waitLive blocks until the coordinator reports n live workers.
func waitLive(t *testing.T, c *stubby.Client, n int) {
	t.Helper()
	waitForCluster(t, fmt.Sprintf("%d live workers", n), func() bool {
		st, err := c.Stats(context.Background())
		return err == nil && st.Cluster != nil && st.Cluster.LiveWorkers >= n
	})
}

// TestClusterDispatch is the transparency drill: a submission through a
// coordinator with two registered workers is optimized on a worker (one
// dispatch, no failover) and returns exactly the plan a plain local
// session computes.
func TestClusterDispatch(t *testing.T) {
	wl := profiledWorkload(t, "IR", 0.1, 1)
	dir := t.TempDir()
	hs, client, _ := startCoordinator(t, wl)
	w1 := startWorker(t, wl, dir, hs.URL)
	w2 := startWorker(t, wl, dir, hs.URL)
	waitLive(t, client, 2)

	ctx := context.Background()
	got, err := client.Optimize(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow})
	if err != nil {
		t.Fatal(err)
	}

	control, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 12}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close(ctx)
	want, err := control.Optimize(ctx, wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	if fpOf(t, got.Plan) != fpOf(t, want.Plan) {
		t.Fatal("dispatched plan differs from local plan")
	}
	if got.EstimatedCost != want.EstimatedCost {
		t.Fatalf("dispatched cost %v != local cost %v", got.EstimatedCost, want.EstimatedCost)
	}

	st := clusterStats(t, client)
	if st.Dispatches == 0 || st.Failovers != 0 {
		t.Fatalf("dispatches=%d failovers=%d, want dispatched with no failover", st.Dispatches, st.Failovers)
	}
	if n := w1.store.Stats().Computes + w2.store.Stats().Computes; n != 1 {
		t.Fatalf("worker computes = %d, want exactly 1", n)
	}
}

// TestClusterSingleFlight is the headline acceptance drill: 8 clients
// submitting one workflow concurrently through a coordinator with 2
// worker replicas of one plan-store directory cost the cluster exactly
// one optimization, and every client gets a byte-identical plan.
func TestClusterSingleFlight(t *testing.T) {
	wl := profiledWorkload(t, "BR", 0.1, 1)
	dir := t.TempDir()
	hs, client, _ := startCoordinator(t, wl)
	w1 := startWorker(t, wl, dir, hs.URL)
	w2 := startWorker(t, wl, dir, hs.URL)
	waitLive(t, client, 2)

	const clients = 8
	ctx := context.Background()
	plans := make([][]byte, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := stubby.NewClient(hs.URL)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := c.Optimize(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow})
			if err != nil {
				errs[i] = err
				return
			}
			plans[i] = exportBytes(t, res.Plan)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(plans[i], plans[0]) {
			t.Fatalf("client %d plan differs from client 0", i)
		}
	}

	if n := w1.store.Stats().Computes + w2.store.Stats().Computes; n != 1 {
		t.Fatalf("cluster-wide computes = %d, want exactly 1 for %d concurrent submissions", n, clients)
	}
	st := clusterStats(t, client)
	if st.Dispatches != clients {
		t.Fatalf("dispatches = %d, want %d (one per submission)", st.Dispatches, clients)
	}
	if st.Failovers != 0 {
		t.Fatalf("failovers = %d, want 0", st.Failovers)
	}
	// Heartbeats eventually carry the workers' compute counters to the
	// coordinator's cluster-wide view.
	waitForCluster(t, "heartbeat-reported computes", func() bool {
		return clusterStats(t, client).Computes == 1
	})
}

// TestClusterFailoverLocal proves a coordinator with no live workers is
// still a complete service: the submission runs on the coordinator's own
// session and the failover is counted.
func TestClusterFailoverLocal(t *testing.T) {
	wl := profiledWorkload(t, "LA", 0.1, 1)
	_, client, _ := startCoordinator(t, wl)

	ctx := context.Background()
	got, err := client.Optimize(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow})
	if err != nil {
		t.Fatal(err)
	}
	control, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 12}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close(ctx)
	want, err := control.Optimize(ctx, wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	if fpOf(t, got.Plan) != fpOf(t, want.Plan) {
		t.Fatal("failover plan differs from local plan")
	}
	st := clusterStats(t, client)
	if st.Failovers == 0 {
		t.Fatalf("failovers = 0, want at least 1 (no workers registered)")
	}
	if st.LiveWorkers != 0 || st.Workers != 0 {
		t.Fatalf("workers=%d live=%d, want an empty cluster", st.Workers, st.LiveWorkers)
	}
}

// passthroughPlanner answers immediately with the input workflow under
// the same registry name as the test blocking planner, so a re-dispatch
// of a parked job can complete on another worker.
type passthroughPlanner struct{}

func (passthroughPlanner) Name() string { return "blocking" }

func (passthroughPlanner) Plan(w *stubby.Workflow) (*stubby.Workflow, error) { return w, nil }

// registerPassthrough registers the immediately-completing "blocking"
// planner on sess.
func registerPassthrough(t *testing.T, sess *stubby.Session) {
	t.Helper()
	err := sess.RegisterPlanner(stubby.PlannerSpec{
		Name:        "blocking",
		Description: "completes immediately (test instrument)",
		New: func(c *stubby.Cluster, seed int64) stubby.Planner {
			return passthroughPlanner{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClusterLeaseExpiryRedispatch is the failover drill: worker A takes
// the first dispatch and parks mid-optimization, its heartbeats stop,
// the coordinator expires A's lease and re-dispatches the job to worker
// B, and the client's submission completes through B without ever seeing
// the failure. Afterwards A's journal — which still holds the abandoned
// job's submit record — is replayed by a restarted node sharing B's plan
// store, and the recovered job converges idempotently through a store
// hit instead of a second optimization.
func TestClusterLeaseExpiryRedispatch(t *testing.T) {
	wl := tinyWorkload(t, "IR")
	dir := t.TempDir()
	jdirA := t.TempDir()
	hs, client, coordSess := startCoordinator(t, wl, stubby.WithClusterLeaseTTL(400*time.Millisecond))
	// Submission validation resolves the planner name on the coordinator
	// before dispatching, so the coordinator's session must know
	// "blocking" too. Its local variant completing a job would show up as
	// Redispatches == 0 below, keeping a failover distinguishable.
	registerPassthrough(t, coordSess)
	ctx := context.Background()

	// Worker A: a blocking "blocking" planner and a journal, no plan
	// store. (A subprocess worker killed mid-compute would drop its store
	// claim with its flock — see TestClusterWorkerCrashDrill; an
	// in-process stand-in cannot release a flock without dying, so A runs
	// storeless and the claim discipline is drilled in the planstore
	// suites.)
	sessA, err := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	startedA, releaseA := registerBlocking(t, sessA)
	defer close(releaseA)
	t.Cleanup(func() { sessA.Close(context.Background()) })
	journalA, err := stubby.OpenJournal(jdirA)
	if err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(stubby.NewServer(sessA, stubby.WithJournal(journalA)))
	t.Cleanup(srvA.Close)
	actxA, cancelA := context.WithCancel(ctx)
	t.Cleanup(cancelA)
	go stubby.NewWorkerAgent(hs.URL, srvA.URL).Run(actxA)
	waitLive(t, client, 1) // A registers first and wins the id tiebreak

	// Worker B: a shared-store replica whose "blocking" planner completes
	// immediately.
	storeB, err := stubby.NewPlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { storeB.Close() })
	sessB := storeSession(t, wl, storeB)
	registerPassthrough(t, sessB)
	t.Cleanup(func() { sessB.Close(context.Background()) })
	srvB := httptest.NewServer(stubby.NewServer(sessB))
	t.Cleanup(srvB.Close)
	actxB, cancelB := context.WithCancel(ctx)
	t.Cleanup(cancelB)
	go stubby.NewWorkerAgent(hs.URL, srvB.URL).Run(actxB)
	waitLive(t, client, 2)

	type outcome struct {
		res *stubby.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := client.Optimize(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Planner: "blocking"})
		done <- outcome{res, err}
	}()

	// A starts planning and parks; then its heartbeats stop and the lease
	// lapses.
	select {
	case <-startedA:
	case <-time.After(5 * time.Second):
		t.Fatal("worker A never started the dispatched job")
	}
	cancelA()

	select {
	case out := <-done:
		if out.err != nil {
			t.Fatalf("submission did not survive the lease expiry: %v", out.err)
		}
		if out.res == nil || out.res.Plan == nil {
			t.Fatal("empty result after re-dispatch")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("submission never completed after worker A went silent")
	}
	st := clusterStats(t, client)
	if st.Redispatches == 0 {
		t.Fatalf("redispatches = 0, want at least 1")
	}
	if n := storeB.Stats().Computes; n != 1 {
		t.Fatalf("worker B computes = %d, want 1", n)
	}

	// "Restart" A over its journal: the abandoned job's submit record is
	// still there (no terminal state was ever appended), so a fresh
	// journaled server re-enqueues it under the original ID, and — as a
	// replica of the shared store — completes it with a store hit rather
	// than a second optimization.
	if err := journalA.Close(); err != nil {
		t.Fatal(err)
	}
	storeR, err := stubby.NewPlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { storeR.Close() })
	sessR := storeSession(t, wl, storeR)
	registerPassthrough(t, sessR)
	t.Cleanup(func() { sessR.Close(context.Background()) })
	journalR, err := stubby.OpenJournal(jdirA)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journalR.Close() })
	_ = stubby.NewServer(sessR, stubby.WithJournal(journalR))
	if got := journalR.Stats().Recovered; got != 1 {
		t.Fatalf("recovered jobs = %d, want 1 (the job abandoned on A)", got)
	}
	waitForCluster(t, "recovered job to converge through the store", func() bool {
		return storeR.Stats().Hits >= 1
	})
	if n := storeB.Stats().Computes + storeR.Stats().Computes; n != 1 {
		t.Fatalf("total computes after journal replay = %d, want 1 (idempotent recovery)", n)
	}
}

// TestClusterWorkerCrashDrill is the multi-node smoke drill over real
// processes: a stubbyd coordinator fronting two stubbyd workers that
// share one plan-store directory, with one worker SIGKILLed mid-batch.
// Every submission must converge to a plan fingerprint-identical to a
// fault-free single-node run's, and the killed worker — restarted over
// its journal and the shared store — must recover its abandoned jobs
// idempotently instead of re-optimizing the batch.
func TestClusterWorkerCrashDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess cluster drill skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "stubbyd")
	build := exec.Command("go", "build", "-o", bin, "github.com/stubby-mr/stubby/cmd/stubbyd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building stubbyd: %v\n%s", err, out)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	abbrs := []string{"IR", "BR", "LA"}

	// Fault-free reference plans from a plain single-node stubbyd.
	ref := startStubbyd(t, bin, "-addr", "127.0.0.1:0", "-workers", "2",
		"-seed", "1", "-rrs-evals", "16", "-store", filepath.Join(t.TempDir(), "store"))
	refClient, err := stubby.NewClient("http://" + ref.addr)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for _, abbr := range abbrs {
		wl := tinyWorkload(t, abbr)
		res, rerr := refClient.Optimize(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Cluster: wl.Cluster})
		if rerr != nil {
			t.Fatalf("reference %s: %v", abbr, rerr)
		}
		want[abbr] = fpOf(t, res.Plan)
	}
	ref.kill()

	// The cluster: coordinator + two workers over one store directory,
	// each worker with its own journal.
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	coord := startStubbyd(t, bin, "-addr", "127.0.0.1:0", "-coordinator",
		"-workers", "2", "-seed", "1", "-rrs-evals", "16")
	defer coord.kill()
	workerArgs := func(i int) []string {
		return []string{"-addr", "127.0.0.1:0", "-worker", "-join", "http://" + coord.addr,
			"-store", storeDir, "-journal", filepath.Join(dir, fmt.Sprintf("journal%d", i)),
			"-workers", "2", "-seed", "1", "-rrs-evals", "16"}
	}
	w1 := startStubbyd(t, bin, workerArgs(1)...)
	w2 := startStubbyd(t, bin, workerArgs(2)...)
	defer w2.kill()
	client, err := stubby.NewClient("http://" + coord.addr)
	if err != nil {
		t.Fatal(err)
	}
	waitForCluster(t, "2 live subprocess workers", func() bool {
		st, serr := client.Stats(ctx)
		return serr == nil && st.Cluster != nil && st.Cluster.LiveWorkers >= 2
	})

	const perWorkload = 2
	results := make(chan drillResult, len(abbrs)*perWorkload)
	var wg sync.WaitGroup
	for i := 0; i < len(abbrs)*perWorkload; i++ {
		abbr := abbrs[i%len(abbrs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			wl := tinyWorkload(t, abbr)
			res, oerr := client.Optimize(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow, Cluster: wl.Cluster})
			if oerr != nil {
				results <- drillResult{workload: abbr, err: oerr}
				return
			}
			results <- drillResult{workload: abbr, fp: fpOf(t, res.Plan)}
		}()
	}

	// SIGKILL worker 1 mid-batch; the coordinator re-dispatches its
	// leased jobs to worker 2 (or, in a live-worker gap, fails over to
	// its own optimizer — either way the plans cannot differ).
	time.Sleep(100 * time.Millisecond)
	w1.kill()

	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			t.Fatalf("submission %s failed through the worker kill: %v", r.workload, r.err)
		}
		if r.fp != want[r.workload] {
			t.Fatalf("workload %s: cluster plan %s != fault-free plan %s", r.workload, r.fp, want[r.workload])
		}
	}

	// Restart the killed worker over its journal and the shared store:
	// recovered jobs must drain through store hits, not a re-optimized
	// batch.
	w1r := startStubbyd(t, bin, workerArgs(1)...)
	defer w1r.kill()
	direct, err := stubby.NewClient("http://" + w1r.addr)
	if err != nil {
		t.Fatal(err)
	}
	var last *stubby.ServiceStats
	waitForCluster(t, "journal recovery to drain", func() bool {
		st, serr := direct.Stats(ctx)
		if serr != nil || st.Journal == nil || st.PlanStore == nil {
			return false
		}
		last = st
		return st.PlanStore.Hits+st.PlanStore.Computes >= uint64(st.Journal.Recovered)
	})
	if last.PlanStore.Computes > uint64(len(abbrs)) {
		t.Fatalf("restarted worker re-ran %d optimizations, want <= %d distinct workloads",
			last.PlanStore.Computes, len(abbrs))
	}
}
