package stubby_test

import (
	"context"
	"fmt"
	"log"

	"github.com/stubby-mr/stubby"
)

// ExampleSession_robustness attaches a fault model to the session so the
// optimizer scores its chosen plan under perturbation: task failures with
// retries, lognormal stragglers, speculative re-execution, and a slow node
// class. The report Monte-Carlo-replays the plan's schedule across
// derived perturbation seeds and summarizes the makespan distribution;
// with WithRobustness configured, near-tie candidates are broken toward
// the lower p99.
func ExampleSession_robustness() {
	wl, err := stubby.BuildWorkload("IR", stubby.WorkloadOptions{SizeFactor: 0.15, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	// "standard": 2% task failures, stragglers, speculation, 30 fast + 20 slow nodes.
	model, err := stubby.FaultProfile("standard", 42)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(2),
		stubby.WithRobustness(model, 32),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := sess.Profile(ctx, wl.Workflow, wl.DFS); err != nil {
		log.Fatal(err)
	}
	res, err := sess.Optimize(ctx, wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}
	rob := res.Robustness
	fmt.Printf("perturbation samples: %d\n", rob.Samples)
	fmt.Printf("distribution ordered: %v\n", rob.Min <= rob.P50 && rob.P50 <= rob.P95 && rob.P95 <= rob.P99 && rob.P99 <= rob.Max)
	fmt.Printf("faults slow the plan down: %v\n", rob.Mean > res.EstimatedCost)
	fmt.Printf("every sample completed: %v\n", rob.FailedOut == 0)
	// Output:
	// perturbation samples: 32
	// distribution ordered: true
	// faults slow the plan down: true
	// every sample completed: true
}
