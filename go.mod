module github.com/stubby-mr/stubby

go 1.22
