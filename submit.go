package stubby

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/service"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
)

// JobState is the lifecycle state of a submitted optimization:
//
//	StateQueued ──▶ StateRunning ──▶ StateDone
//	     │               ├─────────▶ StateFailed
//	     └───────────────┴─────────▶ StateCanceled
type JobState = service.State

// Job lifecycle states.
const (
	// StateQueued: admitted to the session's queue, waiting for a worker.
	StateQueued = service.Queued
	// StateRunning: a worker is optimizing.
	StateRunning = service.Running
	// StateDone: finished successfully; Wait returns the Result.
	StateDone = service.Done
	// StateFailed: finished with an error; Wait returns it.
	StateFailed = service.Failed
	// StateCanceled: stopped by Cancel before or during optimization.
	StateCanceled = service.Canceled
)

// OptimizeRequest describes one optimization to submit: the annotated
// workflow plus optional per-request overrides of the session's planner,
// seed, and cluster. It is also the unit of the wire protocol — a Client
// sends exactly these fields to a stubbyd server.
type OptimizeRequest struct {
	// Workflow is the annotated plan to optimize (required). Submit never
	// modifies it; treat it as immutable until the job is terminal.
	Workflow *Workflow
	// Planner names the planner to use ("" = the session's planner).
	Planner string
	// Seed overrides the session's search seed when non-zero.
	Seed int64
	// Cluster, when non-nil, optimizes for this cluster instead of the
	// session's (remote submitters describe their cluster this way). The
	// session's estimate cache is still consulted — cache keys include a
	// cluster fingerprint, so entries never leak across clusters.
	Cluster *Cluster
	// DisableIncremental forces every configuration probe of this job
	// through the monolithic estimator (a debugging/benchmarking aid;
	// plans are identical either way).
	DisableIncremental bool

	// resumeID pins the job's ID instead of drawing a fresh one — set only
	// by journal recovery, which must re-enqueue a crashed job under its
	// original identifier so clients polling that ID reconnect to it.
	resumeID string
	// deadline bounds the job's execution absolutely (zero = none). The
	// server sets it from the client's propagated wire deadline.
	deadline time.Time
}

// Progress is a point-in-time snapshot of a submitted job.
type Progress struct {
	// State is the lifecycle state at snapshot time.
	State JobState
	// Units counts optimization units the search has opened.
	Units int
	// Subplans counts enumerated subplans across all units.
	Subplans int
	// Improvements counts incumbent improvements across all units.
	Improvements int
	// BestCost is the cost of the latest incumbent improvement (0 until
	// the first).
	BestCost float64
}

// OptimizeHandle tracks one submitted optimization. All methods are safe
// for concurrent use, and a handle remains valid after the job finishes —
// State, Progress, Wait, and Events replay terminal information
// indefinitely.
type OptimizeHandle struct {
	id       string
	workflow string
	job      *service.Job
	obs      Observer // deprecated session observer, fanned out by the bridge

	mu           sync.Mutex
	units        int
	subplans     int
	improvements int
	bestCost     float64
}

// ID returns the job's session-unique identifier.
func (h *OptimizeHandle) ID() string { return h.id }

// WorkflowName returns the name of the submitted workflow.
func (h *OptimizeHandle) WorkflowName() string { return h.workflow }

// State returns the job's current lifecycle state.
func (h *OptimizeHandle) State() JobState { return h.job.State() }

// Progress returns a snapshot of the job's state and search counters.
func (h *OptimizeHandle) Progress() Progress {
	h.mu.Lock()
	p := Progress{Units: h.units, Subplans: h.subplans,
		Improvements: h.improvements, BestCost: h.bestCost}
	h.mu.Unlock()
	p.State = h.job.State()
	return p
}

// Cancel requests cancellation: a queued job becomes StateCanceled
// immediately and never runs; a running job's search context is canceled
// and the job becomes StateCanceled when the search unwinds (promptly —
// the optimizer checks cancellation between units and between RRS
// evaluations). Cancel is idempotent and a no-op on terminal jobs.
func (h *OptimizeHandle) Cancel() { h.job.Cancel() }

// Done is closed when the job reaches a terminal state.
func (h *OptimizeHandle) Done() <-chan struct{} { return h.job.Done() }

// Wait blocks until the job is terminal and returns its outcome: the
// Result for StateDone, an ErrKindCanceled *Error for StateCanceled, and
// the job's error for StateFailed. If ctx ends first, Wait returns ctx's
// error (wrapped) while the job keeps running.
func (h *OptimizeHandle) Wait(ctx context.Context) (*Result, error) {
	if err := h.job.Wait(ctx); err != nil {
		return nil, stubbyerr.From("wait", h.workflow, err)
	}
	return h.result()
}

// result converts the terminal job outcome. Callers ensure terminality.
func (h *OptimizeHandle) result() (*Result, error) {
	res, err := h.job.Result()
	if h.job.State() == StateCanceled {
		return nil, stubbyerr.WithKind(stubbyerr.KindCanceled, "optimize", h.workflow,
			fmt.Errorf("job %s canceled: %w", h.id, context.Canceled))
	}
	if err != nil {
		return nil, stubbyerr.From("optimize", h.workflow, err)
	}
	r, ok := res.(*Result)
	if !ok {
		return nil, stubbyerr.New(stubbyerr.KindInternal, "optimize", h.workflow, "",
			"job %s finished without a result", h.id)
	}
	return r, nil
}

// Events returns the job's typed event stream. Every subscription replays
// the full stream from submission — StateChangedEvent(StateQueued) first —
// then follows live events, so subscription timing is irrelevant; the
// channel closes after the terminal StateChangedEvent (always the last
// event) or when ctx ends.
func (h *OptimizeHandle) Events(ctx context.Context) <-chan Event {
	return h.EventsFrom(ctx, 0)
}

// EventsFrom is Events with a resume cursor: the replay starts at sequence
// number `from` — the index of an event in the job's append-only log, which
// is also the NDJSON line index the server's event stream emits — so a
// reconnecting consumer that counted the events it already received gets
// exactly the missed suffix, no gaps and no duplicates.
func (h *OptimizeHandle) EventsFrom(ctx context.Context, from int) <-chan Event {
	raw := h.job.EventsFrom(ctx, from)
	ch := make(chan Event)
	go func() {
		defer close(ch)
		for ev := range raw {
			var e Event
			switch v := ev.(type) {
			case service.StateChange:
				e = StateChangedEvent{Workflow: h.workflow, JobID: h.id, State: v.State, Err: v.Err}
			case Event:
				e = v
			default:
				continue
			}
			select {
			case ch <- e:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// submitObserver bridges the optimizer's synchronous observer callbacks
// into the handle: progress counters, the typed event stream, and — as the
// deprecated adapter — the session's Observer, so existing observers keep
// seeing Submit traffic without implementing anything new.
type submitObserver struct{ h *OptimizeHandle }

var _ optimizer.Observer = submitObserver{}

func (b submitObserver) UnitStarted(phase string, unit int, jobs []string) {
	h := b.h
	h.mu.Lock()
	h.units++
	h.mu.Unlock()
	h.job.Publish(UnitStartedEvent{Workflow: h.workflow, Phase: phase, Unit: unit, Jobs: jobs})
	if h.obs != nil {
		h.obs.UnitStarted(h.workflow, phase, unit, jobs)
	}
}

func (b submitObserver) SubplanEnumerated(unit int, desc string, cost float64) {
	h := b.h
	h.mu.Lock()
	h.subplans++
	h.mu.Unlock()
	h.job.Publish(SubplanEnumeratedEvent{Workflow: h.workflow, Unit: unit, Desc: desc, Cost: cost})
	if h.obs != nil {
		h.obs.SubplanEnumerated(h.workflow, unit, desc, cost)
	}
}

func (b submitObserver) BestCostImproved(unit int, desc string, cost float64) {
	h := b.h
	h.mu.Lock()
	h.improvements++
	h.bestCost = cost
	h.mu.Unlock()
	h.job.Publish(BestCostImprovedEvent{Workflow: h.workflow, Unit: unit, Desc: desc, Cost: cost})
	if h.obs != nil {
		h.obs.BestCostImproved(h.workflow, unit, desc, cost)
	}
}

// Submit admits the request to the session's bounded queue and returns a
// handle immediately. The optimization runs asynchronously on the
// session's worker pool (WithParallelism workers over a WithQueueDepth
// queue); when the queue is full the request is shed with an
// ErrKindOverloaded *Error rather than queueing unbounded work, and a
// closed session rejects with ErrKindUnavailable. ctx gates admission
// only — the job's lifetime is controlled through the handle.
func (s *Session) Submit(ctx context.Context, req OptimizeRequest) (*OptimizeHandle, error) {
	const op = "submit"
	if req.Workflow == nil {
		return nil, stubbyerr.New(stubbyerr.KindInvalid, op, "", "", "nil workflow")
	}
	wfName := req.Workflow.Name
	if err := ctx.Err(); err != nil {
		return nil, stubbyerr.From(op, wfName, err)
	}
	if s.closed.Load() {
		return nil, stubbyerr.New(stubbyerr.KindUnavailable, op, wfName, "",
			"session is closed")
	}
	target, err := s.deriveFor(req)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, op, wfName, err)
	}
	name := req.Planner
	if name == "" {
		name = s.plannerName
	}
	if name == "" {
		name = "stubby"
	}
	if _, ok := s.registry.Lookup(name); !ok {
		return nil, stubbyerr.New(stubbyerr.KindUnknownPlanner, op, wfName, "",
			"unknown planner %q", name)
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.seed
	}
	id := req.resumeID
	if id == "" {
		id = fmt.Sprintf("job-%d", s.jobSeq.Add(1))
	}
	h := &OptimizeHandle{
		id:       id,
		workflow: wfName,
		obs:      s.observer,
	}
	h.job = service.NewJobWithDeadline(h.id, req.deadline, func(ctx context.Context) (any, error) {
		var res *Result
		var err error
		if target.dispatch != nil {
			// Coordinator path: run the job on a cluster worker. Only the
			// no-live-workers condition falls back to the local optimizer;
			// any other dispatch failure is the job's real outcome (the
			// coordinator already re-dispatched transient failures).
			res, err = target.dispatchOptimize(ctx, req, name, seed)
			if err != nil && !errors.Is(err, ErrNoWorkers) {
				return nil, stubbyerr.From("optimize", wfName, err)
			}
		}
		if res == nil {
			res, err = target.optimizeNamed(ctx, req.Workflow, name, seed, submitObserver{h})
			if err != nil {
				return nil, stubbyerr.From("optimize", wfName, err)
			}
		}
		if target.estCache != nil {
			stats := target.estCache.Stats()
			h.job.Publish(CacheReportEvent{Workflow: wfName, Stats: stats})
			if h.obs != nil {
				h.obs.EstimateCacheReport(wfName, stats)
			}
		}
		if target.planStore != nil {
			h.job.Publish(PlanStoreEvent{Workflow: wfName, Hit: res.FromStore,
				Stats: target.planStore.Stats()})
		}
		if res.Robustness != nil {
			h.job.Publish(RobustnessEvent{Workflow: wfName, Report: res.Robustness})
		}
		if target.reuseCatalog != nil {
			h.job.Publish(ReuseReportEvent{Workflow: wfName, Reused: res.ReusedSubplans,
				Stats: target.reuseCatalog.Stats()})
		}
		return res, nil
	})
	// A plan-store hit skips the queue entirely: the stored plan is
	// decodable right now, so the job finishes on the submitting goroutine
	// with the full Queued→Running→Done lifecycle (and a storeReport event)
	// and never occupies a worker.
	if target.planStore != nil {
		if res, ok := target.storeLookup(req.Workflow, name, seed); ok {
			h.job.Publish(PlanStoreEvent{Workflow: wfName, Hit: true,
				Stats: target.planStore.Stats()})
			h.job.Finish(res)
			return h, nil
		}
	}
	if err := s.jobQueue().Submit(h.job); err != nil {
		var se *Error
		if errors.As(err, &se) {
			// The queue doesn't know the workflow; stamp it for the caller.
			e := *se
			e.Workflow = wfName
			return nil, &e
		}
		return nil, stubbyerr.From(op, wfName, err)
	}
	return h, nil
}

// reserveJobID advances the session's job-ID sequence past a recovered
// job's numeric suffix, so fresh submissions after a journal recovery
// never collide with a preserved pre-crash ID.
func (s *Session) reserveJobID(id string) {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "job-"), 10, 64)
	if err != nil {
		return
	}
	for {
		cur := s.jobSeq.Load()
		if cur >= n || s.jobSeq.CompareAndSwap(cur, n) {
			return
		}
	}
}

// jobQueue lazily creates the session's admission queue: WithParallelism
// workers over a WithQueueDepth-bounded channel.
func (s *Session) jobQueue() *service.Queue {
	s.queueOnce.Do(func() {
		depth := s.queueDepth
		if depth <= 0 {
			depth = DefaultQueueDepth
		}
		s.queue = service.NewQueue(s.parallelism, depth)
	})
	return s.queue
}

// deriveFor resolves the session a request's job runs against: s itself
// when the request carries no overrides, otherwise a derived session with
// the request's cluster and/or estimation mode applied. A derived session
// shares the planner registry and the estimate cache (whose keys include
// a cluster fingerprint, so sharing is safe) but has no queue of its own;
// jobs still run on s's pool.
func (s *Session) deriveFor(req OptimizeRequest) (*Session, error) {
	if req.Cluster == nil && !req.DisableIncremental {
		return s, nil
	}
	cluster := req.Cluster
	if cluster == nil {
		cluster = s.cluster
	} else if err := cluster.Validate(); err != nil {
		return nil, err
	}
	d := &Session{
		cluster:            cluster,
		groups:             s.groups,
		seed:               s.seed,
		plannerName:        s.plannerName,
		parallelism:        s.parallelism,
		observer:           s.observer,
		fraction:           s.fraction,
		baseOpts:           s.baseOpts,
		registry:           s.registry,
		estCache:           s.estCache,
		planStore:          s.planStore,
		reuseCatalog:       s.reuseCatalog,
		robustness:         s.robustness,
		dispatch:           s.dispatch,
		incrementalSet:     s.incrementalSet,
		disableIncremental: s.disableIncremental,
	}
	if req.DisableIncremental {
		d.incrementalSet = true
		d.disableIncremental = true
	}
	return d, nil
}

// Close drains the session's Submit queue: new submissions are rejected
// with ErrKindUnavailable, already-admitted jobs run to completion (cancel
// their handles first for a fast drain), and Close returns when the
// workers are idle or ctx ends (returning ctx's error while the drain
// continues in the background). Sessions that never submitted close
// immediately. Optimize/Run/Profile/Estimate remain usable after Close.
func (s *Session) Close(ctx context.Context) error {
	s.closed.Store(true)
	// Creating the queue just to drain it is harmless (workers exit
	// immediately) and keeps Close race-free against concurrent Submits.
	if err := s.jobQueue().Drain(ctx); err != nil {
		return stubbyerr.From("close", "", err)
	}
	return nil
}
