package stubby_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/stubby-mr/stubby"
)

// Tests for the facade's extension surface: plan import/export (Section 6),
// the query front-end (Figure 2), workflow composition (Section 1), and
// custom transformations (EXODUS-style extensibility).

func TestPublicAPIPlanExportImport(t *testing.T) {
	wl, err := stubby.BuildWorkload("SN", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := stubby.Profile(wl.Cluster, wl.Workflow, wl.DFS, 0.5, 5); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := stubby.ExportPlan(&buf, wl.Workflow); err != nil {
		t.Fatalf("export: %v", err)
	}
	doc := buf.String()
	if !strings.Contains(doc, `"format": "stubby-plan"`) {
		t.Fatalf("unexpected document head: %.80s", doc)
	}

	// Structure-only import optimizes to the same decision as the
	// in-memory plan.
	structural, err := stubby.ImportPlanStructure(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("import structure: %v", err)
	}
	resMem, err := stubby.Optimize(wl.Cluster, wl.Workflow, stubby.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	resImp, err := stubby.Optimize(wl.Cluster, structural, stubby.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resMem.Plan.Jobs) != len(resImp.Plan.Jobs) || resMem.EstimatedCost != resImp.EstimatedCost {
		t.Fatalf("imported plan optimized differently: %d/%f vs %d/%f",
			len(resMem.Plan.Jobs), resMem.EstimatedCost, len(resImp.Plan.Jobs), resImp.EstimatedCost)
	}

	// Executable import with a registry built from the original plan.
	reg := stubby.NewPlanRegistry()
	reg.RegisterWorkflow(wl.Workflow)
	runnable, err := stubby.ImportPlan(strings.NewReader(doc), reg)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	a, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stubby.Run(wl.Cluster, wl.DFS.Clone(), runnable)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("imported plan simulated differently: %.3f vs %.3f", a.Makespan, b.Makespan)
	}
}

func TestPublicAPICompileQuery(t *testing.T) {
	var rows []stubby.Pair
	for i := 0; i < 300; i++ {
		rows = append(rows, stubby.Pair{
			Key:   stubby.T(int64(i)),
			Value: stubby.T("g"+string(rune('0'+i%3)), float64(i%11)),
		})
	}
	dfs := stubby.NewDFS()
	if err := dfs.Ingest("t", rows, stubby.IngestSpec{NumPartitions: 3, KeyFields: []string{"id"}}); err != nil {
		t.Fatal(err)
	}
	bases := []*stubby.Dataset{{
		ID: "t", Base: true,
		KeyFields: []string{"id"}, ValueFields: []string{"grp", "x"},
	}}
	w, err := stubby.CompileQuery(`
		r = LOAD 't';
		g = GROUP r BY grp;
		s = FOREACH g GENERATE group, COUNT(*) AS n, SUM(x) AS sx;
		STORE s INTO 'out';
	`, bases, "q")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := stubby.Run(stubby.DefaultCluster(), dfs, w); err != nil {
		t.Fatalf("run: %v", err)
	}
	st, ok := dfs.Get("out")
	if !ok || st.Records() != 3 {
		t.Fatalf("query output wrong: ok=%v records=%d", ok, st.Records())
	}

	// ParseQuery exposes the AST for tooling.
	script, err := stubby.ParseQuery("r = LOAD 't'; STORE r INTO 'o';")
	if err != nil || len(script.Stmts) != 2 {
		t.Fatalf("ParseQuery: %v, %v", script, err)
	}
}

func TestPublicAPICompose(t *testing.T) {
	mk := func(name, in, out string) *stubby.Workflow {
		return &stubby.Workflow{
			Name: name,
			Jobs: []*stubby.Job{{
				ID: "J_" + name, Config: stubby.DefaultConfig(), Origin: []string{"J_" + name},
				MapBranches: []stubby.MapBranch{{
					Tag: 0, Input: in,
					Stages: []stubby.Stage{stubby.MapStage("M_"+name,
						func(k, v stubby.Tuple, emit stubby.Emit) { emit(k, v) }, 1e-6)},
				}},
				ReduceGroups: []stubby.ReduceGroup{{Tag: 0, Output: out}},
			}},
			Datasets: []*stubby.Dataset{
				{ID: in, Base: true},
				{ID: out},
			},
		}
	}
	combined, err := stubby.Compose("pipe", mk("a", "raw", "mid"), mk("b", "mid", "final"))
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if len(combined.Jobs) != 2 || combined.Dataset("mid").Base {
		t.Fatalf("composition wrong: %s", combined.Summary())
	}
}

// dropSinkCopy is a minimal custom transformation used to check the public
// registration path end to end.
type dropSinkCopy struct{}

func (dropSinkCopy) Name() string { return "nop" }
func (dropSinkCopy) Apply(plan *stubby.Workflow, unitJobs []string) []stubby.Proposal {
	return nil
}

func TestPublicAPICustomTransformation(t *testing.T) {
	wl, err := stubby.BuildWorkload("PJ", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := stubby.Profile(wl.Cluster, wl.Workflow, wl.DFS, 0.5, 6); err != nil {
		t.Fatal(err)
	}
	res, err := stubby.Optimize(wl.Cluster, wl.Workflow, stubby.Options{
		Seed:   6,
		Custom: []stubby.Transformation{dropSinkCopy{}},
	})
	if err != nil {
		t.Fatalf("optimize with custom transformation: %v", err)
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}
}

func TestPublicAPISortPairs(t *testing.T) {
	pairs := []stubby.Pair{
		{Key: stubby.T(int64(2)), Value: stubby.T("b")},
		{Key: stubby.T(int64(1)), Value: stubby.T("a")},
		{Key: stubby.T(int64(1)), Value: stubby.T("A")},
	}
	stubby.SortPairs(pairs, nil)
	want := []stubby.Tuple{stubby.T(int64(1)), stubby.T(int64(1)), stubby.T(int64(2))}
	for i := range pairs {
		if !reflect.DeepEqual(pairs[i].Key, want[i]) {
			t.Fatalf("order wrong at %d: %v", i, pairs[i].Key)
		}
	}
}
