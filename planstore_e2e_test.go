package stubby_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/stubby-mr/stubby"
)

// storeSession builds a session over wl's cluster with ps attached and a
// small search budget (the store must be byte-transparent at any budget).
func storeSession(t *testing.T, wl *stubby.Workload, ps *stubby.PlanStore) *stubby.Session {
	t.Helper()
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 12}),
		stubby.WithPlanStore(ps),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestPlanStoreRestartHit is the acceptance drill for the persistent plan
// store: optimize all eight paper workloads against one store, "restart"
// (close the store and every session, reopen the directory cold), and
// re-optimize. Every repeat must come back from the store — byte-identical
// plan, equal cost, FromStore set, zero What-if activity, zero optimizer
// units run.
func TestPlanStoreRestartHit(t *testing.T) {
	if testing.Short() {
		t.Skip("optimizes all paper workloads twice")
	}
	ctx := context.Background()
	dir := t.TempDir()

	store, err := stubby.NewPlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := make(map[string][]byte)
	costs := make(map[string]float64)
	for _, abbr := range stubby.Workloads() {
		wl := profiledWorkload(t, abbr, 0.1, 1)
		res, err := storeSession(t, wl, store).Optimize(ctx, wl.Workflow)
		if err != nil {
			t.Fatalf("%s: %v", abbr, err)
		}
		if res.FromStore {
			t.Fatalf("%s: first optimization claims to be from the store", abbr)
		}
		cold[abbr] = exportBytes(t, res.Plan)
		costs[abbr] = res.EstimatedCost
	}
	if st := store.Stats(); st.Computes != uint64(len(cold)) {
		t.Fatalf("cold computes = %d, want %d", st.Computes, len(cold))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart: a fresh store instance over the same directory, fresh
	// sessions, freshly rebuilt (and re-profiled) workloads.
	store2, err := stubby.NewPlanStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	for _, abbr := range stubby.Workloads() {
		wl := profiledWorkload(t, abbr, 0.1, 1)
		res, err := storeSession(t, wl, store2).Optimize(ctx, wl.Workflow)
		if err != nil {
			t.Fatalf("%s after restart: %v", abbr, err)
		}
		if !res.FromStore {
			t.Errorf("%s after restart: not served from the store", abbr)
		}
		if res.WhatIfComputed != 0 || res.WhatIfCalls != 0 || res.FlowCards != 0 {
			t.Errorf("%s after restart: What-if activity (%d calls, %d computed, %d cards), want none",
				abbr, res.WhatIfCalls, res.WhatIfComputed, res.FlowCards)
		}
		if len(res.Units) != 0 {
			t.Errorf("%s after restart: %d optimizer units ran, want 0", abbr, len(res.Units))
		}
		if got := exportBytes(t, res.Plan); !bytes.Equal(got, cold[abbr]) {
			t.Errorf("%s after restart: plan is not byte-identical", abbr)
		}
		if res.EstimatedCost != costs[abbr] {
			t.Errorf("%s after restart: cost %v, want %v", abbr, res.EstimatedCost, costs[abbr])
		}
	}
	if st := store2.Stats(); st.Computes != 0 {
		t.Errorf("restart computes = %d, want 0", st.Computes)
	}
}

// TestPlanStoreSubmitHitEvent checks the service path: the second
// submission of a workflow finishes immediately from the store, its event
// stream carries a storeReport with Hit set, and the full lifecycle
// (Queued→Running→Done) still plays out.
func TestPlanStoreSubmitHitEvent(t *testing.T) {
	ctx := context.Background()
	store, err := stubby.NewPlanStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	wl := profiledWorkload(t, "BA", 0.1, 1)
	sess := storeSession(t, wl, store)
	defer sess.Close(ctx)

	h1, err := sess.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := h1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}

	h2, err := sess.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := h2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.FromStore || res2.WhatIfComputed != 0 {
		t.Fatalf("repeat submission: FromStore=%v WhatIfComputed=%d, want store hit with no estimation",
			res2.FromStore, res2.WhatIfComputed)
	}
	if !bytes.Equal(exportBytes(t, res2.Plan), exportBytes(t, res1.Plan)) {
		t.Fatal("repeat submission returned a different plan")
	}

	var hit bool
	var states []stubby.JobState
	for ev := range h2.Events(ctx) {
		switch e := ev.(type) {
		case stubby.PlanStoreEvent:
			if e.Hit {
				hit = true
			}
		case stubby.StateChangedEvent:
			states = append(states, e.State)
		}
	}
	if !hit {
		t.Fatal("repeat submission published no storeReport hit event")
	}
	want := []stubby.JobState{stubby.StateQueued, stubby.StateRunning, stubby.StateDone}
	if len(states) != len(want) {
		t.Fatalf("lifecycle = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("lifecycle = %v, want %v", states, want)
		}
	}
	if st := store.Stats(); st.Computes != 1 {
		t.Fatalf("computes = %d, want 1", st.Computes)
	}
}

// TestPlanStoreSubmitSingleFlight floods a cold store with concurrent
// submissions of one workflow: exactly one optimization may run, and every
// submission must return the identical plan.
func TestPlanStoreSubmitSingleFlight(t *testing.T) {
	ctx := context.Background()
	store, err := stubby.NewPlanStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	wl := profiledWorkload(t, "BA", 0.1, 1)
	sess := storeSession(t, wl, store)
	defer sess.Close(ctx)

	const callers = 8
	var wg sync.WaitGroup
	plans := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		h, err := sess.Submit(ctx, stubby.OptimizeRequest{Workflow: wl.Workflow})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, h *stubby.OptimizeHandle) {
			defer wg.Done()
			res, err := h.Wait(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			plans[i] = exportBytes(t, res.Plan)
		}(i, h)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	for i := 1; i < callers; i++ {
		if !bytes.Equal(plans[i], plans[0]) {
			t.Fatalf("submission %d returned a different plan", i)
		}
	}
	if st := store.Stats(); st.Computes != 1 {
		t.Fatalf("computes = %d for %d concurrent submissions, want 1", st.Computes, callers)
	}
}

// TestTwoReplicaSharedStore is the multi-replica smoke: two independent
// server instances (own sessions, own store handles) share one store
// directory. Every paper workload submitted to replica A and then to
// replica B must produce byte-identical plans, with B answering from the
// store — total optimizations stay at 8, half the submission count.
func TestTwoReplicaSharedStore(t *testing.T) {
	if testing.Short() {
		t.Skip("optimizes all paper workloads")
	}
	ctx := context.Background()
	dir := t.TempDir()

	type replica struct {
		store  *stubby.PlanStore
		client *stubby.Client
	}
	newReplica := func(cluster *stubby.Cluster) replica {
		t.Helper()
		store, err := stubby.NewPlanStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		sess, err := stubby.NewSession(
			stubby.WithCluster(cluster),
			stubby.WithSeed(1),
			stubby.WithOptimizerOptions(stubby.Options{RRSEvals: 12}),
			stubby.WithEstimateCache(stubby.NewEstimateCache(0)),
			stubby.WithPlanStore(store),
		)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(stubby.NewServer(sess))
		t.Cleanup(hs.Close)
		client, err := stubby.NewClient(hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		return replica{store: store, client: client}
	}

	// Both replicas serve the paper's shared evaluation cluster; requests
	// carry their workload's cluster explicitly, as remote submitters do.
	first := profiledWorkload(t, "BA", 0.1, 1)
	a := newReplica(first.Cluster)
	b := newReplica(first.Cluster)

	submit := func(r replica, wl *stubby.Workload) *stubby.Result {
		t.Helper()
		job, err := r.client.Submit(ctx, stubby.OptimizeRequest{
			Workflow: wl.Workflow,
			Cluster:  wl.Cluster,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	submissions := 0
	for _, abbr := range stubby.Workloads() {
		wl := profiledWorkload(t, abbr, 0.1, 1)
		resA := submit(a, wl)
		resB := submit(b, wl)
		submissions += 2
		if !bytes.Equal(exportBytes(t, resA.Plan), exportBytes(t, resB.Plan)) {
			t.Errorf("%s: replicas returned different plans", abbr)
		}
		if resB.WhatIfComputed != 0 {
			t.Errorf("%s: replica B computed %d estimates, want a store hit", abbr, resB.WhatIfComputed)
		}
	}

	statsA, err := a.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	statsB, err := b.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if statsA.PlanStore == nil || statsB.PlanStore == nil {
		t.Fatal("statsz omitted plan-store counters")
	}
	total := statsA.PlanStore.Computes + statsB.PlanStore.Computes
	if want := uint64(len(stubby.Workloads())); total != want {
		t.Errorf("total optimizations = %d, want %d", total, want)
	}
	if total >= uint64(submissions) {
		t.Errorf("total optimizations %d not less than submissions %d", total, submissions)
	}
	if statsB.PlanStore.Hits == 0 {
		t.Error("replica B reports zero store hits")
	}
	if statsA.Workers <= 0 || statsA.QueueDepth <= 0 || statsA.Status != "ok" {
		t.Errorf("statsz queue shape implausible: %+v", statsA)
	}
	if statsA.EstimateCache == nil {
		t.Error("statsz omitted estimate-cache counters")
	}
}
