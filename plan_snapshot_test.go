package stubby_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/stubby-mr/stubby"
)

// update regenerates the golden plan snapshots instead of checking them:
//
//	go test -run TestPlanSnapshots -update .
//
// CI runs with update forbidden, so any change to the optimizer's chosen
// plans — new transformations, cost-model tweaks, search changes — fails
// until the refreshed snapshots are reviewed and committed alongside it.
var update = flag.Bool("update", false, "rewrite golden plan snapshot files")

// TestPlanSnapshots locks the optimized plan of every paper workload into a
// reviewable golden file: DAG shape (jobs, wiring, partitioning), final
// configurations, and the estimated makespan. The workloads and seed match
// the differential suite, so one profiling pass serves both.
func TestPlanSnapshots(t *testing.T) {
	if *update && os.Getenv("CI") != "" {
		t.Fatal("-update is forbidden in CI: regenerate snapshots locally and commit the diff")
	}
	wls := differentialWorkloads(t)
	for _, abbr := range stubby.Workloads() {
		t.Run(abbr, func(t *testing.T) {
			wl := wls[abbr]
			sess, err := stubby.NewSession(
				stubby.WithCluster(wl.Cluster),
				stubby.WithSeed(1),
				stubby.WithParallelism(1),
			)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sess.Optimize(context.Background(), wl.Workflow)
			if err != nil {
				t.Fatal(err)
			}
			got := renderPlanSnapshot(t, abbr, res)
			path := filepath.Join("testdata", "plans", abbr+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if string(want) != got {
				t.Errorf("optimized plan drifted from golden snapshot %s.\n"+
					"If the change is intended, regenerate with:\n"+
					"\tgo test -run TestPlanSnapshots -update .\n"+
					"and commit the diff.\n--- want\n%s\n--- got\n%s", abbr, want, got)
			}
		})
	}
}

// renderPlanSnapshot serializes the result deterministically and
// human-reviewably. The makespan is rounded to 3 decimals so reviewers see
// real cost movement, not cross-architecture floating-point jitter.
func renderPlanSnapshot(t *testing.T, abbr string, res *stubby.Result) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "# Golden snapshot of the optimized %s plan (size=%g seed=1 planner=stubby).\n",
		abbr, differentialSize)
	b.WriteString("# Regenerate with: go test -run TestPlanSnapshots -update .\n")
	fmt.Fprintf(&b, "estimated makespan: %.3f\n", res.EstimatedCost)
	fmt.Fprintf(&b, "jobs: %d\n", len(res.Plan.Jobs))
	order, err := res.Plan.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range order {
		origins := append([]string(nil), j.Origin...)
		sort.Strings(origins)
		fmt.Fprintf(&b, "job %s origin=%v\n", j.ID, origins)
		for _, br := range j.MapBranches {
			filter := ""
			if br.Filter != nil {
				filter = " filter=" + br.Filter.String()
			}
			fmt.Fprintf(&b, "  branch tag=%d in=%s stages=%s%s\n",
				br.Tag, br.Input, stageNames(br.Stages), filter)
		}
		for _, g := range j.ReduceGroups {
			part := g.Part.Type.String()
			if g.MapOnly() {
				part = "none"
			}
			extra := ""
			if g.RunsMapSide {
				extra = " map-side"
			}
			if g.Part.SplitPoints != nil {
				extra += fmt.Sprintf(" splits=%d", len(g.Part.SplitPoints))
			}
			fmt.Fprintf(&b, "  group tag=%d out=%s stages=%s part=%s key=%v sort=%v%s\n",
				g.Tag, g.Output, stageNames(g.Stages), part, g.Part.KeyFields, g.Part.SortFields, extra)
		}
		fmt.Fprintf(&b, "  config %s\n", j.Config)
		if j.AlignMapToInput || j.PinnedReducers || j.ReduceCountGroup != "" {
			fmt.Fprintf(&b, "  flags aligned=%v pinned=%v tie=%q\n",
				j.AlignMapToInput, j.PinnedReducers, j.ReduceCountGroup)
		}
	}
	return b.String()
}

func stageNames(stages []stubby.Stage) string {
	if len(stages) == 0 {
		return "[]"
	}
	names := make([]string, len(stages))
	for i, s := range stages {
		names[i] = s.Name
	}
	return "[" + strings.Join(names, " ") + "]"
}
