package stubby_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/stubby-mr/stubby"
)

// profiledWorkload builds and profiles one of the paper's workloads for
// session tests.
func profiledWorkload(t *testing.T, abbr string, size float64, seed int64) *stubby.Workload {
	t.Helper()
	wl, err := stubby.BuildWorkload(abbr, stubby.WorkloadOptions{SizeFactor: size, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(seed),
		stubby.WithProfileFraction(0.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Profile(context.Background(), wl.Workflow, wl.DFS); err != nil {
		t.Fatal(err)
	}
	return wl
}

// exportBytes snapshots a plan for unmodified-input assertions.
func exportBytes(t *testing.T, w *stubby.Workflow) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := stubby.ExportPlan(&buf, w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSessionOptimizeMatchesLegacyAndSerial(t *testing.T) {
	wl := profiledWorkload(t, "IR", 0.15, 2)
	serial, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster), stubby.WithSeed(2), stubby.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster), stubby.WithSeed(2), stubby.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a, err := serial.Optimize(ctx, wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Optimize(ctx, wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Plan.Jobs) != len(b.Plan.Jobs) || a.EstimatedCost != b.EstimatedCost {
		t.Fatalf("parallel search diverged from serial: %d jobs / %.3f vs %d jobs / %.3f",
			len(a.Plan.Jobs), a.EstimatedCost, len(b.Plan.Jobs), b.EstimatedCost)
	}
	// The deprecated free function must agree with the session it wraps.
	legacy, err := stubby.Optimize(wl.Cluster, wl.Workflow, stubby.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.EstimatedCost != a.EstimatedCost {
		t.Fatalf("legacy Optimize diverged: %.3f vs %.3f", legacy.EstimatedCost, a.EstimatedCost)
	}
}

// cancelOnFirstUnit cancels the context as soon as the optimizer reports
// progress, simulating a client abandoning a long-running optimization.
type cancelOnFirstUnit struct {
	stubby.NopObserver
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelOnFirstUnit) UnitStarted(string, string, int, []string) {
	c.once.Do(c.cancel)
}

func TestOptimizeCancellation(t *testing.T) {
	wl := profiledWorkload(t, "BA", 0.15, 3)
	before := exportBytes(t, wl.Workflow)

	// Already-cancelled context: immediate ctx.Err(), input untouched.
	sess, err := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Optimize(cancelled, wl.Workflow); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Optimize: got %v, want context.Canceled", err)
	}

	// Cancel mid-search from the observer: prompt ctx.Err(), bounded wait.
	ctx, cancelMid := context.WithCancel(context.Background())
	obs := &cancelOnFirstUnit{cancel: cancelMid}
	sess2, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster), stubby.WithSeed(3), stubby.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = sess2.Optimize(ctx, wl.Workflow)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-search cancel: got %v, want context.Canceled", err)
	}
	if wait := time.Since(start); wait > 10*time.Second {
		t.Fatalf("cancellation not prompt: took %v", wait)
	}
	if after := exportBytes(t, wl.Workflow); !bytes.Equal(before, after) {
		t.Fatal("cancelled Optimize modified the input plan")
	}
}

// cancelOnFirstJob cancels the context from the engine's first job event.
type cancelOnFirstJob struct {
	stubby.NopObserver
	cancel context.CancelFunc
	once   sync.Once
}

func (c *cancelOnFirstJob) JobFinished(string, string, float64, float64) {
	c.once.Do(c.cancel)
}

func TestRunCancellation(t *testing.T) {
	wl := profiledWorkload(t, "IR", 0.15, 4)
	before := exportBytes(t, wl.Workflow)

	sess, err := stubby.NewSession(stubby.WithCluster(wl.Cluster))
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Run(cancelled, wl.DFS.Clone(), wl.Workflow); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run: got %v, want context.Canceled", err)
	}

	// IR has multiple jobs, so cancelling after the first one interrupts
	// the run midway.
	ctx, cancelMid := context.WithCancel(context.Background())
	obs := &cancelOnFirstJob{cancel: cancelMid}
	sess2, err := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = sess2.Run(ctx, wl.DFS.Clone(), wl.Workflow)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: got %v, want context.Canceled", err)
	}
	if wait := time.Since(start); wait > 10*time.Second {
		t.Fatalf("cancellation not prompt: took %v", wait)
	}
	if after := exportBytes(t, wl.Workflow); !bytes.Equal(before, after) {
		t.Fatal("cancelled Run modified the input plan")
	}
}

// countingObserver tallies events across concurrent optimizations; it must
// be concurrent-safe because OptimizeAll calls it from several goroutines.
type countingObserver struct {
	units, subplans, improved, jobs, cacheReports atomic.Int64
}

func (c *countingObserver) UnitStarted(string, string, int, []string)      { c.units.Add(1) }
func (c *countingObserver) SubplanEnumerated(string, int, string, float64) { c.subplans.Add(1) }
func (c *countingObserver) BestCostImproved(string, int, string, float64)  { c.improved.Add(1) }
func (c *countingObserver) JobFinished(string, string, float64, float64)   { c.jobs.Add(1) }
func (c *countingObserver) EstimateCacheReport(string, stubby.EstimateCacheStats) {
	c.cacheReports.Add(1)
}

// TestSessionOptimizeAllConcurrent locks in concurrent-safety of a shared
// session: four workloads optimized on one session's worker pool (run under
// -race in CI).
func TestSessionOptimizeAllConcurrent(t *testing.T) {
	abbrs := []string{"IR", "SN", "PJ", "US"}
	var flows []*stubby.Workflow
	for i, abbr := range abbrs {
		wl := profiledWorkload(t, abbr, 0.1, int64(10+i))
		flows = append(flows, wl.Workflow)
	}
	obs := &countingObserver{}
	sess, err := stubby.NewSession(
		stubby.WithSeed(7),
		stubby.WithParallelism(4),
		stubby.WithObserver(obs),
	)
	if err != nil {
		t.Fatal(err)
	}
	results, err := sess.OptimizeAll(context.Background(), flows...)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(flows) {
		t.Fatalf("got %d results, want %d", len(results), len(flows))
	}
	for i, res := range results {
		if res == nil || res.Plan == nil {
			t.Fatalf("workflow %s: nil result", abbrs[i])
		}
		if err := res.Plan.Validate(); err != nil {
			t.Fatalf("workflow %s: invalid plan: %v", abbrs[i], err)
		}
	}
	if obs.units.Load() == 0 || obs.subplans.Load() == 0 {
		t.Fatalf("observer saw no progress: units=%d subplans=%d",
			obs.units.Load(), obs.subplans.Load())
	}
}

// TestSessionOptimizeAllCancellation: one cancelled fan-out returns
// ctx.Err() and does not hang the pool.
func TestSessionOptimizeAllCancellation(t *testing.T) {
	wl := profiledWorkload(t, "IR", 0.1, 5)
	sess, err := stubby.NewSession(stubby.WithCluster(wl.Cluster), stubby.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sess.OptimizeAll(ctx, wl.Workflow, wl.Workflow, wl.Workflow)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled OptimizeAll: got %v, want context.Canceled", err)
	}
}

func TestSessionPlannerRegistry(t *testing.T) {
	names := stubby.Planners()
	if len(names) != 7 || names[0] != "stubby" {
		t.Fatalf("Planners() = %v", names)
	}
	sess, err := stubby.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		p, err := sess.Planner(name)
		if err != nil {
			t.Fatalf("Planner(%q): %v", name, err)
		}
		if _, ok := p.(stubby.ContextPlanner); !ok {
			t.Errorf("built-in planner %q does not implement ContextPlanner", name)
		}
	}
	// Lookup is case-insensitive (bench figures use display names).
	if _, err := sess.Planner("Stubby"); err != nil {
		t.Fatalf("case-insensitive lookup failed: %v", err)
	}
	if _, err := sess.Planner("nope"); err == nil || !strings.Contains(err.Error(), "unknown planner") {
		t.Fatalf("unknown planner: got %v", err)
	}
	// Unknown planner name is rejected at session construction.
	if _, err := stubby.NewSession(stubby.WithPlanner("nope")); err == nil {
		t.Fatal("NewSession(WithPlanner(nope)) should fail")
	}
	// Conflicting group restrictions are rejected rather than silently
	// preferring one.
	if _, err := stubby.NewSession(
		stubby.WithGroups(stubby.GroupAll), stubby.WithPlanner("vertical")); err == nil ||
		!strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("conflicting WithGroups+WithPlanner: got %v", err)
	}
	// Refining full Stubby with a group restriction stays allowed.
	if _, err := stubby.NewSession(
		stubby.WithGroups(stubby.GroupVertical), stubby.WithPlanner("stubby")); err != nil {
		t.Fatalf("WithGroups refinement of stubby rejected: %v", err)
	}
	// Groups smuggled in through WithOptimizerOptions conflict the same way.
	if _, err := stubby.NewSession(
		stubby.WithPlanner("vertical"),
		stubby.WithOptimizerOptions(stubby.Options{Groups: stubby.GroupHorizontal}),
	); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("conflicting base-option Groups+WithPlanner: got %v", err)
	}
}

func TestSessionWithNamedPlanner(t *testing.T) {
	wl := profiledWorkload(t, "PJ", 0.1, 6)
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(6),
		stubby.WithPlanner("ysmart"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Optimize(context.Background(), wl.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.EstimatedCost <= 0 {
		t.Fatalf("named-planner result unusable: %+v", res)
	}
	if _, err := sess.Run(context.Background(), wl.DFS.Clone(), res.Plan); err != nil {
		t.Fatalf("ysmart plan failed to run: %v", err)
	}
}

// TestSessionRegisterPlanner extends one session's registry without
// affecting the default registry.
func TestSessionRegisterPlanner(t *testing.T) {
	sess, err := stubby.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	spec := stubby.PlannerSpec{
		Name:        "identity",
		Description: "returns the plan unchanged",
		New: func(c *stubby.Cluster, seed int64) stubby.Planner {
			return identityPlanner{}
		},
	}
	if err := sess.RegisterPlanner(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Planner("identity"); err != nil {
		t.Fatalf("registered planner not found: %v", err)
	}
	for _, name := range stubby.Planners() {
		if name == "identity" {
			t.Fatal("session registration leaked into the default registry")
		}
	}
}

type identityPlanner struct{}

func (identityPlanner) Name() string { return "Identity" }
func (identityPlanner) Plan(w *stubby.Workflow) (*stubby.Workflow, error) {
	return w.Clone(), nil
}
