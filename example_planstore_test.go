package stubby_test

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"github.com/stubby-mr/stubby"
)

// ExampleWithPlanStore attaches a persistent plan store to a session:
// optimized plans are persisted on disk under content addresses
// (workflow fingerprint + cluster digest + planner + seed), so
// re-optimizing the same workflow — even after a process restart, even
// from another replica sharing the directory — returns the stored plan
// without running the optimizer. The store is transparent: a hit is
// byte-identical to the plan the search would have produced.
func ExampleWithPlanStore() {
	wl, err := stubby.BuildWorkload("IR", stubby.WorkloadOptions{SizeFactor: 0.1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "stubby-plans-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// One store can back any number of sessions and survives all of them;
	// in a deployment the directory would be a fixed path (stubbyd -store).
	store, err := stubby.NewPlanStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithPlanStore(store),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Profile(ctx, wl.Workflow, wl.DFS); err != nil {
		log.Fatal(err)
	}
	first, err := sess.Optimize(ctx, wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}

	// "Restart": close the store, reopen the same directory cold, and
	// optimize the same workflow through a brand-new session.
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	reopened, err := stubby.NewPlanStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fresh, err := stubby.NewSession(
		stubby.WithCluster(wl.Cluster),
		stubby.WithSeed(1),
		stubby.WithPlanStore(reopened),
	)
	if err != nil {
		log.Fatal(err)
	}
	again, err := fresh.Optimize(ctx, wl.Workflow)
	if err != nil {
		log.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := stubby.ExportPlan(&a, first.Plan); err != nil {
		log.Fatal(err)
	}
	if err := stubby.ExportPlan(&b, again.Plan); err != nil {
		log.Fatal(err)
	}
	stats, _ := fresh.PlanStoreStats()
	fmt.Println("served from the store:", again.FromStore)
	fmt.Println("plan identical across the restart:", bytes.Equal(a.Bytes(), b.Bytes()))
	fmt.Println("optimizer did no work:", again.WhatIfComputed == 0 && len(again.Units) == 0)
	fmt.Println("store hits:", stats.Hits)
	// Output:
	// served from the store: true
	// plan identical across the restart: true
	// optimizer did no work: true
	// store hits: 1
}
