package stubby

// retry.go is the client half of the failure-handling story: an opt-in
// retry policy for Client with exponential backoff, deterministic seeded
// jitter, retry classification over the error taxonomy, Retry-After
// honoring, and deadline propagation. The matching server half (journal,
// in-flight dedup, resumable event streams) makes every retried request
// idempotent, so the policy can be aggressive without duplicating work.

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/stubby-mr/stubby/internal/stubbyerr"
)

// RetryPolicy configures Client-side retries of transient failures:
// transport errors, HTTP 429 (ErrKindOverloaded), HTTP 503
// (ErrKindUnavailable), and responses cut mid-body. Delays grow
// exponentially from BaseDelay by Multiplier up to MaxDelay, each scaled
// by a deterministic jitter in [0.5, 1.0] drawn from Seed — two clients
// with different seeds desynchronize their retry storms, and a fixed seed
// replays the exact schedule in tests. A server-sent Retry-After header
// overrides the computed delay (capped at MaxDelay, which stays the
// policy's ceiling). Errors that retrying cannot fix — ErrKindInvalid,
// ErrKindNotFound, ErrKindConflict, and the other terminal kinds — are
// returned immediately.
//
// The zero value of each field selects a default (4 attempts, 50ms base,
// 2s cap, 2x growth); a Client without WithRetryPolicy never retries.
type RetryPolicy struct {
	// MaxAttempts bounds total tries, the first included (default 4).
	MaxAttempts int
	// BaseDelay is the pre-jitter delay before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps every delay, Retry-After included (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay per retry (default 2; values < 1 reset to 2).
	Multiplier float64
	// Seed drives the deterministic jitter sequence.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return p
}

// WithRetryPolicy enables retries on the client under p (zero fields take
// defaults). Retries are safe against a journaled server: submissions
// deduplicate on their request fingerprint server-side, and every other
// route is naturally idempotent.
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) {
		rp := p.withDefaults()
		c.retry = &rp
	}
}

// ClientMetrics counts a Client's wire activity since construction.
type ClientMetrics struct {
	// Requests counts HTTP requests issued (retries included).
	Requests uint64
	// Retries counts re-issued requests (Requests - Retries = first tries).
	Retries uint64
	// Resumes counts event-stream reconnects that resumed at a cursor.
	Resumes uint64
}

// Metrics snapshots the client's request/retry/resume counters.
func (c *Client) Metrics() ClientMetrics {
	return ClientMetrics{
		Requests: c.requests.Load(),
		Retries:  c.retries.Load(),
		Resumes:  c.resumes.Load(),
	}
}

// clientCounters holds the Client's atomic activity counters (embedded so
// client.go stays focused on the protocol).
type clientCounters struct {
	requests  atomic.Uint64
	retries   atomic.Uint64
	resumes   atomic.Uint64
	jitterSeq atomic.Uint64
}

// retryMix is splitmix64's finalizer — the repo's standard counter-based
// deterministic draw (mrsim's fault model, faultproxy).
func retryMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoff computes the delay before retry number `attempt` (0-based):
// exponential growth, capped, jittered into [0.5, 1.0]× deterministically.
func (c *Client) backoff(attempt int) time.Duration {
	p := c.retry
	d := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(attempt))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	h := retryMix(retryMix(uint64(p.Seed)) ^ c.jitterSeq.Add(1))
	frac := 0.5 + 0.5*float64(h>>11)/float64(1<<53)
	return time.Duration(d * frac)
}

// retryDelay resolves the wait before the next attempt: the server's
// Retry-After when it sent one (capped at MaxDelay), the backoff schedule
// otherwise.
func (c *Client) retryDelay(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if retryAfter > c.retry.MaxDelay {
			return c.retry.MaxDelay
		}
		return retryAfter
	}
	return c.backoff(attempt)
}

// retryable classifies err against the taxonomy: overload and
// unavailability are transient by definition; internal errors (which is
// also where a mid-body connection cut surfaces after decode) are worth
// re-trying against an idempotent server; everything else — invalid input,
// unknown job, conflict, cancellation, expired deadline — is terminal.
func (c *Client) retryable(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, stubbyerr.KindOverloaded) ||
		errors.Is(err, stubbyerr.KindUnavailable) ||
		errors.Is(err, stubbyerr.KindInternal)
}

// parseRetryAfter reads an integer-seconds Retry-After value (the only
// form the service emits); anything else is no hint.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx sleeps d unless ctx ends first, reporting whether it slept.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// doRetry runs one idempotent exchange under the retry policy: issue the
// request, decode a 2xx with fn, and classify everything else. Without a
// policy it degrades to exactly one attempt. fn owns only the response
// body's content, not its closing.
func (c *Client) doRetry(ctx context.Context, method, path string, body []byte, fn func(*http.Response) error) error {
	attempts := 1
	if c.retry != nil {
		attempts = c.retry.MaxAttempts
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		var retryAfter time.Duration
		resp, err := c.do(ctx, method, path, body)
		if err == nil {
			if resp.StatusCode >= 200 && resp.StatusCode < 300 {
				err = fn(resp)
			} else {
				retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
				err = decodeHTTPError(resp)
			}
			resp.Body.Close()
			if err == nil {
				return nil
			}
		}
		lastErr = err
		if c.retry == nil || attempt == attempts-1 || ctx.Err() != nil || !c.retryable(err) {
			return lastErr
		}
		if !sleepCtx(ctx, c.retryDelay(attempt, retryAfter)) {
			return lastErr
		}
	}
	return lastErr
}

// Optimize submits req and waits for its outcome — the one-call remote
// counterpart of Session.Optimize. If the job vanished across a server
// restart (ErrKindNotFound: it was canceled before the crash, so recovery
// rightly did not re-enqueue it), the request is resubmitted once;
// submissions are idempotent through the server's plan store, so the
// retry converges to the same plan.
func (c *Client) Optimize(ctx context.Context, req OptimizeRequest) (*Result, error) {
	job, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	res, err := job.Wait(ctx)
	if err != nil && errors.Is(err, stubbyerr.KindNotFound) && ctx.Err() == nil {
		job, err = c.Submit(ctx, req)
		if err != nil {
			return nil, err
		}
		return job.Wait(ctx)
	}
	return res, err
}
