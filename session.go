package stubby

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stubby-mr/stubby/internal/baselines"
	"github.com/stubby-mr/stubby/internal/mrsim"
	"github.com/stubby-mr/stubby/internal/optimizer"
	"github.com/stubby-mr/stubby/internal/profile"
	"github.com/stubby-mr/stubby/internal/service"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
	"github.com/stubby-mr/stubby/internal/whatif"
	"github.com/stubby-mr/stubby/internal/whatif/estcache"
)

// EstimateCache memoizes What-if cost estimates under canonical workflow
// fingerprints (structure + configurations + profiles + layouts, insensitive
// to job-ID renaming). It is concurrent-safe, LRU-bounded, deduplicates
// in-flight estimates, and may be shared across sessions via
// WithEstimateCache so fan-outs over repeated or overlapping workflows
// amortize estimation work. Caching is transparent: optimization returns
// byte-identical plans and equal costs with or without it.
type EstimateCache = estcache.Cache

// EstimateCacheStats snapshots an EstimateCache's hit/miss/eviction
// counters; see Session.EstimateCacheStats and Observer.EstimateCacheReport.
type EstimateCacheStats = estcache.Stats

// NewEstimateCache builds an estimate cache bounded to roughly capacity
// entries (<= 0 uses a default of a few thousand). Attach it to one session
// — or several, to share — with WithEstimateCache.
func NewEstimateCache(capacity int) *EstimateCache { return estcache.New(capacity) }

// Observer receives progress events from a session's optimizations and
// runs: the optimizer reports each optimization unit it opens, each subplan
// it enumerates (with its post-configuration-search cost), and each time a
// subplan displaces the unit's incumbent; the execution engine reports each
// finished job. Every event carries the workflow name, so one observer can
// watch a concurrent OptimizeAll fan-out. Callbacks run synchronously on
// the optimizing/running goroutine — and concurrently across workflows
// under OptimizeAll — so implementations must be fast and concurrent-safe.
//
// Embed NopObserver to implement only the events of interest.
type Observer interface {
	// UnitStarted fires when the optimizer opens an optimization unit.
	UnitStarted(workflow, phase string, unit int, jobs []string)
	// SubplanEnumerated fires per enumerated subplan with its best cost.
	SubplanEnumerated(workflow string, unit int, desc string, cost float64)
	// BestCostImproved fires when a subplan becomes the unit's incumbent.
	BestCostImproved(workflow string, unit int, desc string, cost float64)
	// JobFinished fires after the engine completes each job of a Run.
	JobFinished(workflow, job string, start, end float64)
	// EstimateCacheReport fires after each Optimize on a session with an
	// estimate cache attached, carrying the cache's cumulative statistics
	// (shared caches accumulate across sessions and workflows).
	EstimateCacheReport(workflow string, stats EstimateCacheStats)
}

// NopObserver is an Observer that ignores every event. Embed it to
// implement a subset of the interface.
type NopObserver struct{}

// UnitStarted implements Observer.
func (NopObserver) UnitStarted(string, string, int, []string) {}

// SubplanEnumerated implements Observer.
func (NopObserver) SubplanEnumerated(string, int, string, float64) {}

// BestCostImproved implements Observer.
func (NopObserver) BestCostImproved(string, int, string, float64) {}

// JobFinished implements Observer.
func (NopObserver) JobFinished(string, string, float64, float64) {}

// EstimateCacheReport implements Observer.
func (NopObserver) EstimateCacheReport(string, EstimateCacheStats) {}

// PlannerRegistry maps planner names to constructors (see Planners for the
// built-in names). Sessions resolve WithPlanner and Session.Planner through
// their registry; RegisterPlanner extends one.
type PlannerRegistry = baselines.Registry

// PlannerSpec describes one registered planner: name, description, and
// constructor.
type PlannerSpec = baselines.Spec

// ContextPlanner is a Planner whose search can be cancelled. All built-in
// planners implement it.
type ContextPlanner = baselines.ContextPlanner

// Planners lists the built-in planner names in registration order:
// "stubby", "vertical", "horizontal", "baseline", "starfish", "ysmart",
// "mrshare".
func Planners() []string { return baselines.DefaultRegistry().Names() }

// PlannerSpecs lists the built-in planner specs (names with descriptions).
func PlannerSpecs() []PlannerSpec { return baselines.DefaultRegistry().Specs() }

// Session is the top-level entry point to Stubby as a service (the role
// the optimizer plays between workflow generators and the execution engine
// in the paper's Figure 2): it owns a cluster description, a planner
// registry, and default options, and exposes context-aware, observable
// optimization, profiling, estimation, and execution.
//
// A Session is safe for concurrent use: methods share only the immutable
// cluster and registry, and every optimization builds private search state.
// The workflows and DFS instances passed in are NOT shared-state-safe —
// Profile annotates its workflow in place and Run mutates its DFS — so
// concurrent calls must operate on distinct workflow/DFS values (as
// OptimizeAll's per-workflow fan-out does; Optimize never modifies its
// input plan).
type Session struct {
	cluster      *Cluster
	groups       Groups
	seed         int64
	plannerName  string
	parallelism  int
	observer     Observer
	fraction     float64
	baseOpts     Options
	registry     *PlannerRegistry
	estCache     *EstimateCache
	planStore    *PlanStore
	reuseCatalog *ReuseCatalog
	robustness   *whatif.RobustnessOptions
	// dispatch, when set (WithCoordinator), routes submitted jobs to
	// cluster workers instead of the local optimizer; ErrNoWorkers falls
	// back to optimizing locally.
	dispatch dispatchFunc
	// incrementalSet/disableIncremental record WithIncrementalEstimation:
	// tri-state so an unset option defers to WithOptimizerOptions.
	incrementalSet     bool
	disableIncremental bool
	// queueDepth bounds the Submit admission queue (WithQueueDepth;
	// DefaultQueueDepth when 0). The queue itself is created lazily on the
	// first Submit, so sessions that never Submit pay nothing.
	queueDepth int
	queueOnce  sync.Once
	queue      *service.Queue
	closed     atomic.Bool
	jobSeq     atomic.Uint64
}

// SessionOption configures a Session under construction.
type SessionOption func(*Session) error

// WithCluster sets the cluster the session optimizes for (default
// DefaultCluster).
func WithCluster(c *Cluster) SessionOption {
	return func(s *Session) error {
		if c == nil {
			return fmt.Errorf("stubby: WithCluster(nil)")
		}
		s.cluster = c
		return nil
	}
}

// WithGroups restricts the transformation groups of the session's built-in
// optimizer (default GroupAll).
func WithGroups(g Groups) SessionOption {
	return func(s *Session) error {
		s.groups = g
		return nil
	}
}

// WithSeed fixes the seed driving deterministic search, profiling, and
// sampling.
func WithSeed(seed int64) SessionOption {
	return func(s *Session) error {
		s.seed = seed
		return nil
	}
}

// WithPlanner selects the named planner Optimize uses (default "stubby",
// the full transformation-based optimizer). The name must exist in the
// session's registry; see Planners for the built-ins.
func WithPlanner(name string) SessionOption {
	return func(s *Session) error {
		s.plannerName = name
		return nil
	}
}

// WithParallelism bounds the session's concurrency: the OptimizeAll worker
// pool, and concurrent per-subplan configuration searches inside the
// built-in Stubby optimizer (and its group variants). n <= 0 restores the
// default (GOMAXPROCS); n == 1 is fully serial. Plans are identical at any
// parallelism. Other named planners (starfish, mrshare, ...) reproduce the
// paper's comparators faithfully and always search serially.
func WithParallelism(n int) SessionOption {
	return func(s *Session) error {
		s.parallelism = n
		return nil
	}
}

// WithObserver attaches a progress observer to the session: search events
// fire from Optimize under the built-in Stubby optimizer (and its group
// variants), and JobFinished events fire from every Run. Other named
// planners are opaque comparators and report no search progress.
func WithObserver(obs Observer) SessionOption {
	return func(s *Session) error {
		s.observer = obs
		return nil
	}
}

// WithProfileFraction sets the sampling fraction Profile uses, in (0, 1]
// (default 0.5). 1.0 profiles the full data (no estimation error).
func WithProfileFraction(f float64) SessionOption {
	return func(s *Session) error {
		if f <= 0 || f > 1 {
			return fmt.Errorf("stubby: profile fraction %v out of (0,1]", f)
		}
		s.fraction = f
		return nil
	}
}

// WithOptimizerOptions sets the base optimizer Options (custom
// transformations, search budgets, ablation knobs). Session-level options
// (WithGroups, WithSeed, WithParallelism, WithObserver) are applied on top
// when set.
func WithOptimizerOptions(opt Options) SessionOption {
	return func(s *Session) error {
		s.baseOpts = opt
		return nil
	}
}

// WithEstimateCache attaches an estimate cache to the session: What-if
// estimates issued by the built-in Stubby optimizer (and its group
// variants), by Session.Estimate, and by the post-plan costing of other
// named planners are memoized under canonical workflow fingerprints. Pass
// the same cache to several sessions to share it — the cache is
// concurrent-safe, so an OptimizeAll fan-out (or many sessions) amortizes
// estimates of repeated or overlapping workflows. Caching never changes
// results: plans and costs are byte-identical with and without it.
func WithEstimateCache(c *EstimateCache) SessionOption {
	return func(s *Session) error {
		if c == nil {
			return fmt.Errorf("stubby: WithEstimateCache(nil)")
		}
		s.estCache = c
		return nil
	}
}

// WithIncrementalEstimation enables or disables incremental What-if
// estimation during configuration search (default: enabled). When enabled,
// the built-in Stubby optimizer delta-estimates each search probe —
// recomputing per-job flow only for the jobs the probe affects and
// replaying scheduling from a slot-pool snapshot — instead of re-estimating
// the whole workflow. Incremental estimation is bit-transparent: plans and
// costs are identical either way, so disabling it is only useful for
// debugging and benchmarking the estimator itself.
func WithIncrementalEstimation(enabled bool) SessionOption {
	return func(s *Session) error {
		s.incrementalSet = true
		s.disableIncremental = !enabled
		return nil
	}
}

// WithRobustness makes the session's planning robustness-aware under the
// given fault model: every Optimize (and Submit) result carries a
// Monte-Carlo Robustness report for the chosen plan — mean/p95/p99
// makespan across `samples` perturbation seeds (<= 0 uses
// DefaultRobustnessSamples) — and candidate subplans whose estimated
// costs are near-ties are re-ranked on p99 makespan under perturbation
// instead of mean cost, preferring the plan that degrades least on a
// faulty cluster. Evaluation replays only the scheduling layer over
// once-computed flow cards, so the overhead per optimization is small.
//
// Determinism contract: the report and any re-ranking are pure functions
// of (plan, cluster, model, samples) — parallelism, caching, and repeat
// runs cannot change them. A model that cannot perturb anything (all
// rates zero, no node classes) reports a degenerate distribution and
// never re-ranks, so attaching it changes no chosen plan.
func WithRobustness(model *FaultModel, samples int) SessionOption {
	return func(s *Session) error {
		if model == nil {
			return fmt.Errorf("stubby: WithRobustness(nil model)")
		}
		if err := model.Validate(); err != nil {
			return fmt.Errorf("stubby: %w", err)
		}
		s.robustness = &whatif.RobustnessOptions{Model: model, Samples: samples}
		return nil
	}
}

// DefaultRobustnessSamples is the Monte-Carlo sample count used when
// WithRobustness (or RobustnessOptions) leaves the count zero.
const DefaultRobustnessSamples = whatif.DefaultRobustnessSamples

// DefaultQueueDepth is the admission bound of a session's Submit queue
// when WithQueueDepth is not given.
const DefaultQueueDepth = 64

// WithQueueDepth bounds the session's Submit admission queue: at most n
// jobs wait for a worker at once, and submissions beyond that are shed
// immediately with ErrKindOverloaded instead of queueing unbounded work
// (n <= 0 restores DefaultQueueDepth). The worker pool draining the queue
// is the session's WithParallelism pool.
func WithQueueDepth(n int) SessionOption {
	return func(s *Session) error {
		if n <= 0 {
			n = DefaultQueueDepth
		}
		s.queueDepth = n
		return nil
	}
}

// WithPlannerRegistry replaces the session's planner registry (default: a
// private clone of the built-in registry, so RegisterPlanner never leaks
// into other sessions).
func WithPlannerRegistry(r *PlannerRegistry) SessionOption {
	return func(s *Session) error {
		if r == nil {
			return fmt.Errorf("stubby: WithPlannerRegistry(nil)")
		}
		s.registry = r
		return nil
	}
}

// NewSession builds a session from functional options. With no options it
// serves the default evaluation cluster with the full Stubby optimizer.
func NewSession(opts ...SessionOption) (*Session, error) {
	s := &Session{fraction: 0.5}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	if s.cluster == nil {
		s.cluster = mrsim.DefaultCluster()
	}
	if err := s.cluster.Validate(); err != nil {
		return nil, fmt.Errorf("stubby: %w", err)
	}
	if s.parallelism <= 0 {
		s.parallelism = runtime.GOMAXPROCS(0)
	}
	if s.registry == nil {
		s.registry = baselines.DefaultRegistry().Clone()
	}
	// Resolve the seed once so Session.Planner and Session.Optimize always
	// search with the same seed regardless of whether it arrived through
	// WithSeed or WithOptimizerOptions.
	if s.seed == 0 {
		s.seed = s.baseOpts.Seed
	}
	if s.plannerName != "" {
		p, err := s.registry.New(s.plannerName, s.cluster, s.seed)
		if err != nil {
			return nil, fmt.Errorf("stubby: %w", err)
		}
		// A group-restricted Stubby variant and an explicit group
		// restriction (WithGroups or WithOptimizerOptions) are two answers
		// to the same question; silently preferring one would mislabel
		// the result.
		if sp, ok := p.(baselines.StubbyPlanner); ok {
			groups := s.groups
			if groups == 0 {
				groups = s.baseOpts.Groups
			}
			if sp.Groups != GroupAll && groups != 0 && groups != sp.Groups {
				return nil, fmt.Errorf("stubby: the Groups restriction conflicts with WithPlanner(%q); set one or the other", s.plannerName)
			}
		}
	}
	return s, nil
}

// Cluster returns the session's cluster description.
func (s *Session) Cluster() *Cluster { return s.cluster }

// Planners lists the planner names registered with this session.
func (s *Session) Planners() []string { return s.registry.Names() }

// Planner constructs the named planner bound to the session's cluster and
// seed. All built-in planners also implement ContextPlanner. An
// unregistered name yields an ErrKindUnknownPlanner *Error.
func (s *Session) Planner(name string) (Planner, error) {
	return s.plannerSeeded(name, s.seed)
}

// plannerSeeded constructs the named planner with an explicit seed (Submit
// requests may override the session seed per job).
func (s *Session) plannerSeeded(name string, seed int64) (Planner, error) {
	p, err := s.registry.New(name, s.cluster, seed)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindUnknownPlanner, "planner", "", err)
	}
	return p, nil
}

// RegisterPlanner adds a planner to this session's registry (shadowing a
// built-in of the same name). It does not affect other sessions unless the
// registry was shared via WithPlannerRegistry.
func (s *Session) RegisterPlanner(spec PlannerSpec) error {
	return s.registry.Register(spec)
}

// optimizerOptions merges the session's settings over the base options and
// binds the observer to a workflow name.
func (s *Session) optimizerOptions(workflow string) optimizer.Options {
	o := s.baseOpts
	if s.groups != 0 {
		o.Groups = s.groups
	}
	o.Seed = s.seed // resolved at NewSession; matches Session.Planner
	if o.Parallelism == 0 {
		o.Parallelism = s.parallelism
	}
	if o.Observer == nil && s.observer != nil {
		o.Observer = optimizerObserver{obs: s.observer, workflow: workflow}
	}
	if o.EstimateCache == nil {
		o.EstimateCache = s.estCache
	}
	if s.incrementalSet {
		o.DisableIncremental = s.disableIncremental
	}
	if o.Robustness == nil {
		o.Robustness = s.robustness
	}
	// The non-nil check matters: assigning a nil *ReuseCatalog into the
	// interface field would make it non-nil and turn the pre-pass on.
	if o.ReuseCatalog == nil && s.reuseCatalog != nil {
		o.ReuseCatalog = s.reuseCatalog
	}
	return o
}

// EstimateCache returns the cache attached via WithEstimateCache, or nil.
func (s *Session) EstimateCache() *EstimateCache { return s.estCache }

// EstimateCacheStats snapshots the attached cache's counters. ok is false
// when the session has no estimate cache.
func (s *Session) EstimateCacheStats() (stats EstimateCacheStats, ok bool) {
	if s.estCache == nil {
		return EstimateCacheStats{}, false
	}
	return s.estCache.Stats(), true
}

// sessionEstimator is the estimator surface Session methods need: the
// (cancellable) estimate plus activity counters (for Result.WhatIfCalls/
// WhatIfComputed/FlowCards).
type sessionEstimator interface {
	EstimateContext(ctx context.Context, w *Workflow) (*Estimate, error)
	Counts() whatif.Counts
}

// estimator builds a fresh what-if estimator, fronted by the session's
// estimate cache when one is attached.
func (s *Session) estimator() sessionEstimator {
	inner := whatif.New(s.cluster)
	if s.estCache != nil {
		return estcache.NewEstimator(s.estCache, inner)
	}
	return inner
}

// reportCacheStats emits the cache-stats observer event after an optimize.
func (s *Session) reportCacheStats(workflow string) {
	if s.estCache != nil && s.observer != nil {
		s.observer.EstimateCacheReport(workflow, s.estCache.Stats())
	}
}

// Optimize optimizes the workflow with the session's planner (default: the
// full Stubby optimizer) and returns the result. The input plan is never
// modified; cancellation via ctx stops the search promptly with ctx.Err().
// When the selected planner is one of Stubby's own variants the Result
// carries the full per-unit search trace; for other planners it carries
// the plan and its What-if cost estimate. Failures surface as (or wrap)
// *Error.
func (s *Session) Optimize(ctx context.Context, w *Workflow) (*Result, error) {
	name := s.plannerName
	if name == "" {
		name = "stubby"
	}
	res, err := s.optimizeNamed(ctx, w, name, s.seed, nil)
	if err != nil {
		return nil, stubbyerr.From("optimize", w.Name, err)
	}
	s.reportCacheStats(w.Name)
	return res, nil
}

// optimizeDirect is the planner dispatch shared by Optimize and Submit
// (via optimizeNamed, which fronts it with the plan store when one is
// attached): run the named planner with an explicit seed and, for Stubby
// variants, an optional observer override (the Submit event bridge).
// Cache-stats reporting is left to the caller, whose delivery channel
// differs.
func (s *Session) optimizeDirect(ctx context.Context, w *Workflow, name string, seed int64, obs optimizer.Observer) (*Result, error) {
	p, err := s.plannerSeeded(name, seed)
	if err != nil {
		return nil, err
	}
	// Stubby variants run through the optimizer directly so the Result
	// keeps its search trace and the observer sees per-unit progress.
	if sp, ok := p.(baselines.StubbyPlanner); ok {
		o := s.optimizerOptions(w.Name)
		o.Seed = seed
		if obs != nil {
			// The submit bridge takes over (it already fans out to the
			// session's deprecated Observer); an observer installed
			// directly via WithOptimizerOptions keeps receiving events too.
			if base := s.baseOpts.Observer; base != nil {
				o.Observer = teeObserver{base, obs}
			} else {
				o.Observer = obs
			}
		}
		if o.Groups == 0 {
			o.Groups = sp.Groups
		}
		return optimizer.New(s.cluster, o).OptimizeContext(ctx, w)
	}
	start := time.Now()
	var plan *Workflow
	if cp, ok := p.(ContextPlanner); ok {
		plan, err = cp.PlanContext(ctx, w)
	} else {
		plan, err = p.Plan(w)
	}
	if err != nil {
		return nil, err
	}
	costEst := s.estimator()
	est, err := costEst.EstimateContext(ctx, plan)
	if err != nil {
		return nil, err
	}
	counts := costEst.Counts()
	return &Result{Plan: plan, EstimatedCost: est.Makespan, Duration: time.Since(start),
		WhatIfCalls: counts.Requests, WhatIfComputed: counts.Computed, FlowCards: counts.FlowCards}, nil
}

// OptimizeAll optimizes independent workflows concurrently on a worker
// pool bounded by WithParallelism, returning one Result per workflow in
// input order. On the first failure the context handed to the remaining
// work is cancelled and the first error (by input order) is returned
// alongside the results completed so far; cancelled slots are nil.
func (s *Session) OptimizeAll(ctx context.Context, ws ...*Workflow) ([]*Result, error) {
	results := make([]*Result, len(ws))
	errs := make([]error, len(ws))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := s.parallelism
	if workers > len(ws) {
		workers = len(ws)
	}
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w *Workflow) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = s.Optimize(ctx, w)
			if errs[i] != nil {
				cancel()
			}
		}(i, w)
	}
	wg.Wait()
	// Prefer the error that triggered the internal cancellation over the
	// context.Canceled it induced in sibling slots, so callers see the
	// real failure; order ties break by input order.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return results, err
		}
		if first == nil {
			first = err
		}
	}
	return results, first
}

// Run executes the workflow on the session's cluster over the DFS,
// materializing outputs and returning simulated timings. Cancellation via
// ctx stops the simulation between task scheduling waves with ctx.Err();
// the workflow itself is never modified (outputs of already-finished jobs
// remain on the DFS).
func (s *Session) Run(ctx context.Context, dfs *DFS, w *Workflow) (*RunReport, error) {
	eng := mrsim.NewEngine(s.cluster, dfs)
	if s.observer != nil {
		eng.Observer = engineObserver{obs: s.observer, workflow: w.Name}
	}
	rep, err := eng.RunWorkflowContext(ctx, w)
	if err != nil {
		return nil, stubbyerr.From("run", w.Name, err)
	}
	if s.reuseCatalog != nil {
		s.publishRunResults(dfs, w)
	}
	return rep, nil
}

// Profile attaches profile annotations to every job of w (in place) by
// executing it over a deterministic sample of the base data on dfs, using
// the session's profile fraction and seed. A cancelled profiling run
// returns ctx.Err() and leaves w unannotated.
func (s *Session) Profile(ctx context.Context, w *Workflow, dfs *DFS) error {
	err := profile.NewProfiler(s.cluster, s.fraction, s.seed).AnnotateContext(ctx, w, dfs)
	return stubbyerr.From("profile", w.Name, err)
}

// Estimate runs the What-if engine on an annotated plan, consulting the
// session's estimate cache when one is attached. Cancellation via ctx
// stops estimation between per-job flow computations with a
// ErrKindCanceled/ErrKindDeadline *Error. Cached estimates are shared;
// treat the result as immutable.
func (s *Session) Estimate(ctx context.Context, w *Workflow) (*Estimate, error) {
	est, err := s.estimator().EstimateContext(ctx, w)
	if err != nil {
		return nil, stubbyerr.From("estimate", w.Name, err)
	}
	return est, nil
}

// Robustness Monte-Carlo-replays an annotated plan's scheduling under a
// fault model, returning its makespan distribution (mean/p50/p95/p99)
// across perturbation seeds. A zero-valued opt uses the model and sample
// count from WithRobustness; opt.Model overrides it per call. Plans in
// the fallback (#jobs) costing regime have no cost-based schedule to
// perturb — an ErrKindInvalid *Error is returned.
func (s *Session) Robustness(ctx context.Context, w *Workflow, opt RobustnessOptions) (*Robustness, error) {
	if opt.Model == nil {
		if s.robustness == nil {
			return nil, &stubbyerr.Error{Kind: stubbyerr.KindInvalid, Op: "robustness", Workflow: w.Name,
				Err: errors.New("no fault model: pass RobustnessOptions.Model or configure WithRobustness")}
		}
		if opt.Samples == 0 {
			opt.Samples = s.robustness.Samples
		}
		opt.Model = s.robustness.Model
	}
	rob, err := whatif.New(s.cluster).Robustness(ctx, w, opt)
	if err != nil {
		return nil, stubbyerr.From("robustness", w.Name, err)
	}
	if rob == nil {
		return nil, &stubbyerr.Error{Kind: stubbyerr.KindInvalid, Op: "robustness", Workflow: w.Name,
			Err: errors.New("plan lacks the annotations for cost-based estimation (fallback regime)")}
	}
	return rob, nil
}

// EstimateCost runs the What-if engine without cancellation.
//
// Deprecated: use Estimate with a context.
func (s *Session) EstimateCost(w *Workflow) (*Estimate, error) {
	return s.Estimate(context.Background(), w)
}

// optimizerObserver adapts the public Observer to the optimizer's internal
// observer, stamping the workflow name onto every event.
type optimizerObserver struct {
	obs      Observer
	workflow string
}

func (a optimizerObserver) UnitStarted(phase string, unit int, jobs []string) {
	a.obs.UnitStarted(a.workflow, phase, unit, jobs)
}

func (a optimizerObserver) SubplanEnumerated(unit int, desc string, cost float64) {
	a.obs.SubplanEnumerated(a.workflow, unit, desc, cost)
}

func (a optimizerObserver) BestCostImproved(unit int, desc string, cost float64) {
	a.obs.BestCostImproved(a.workflow, unit, desc, cost)
}

// teeObserver fans optimizer events out to two observers in order.
type teeObserver struct{ a, b optimizer.Observer }

func (t teeObserver) UnitStarted(phase string, unit int, jobs []string) {
	t.a.UnitStarted(phase, unit, jobs)
	t.b.UnitStarted(phase, unit, jobs)
}

func (t teeObserver) SubplanEnumerated(unit int, desc string, cost float64) {
	t.a.SubplanEnumerated(unit, desc, cost)
	t.b.SubplanEnumerated(unit, desc, cost)
}

func (t teeObserver) BestCostImproved(unit int, desc string, cost float64) {
	t.a.BestCostImproved(unit, desc, cost)
	t.b.BestCostImproved(unit, desc, cost)
}

// engineObserver adapts the public Observer to the engine's job events.
type engineObserver struct {
	obs      Observer
	workflow string
}

func (a engineObserver) JobFinished(r *mrsim.JobReport) {
	a.obs.JobFinished(a.workflow, r.JobID, r.Start, r.End)
}
