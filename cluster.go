package stubby

import (
	"context"
	"errors"
	"time"

	"github.com/stubby-mr/stubby/internal/cluster"
	"github.com/stubby-mr/stubby/internal/planio"
	"github.com/stubby-mr/stubby/internal/stubbyerr"
)

// Coordinator manages a cluster of stubbyd workers: membership (register +
// heartbeat leases), dispatching optimization jobs over the ordinary job
// wire, and re-dispatching jobs off workers whose lease expires. Mount one
// onto a Server with WithCoordinator; run workers as plain stubbyd
// processes whose WorkerAgent joins the coordinator.
type Coordinator = cluster.Coordinator

// CoordinatorOption configures a Coordinator.
type CoordinatorOption = cluster.Option

// ErrNoWorkers reports a dispatch with no live workers; a coordinator
// server handles it by optimizing locally (failover) rather than failing
// the job.
var ErrNoWorkers = cluster.ErrNoWorkers

// NewCoordinator builds a coordinator with no registered workers.
func NewCoordinator(opts ...CoordinatorOption) *Coordinator {
	return cluster.New(opts...)
}

// WithClusterLeaseTTL sets how long a silent worker keeps its lease
// (default cluster.DefaultLeaseTTL); agents heartbeat at a third of it.
func WithClusterLeaseTTL(d time.Duration) CoordinatorOption {
	return cluster.WithLeaseTTL(d)
}

// WorkerAgent is the worker-side control loop: it registers the worker's
// serving URL with a coordinator and heartbeats to keep its lease alive,
// re-registering across coordinator restarts. Run it alongside the
// worker's HTTP server.
type WorkerAgent = cluster.Agent

// WorkerAgentOption configures a WorkerAgent.
type WorkerAgentOption = cluster.AgentOption

// NewWorkerAgent builds an agent that joins the coordinator at join and
// advertises the worker's own base URL.
func NewWorkerAgent(join, advertise string, opts ...WorkerAgentOption) *WorkerAgent {
	return cluster.NewAgent(join, advertise, opts...)
}

// WithWorkerStats supplies the cumulative (cross-replica single-flight
// hits, computes) counters each heartbeat reports; the coordinator sums
// them into its cluster-wide stats.
func WithWorkerStats(fn func() (claimHits, computes uint64)) WorkerAgentOption {
	return cluster.WithAgentStats(fn)
}

// ClusterStats snapshots a coordinator's view of the cluster: membership,
// live leases, the dispatch/failover counters, and the cluster-wide
// single-flight totals summed from worker heartbeats.
type ClusterStats struct {
	// Workers is total registered; LiveWorkers those holding a lease.
	Workers     int
	LiveWorkers int
	// Leases is the number of in-flight dispatches on live workers.
	Leases int
	// Dispatches counts first dispatch attempts; Redispatches counts
	// attempts re-routed off a dead or expired worker; Failovers counts
	// jobs that found no live worker and ran on the coordinator itself.
	Dispatches   uint64
	Redispatches uint64
	Failovers    uint64
	// SingleFlightHits sums the workers' last-reported cross-replica
	// single-flight hits (optimizations answered by another replica's
	// concurrent computation); Computes sums the optimizations workers
	// actually ran.
	SingleFlightHits uint64
	Computes         uint64
}

// WithCoordinator mounts a coordinator onto the server: the cluster
// control plane (/v1/cluster/register, /v1/cluster/heartbeat,
// /v1/cluster/workers) joins the mux, submitted jobs are dispatched to
// registered workers instead of the local optimizer, and /statsz grows a
// cluster section. A coordinator with no live workers fails over to local
// optimization, so a single -coordinator process is still a complete
// service.
func WithCoordinator(c *Coordinator) ServerOption {
	return func(s *Server) {
		if c == nil {
			return
		}
		s.coordinator = c
		c.Handle(s.mux)
		s.sess.dispatch = c.Dispatch
	}
}

// ClusterStats reports the mounted coordinator's cluster counters; ok is
// false when the server has no coordinator.
func (s *Server) ClusterStats() (ClusterStats, bool) {
	if s.coordinator == nil {
		return ClusterStats{}, false
	}
	return clusterStatsFromDoc(s.coordinator.Stats()), true
}

// clusterStatsDoc converts cluster stats to their wire form.
func clusterStatsDoc(st ClusterStats) *planio.ClusterStatsDoc {
	return &planio.ClusterStatsDoc{Workers: st.Workers, LiveWorkers: st.LiveWorkers,
		Leases: st.Leases, Dispatches: st.Dispatches, Redispatches: st.Redispatches,
		Failovers: st.Failovers, SingleFlightHits: st.SingleFlightHits,
		Computes: st.Computes}
}

// clusterStatsFromDoc is the client-side inverse of clusterStatsDoc.
func clusterStatsFromDoc(d planio.ClusterStatsDoc) ClusterStats {
	return ClusterStats{Workers: d.Workers, LiveWorkers: d.LiveWorkers,
		Leases: d.Leases, Dispatches: d.Dispatches, Redispatches: d.Redispatches,
		Failovers: d.Failovers, SingleFlightHits: d.SingleFlightHits,
		Computes: d.Computes}
}

// dispatchFunc routes one encoded optimize-request document to a worker
// and returns the worker's encoded result document. Session.Submit uses
// it in place of local optimization when a coordinator is mounted.
type dispatchFunc func(ctx context.Context, body []byte) ([]byte, error)

// dispatchOptimize runs one submission remotely: it encodes the request —
// always with an explicit cluster, so the worker's plan-store key matches
// the one this coordinator's own store would use — dispatches it, and
// decodes the worker's result document bound to the submitted workflow's
// stage functions.
func (s *Session) dispatchOptimize(ctx context.Context, req OptimizeRequest, name string, seed int64) (*Result, error) {
	cl := req.Cluster
	if cl == nil {
		cl = s.cluster
	}
	body, err := planio.EncodeRequest(&planio.Request{
		Planner:            name,
		Seed:               seed,
		DisableIncremental: req.DisableIncremental,
		Cluster:            cl,
		Plan:               req.Workflow,
	})
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInvalid, "dispatch", req.Workflow.Name, err)
	}
	data, err := s.dispatch(ctx, body)
	if err != nil {
		return nil, err
	}
	reg := planio.NewRegistry()
	reg.RegisterWorkflow(req.Workflow)
	wres, err := planio.DecodeResultBound(data, reg)
	if err != nil {
		return nil, stubbyerr.WithKind(stubbyerr.KindInternal, "dispatch", req.Workflow.Name,
			errors.New("undecodable worker result: "+err.Error()))
	}
	return &Result{
		Plan:           wres.Plan,
		EstimatedCost:  wres.EstimatedCost,
		Duration:       time.Duration(wres.DurationMS * float64(time.Millisecond)),
		WhatIfCalls:    wres.WhatIfCalls,
		WhatIfComputed: wres.WhatIfComputed,
		FlowCards:      wres.FlowCards,
		Robustness:     robustnessFromDoc(wres.Robustness),
		ReusedSubplans: wres.ReusedSubplans,
	}, nil
}
